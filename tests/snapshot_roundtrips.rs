//! Integration: dataset snapshots round-trip across crates — a
//! generated world survives flavor-DB and recipe-store serialization,
//! and the analyses computed before and after are identical. The
//! second half hardens the zero-copy CFDB2/CRDB2 artifacts: every
//! truncation prefix rejected, arbitrary byte flips never panic,
//! misaligned buffers and wrong magic/version rejected, rebuilds
//! byte-identical, and borrowed analyses bit-identical to owned ones
//! at every thread count.

use proptest::prelude::*;

use culinaria::analysis::pairing::mean_cuisine_score;
use culinaria::analysis::z_analysis::analyze_world_view;
use culinaria::analysis::{
    analyze_world, FlavorViewRef, MonteCarloConfig, NullModel, RecipesViewRef,
};
use culinaria::datagen::{generate_world, World, WorldConfig};
use culinaria::flavordb::{
    artifact as flavor_artifact, io as flavor_io, AlignedBytes, ArtifactError,
    FlavorArtifactBuilder,
};
use culinaria::recipedb::Region;
use culinaria::recipedb::{artifact as recipe_artifact, io as recipe_io, RecipeArtifactBuilder};

fn tiny_world() -> World {
    generate_world(&WorldConfig::tiny())
}

/// CFDB2 and CRDB2 buffers of the tiny world, the flavor one carrying
/// one overlap section so section parsing is exercised too.
fn tiny_artifacts() -> (Vec<u8>, Vec<u8>) {
    let world = tiny_world();
    let mut builder = FlavorArtifactBuilder::new(&world.flavor);
    let cuisine = world.recipes.cuisine(Region::Italy);
    let cache = culinaria::analysis::pairing::OverlapCache::for_cuisine(&world.flavor, &cuisine);
    builder
        .add_overlap(Region::Italy.code(), cache.pool(), cache.tri())
        .expect("section encodes");
    let flavor = builder.build().expect("flavor artifact encodes");
    let recipes = RecipeArtifactBuilder::new(&world.recipes)
        .build()
        .expect("recipe artifact encodes");
    (flavor, recipes)
}

#[test]
fn world_snapshot_preserves_analysis_results() {
    let world = generate_world(&WorldConfig::tiny());

    let flavor_snap = flavor_io::to_snapshot(&world.flavor).expect("encodes");
    let recipe_snap = recipe_io::to_snapshot(&world.recipes).expect("encodes");

    let flavor2 = flavor_io::from_snapshot(flavor_snap).expect("flavor snapshot decodes");
    let recipes2 = recipe_io::from_snapshot(recipe_snap).expect("recipe snapshot decodes");

    assert_eq!(world.flavor.n_ingredients(), flavor2.n_ingredients());
    assert_eq!(world.recipes.n_recipes(), recipes2.n_recipes());

    for region in [Region::Italy, Region::Japan, Region::Usa] {
        let before = mean_cuisine_score(&world.flavor, &world.recipes.cuisine(region));
        let after = mean_cuisine_score(&flavor2, &recipes2.cuisine(region));
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "{region}: score changed across snapshot"
        );
    }
}

#[test]
fn recipe_csv_export_is_loadable_tabular() {
    let world = generate_world(&WorldConfig::tiny());
    let csv = recipe_io::to_csv(&world.recipes);
    let frame = culinaria::tabular::Frame::from_csv_str(&csv).expect("own CSV parses");
    assert_eq!(frame.n_rows(), world.recipes.n_recipes());
    for col in ["recipe_id", "name", "region", "source", "ingredients"] {
        assert!(frame.has_column(col), "{col} missing from export");
    }
    // Region codes in the export are valid Table 1 codes.
    let regions = frame.column("region").expect("column exists");
    for v in regions.iter_values() {
        let code = v.as_str().expect("region column is strings");
        assert!(code.parse::<Region>().is_ok(), "bad region code {code}");
    }
}

type RejectsFn = fn(&[u8]) -> bool;

#[test]
fn artifact_rejects_every_truncation_prefix() {
    let (flavor, recipes) = tiny_artifacts();
    let rejects_flavor: RejectsFn = |b| flavor_artifact::open(b).is_err();
    let rejects_recipes: RejectsFn = |b| recipe_artifact::open(b).is_err();
    let cases: [(&str, &[u8], RejectsFn); 2] = [
        ("CFDB2", &flavor, rejects_flavor),
        ("CRDB2", &recipes, rejects_recipes),
    ];
    for (what, buf, rejected) in cases {
        // One aligned copy; every prefix of an aligned base stays
        // aligned, so each truncated open exercises length validation
        // rather than tripping the alignment guard.
        let aligned = AlignedBytes::from_slice(buf);
        let full = aligned.as_slice();
        for n in 0..full.len() {
            assert!(rejected(&full[..n]), "{what}: {n}-byte prefix opened");
        }
    }
}

#[test]
fn artifact_rejects_misaligned_wrong_magic_and_wrong_version() {
    let (flavor, recipes) = tiny_artifacts();

    // Misaligned base pointer: shift the buffer by one byte inside an
    // aligned backing allocation.
    let mut shifted = vec![0u8; flavor.len() + 8];
    shifted[1..=flavor.len()].copy_from_slice(&flavor);
    let backing = AlignedBytes::from_slice(&shifted);
    let misaligned = &backing.as_slice()[1..=flavor.len()];
    assert!(matches!(
        flavor_artifact::open(misaligned),
        Err(ArtifactError::Misaligned)
    ));

    // Wrong magic.
    let mut raw = flavor.clone();
    raw[0] ^= 0xFF;
    let bad = AlignedBytes::from_vec(raw);
    assert!(matches!(
        flavor_artifact::open(bad.as_slice()),
        Err(ArtifactError::BadMagic)
    ));

    // Wrong version (bytes 8..12 hold the little-endian version).
    let mut raw = recipes.clone();
    raw[8] = raw[8].wrapping_add(1);
    let bad = AlignedBytes::from_vec(raw);
    assert!(matches!(
        recipe_artifact::open(bad.as_slice()),
        Err(ArtifactError::BadVersion { .. })
    ));

    // Swapped formats: each loader refuses the other's magic.
    assert!(flavor_artifact::open(AlignedBytes::from_slice(&recipes).as_slice()).is_err());
    assert!(recipe_artifact::open(AlignedBytes::from_slice(&flavor).as_slice()).is_err());
}

#[test]
fn artifact_rebuild_is_byte_identical() {
    let (flavor, recipes) = tiny_artifacts();

    // CFDB2: borrow, materialize, re-serialize with the same overlap
    // section — one byte encoding per logical content.
    let aligned = AlignedBytes::from_vec(flavor);
    let view = flavor_artifact::open(aligned.as_slice()).expect("valid artifact");
    let owned = view.to_flavor_db().expect("materializes");
    let mut rebuild = FlavorArtifactBuilder::new(&owned);
    for label in view.overlap_labels() {
        let (pool, tri) = view.overlap(label).expect("label listed");
        rebuild
            .add_overlap(label, pool, tri)
            .expect("section encodes");
    }
    assert_eq!(
        rebuild.build().expect("encodes"),
        aligned.as_slice(),
        "CFDB2 rebuild differs"
    );

    // CRDB2 likewise.
    let aligned = AlignedBytes::from_vec(recipes);
    let view = recipe_artifact::open(aligned.as_slice()).expect("valid artifact");
    let owned = view.to_recipe_store().expect("materializes");
    assert_eq!(
        RecipeArtifactBuilder::new(&owned).build().expect("encodes"),
        aligned.as_slice(),
        "CRDB2 rebuild differs"
    );
}

#[test]
fn borrowed_world_analysis_is_bit_identical_across_thread_counts() {
    let world = tiny_world();
    let (flavor, recipes) = tiny_artifacts();
    let faligned = AlignedBytes::from_vec(flavor);
    let raligned = AlignedBytes::from_vec(recipes);
    let fview = flavor_artifact::open(faligned.as_slice()).expect("valid artifact");
    let rview = recipe_artifact::open(raligned.as_slice()).expect("valid artifact");

    let mut reference: Option<Vec<(String, u64, Vec<u64>)>> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            n_recipes: 400,
            seed: 7,
            n_threads: threads,
        };
        let owned = analyze_world(&world.flavor, &world.recipes, &NullModel::ALL, &cfg);
        let borrowed = analyze_world_view(
            FlavorViewRef::Artifact(&fview),
            RecipesViewRef::Artifact(&rview),
            &NullModel::ALL,
            &cfg,
        );
        let digest: Vec<(String, u64, Vec<u64>)> = owned
            .iter()
            .map(|row| {
                (
                    row.region.code().to_string(),
                    row.observed_mean.to_bits(),
                    row.comparisons
                        .iter()
                        .flat_map(|c| {
                            [
                                c.null.mean.to_bits(),
                                c.null.std_dev.to_bits(),
                                c.null.n,
                                c.z.map(f64::to_bits).unwrap_or(1),
                            ]
                        })
                        .collect(),
                )
            })
            .collect();
        let borrowed_digest: Vec<(String, u64, Vec<u64>)> = borrowed
            .iter()
            .map(|row| {
                (
                    row.region.code().to_string(),
                    row.observed_mean.to_bits(),
                    row.comparisons
                        .iter()
                        .flat_map(|c| {
                            [
                                c.null.mean.to_bits(),
                                c.null.std_dev.to_bits(),
                                c.null.n,
                                c.z.map(f64::to_bits).unwrap_or(1),
                            ]
                        })
                        .collect(),
                )
            })
            .collect();
        assert_eq!(
            digest, borrowed_digest,
            "owned vs borrowed diverged at {threads} threads"
        );
        match &reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(r, &digest, "thread count {threads} changed the analysis"),
        }
    }
}

proptest! {
    /// Flipping any byte of a valid artifact must never panic: open
    /// either rejects the buffer or yields a view whose accessors stay
    /// in bounds.
    #[test]
    fn artifact_byte_flips_never_panic(pos in 0usize..1 << 20, mask in 1u8..=255) {
        static ARTIFACTS: std::sync::OnceLock<(Vec<u8>, Vec<u8>)> = std::sync::OnceLock::new();
        let (flavor, recipes) = ARTIFACTS.get_or_init(tiny_artifacts);
        for (buf, is_flavor) in [(flavor, true), (recipes, false)] {
            let mut raw = buf.to_vec();
            let i = pos % raw.len();
            raw[i] ^= mask;
            let aligned = AlignedBytes::from_vec(raw);
            if is_flavor {
                if let Ok(view) = flavor_artifact::open(aligned.as_slice()) {
                    for id in view.live_ids() {
                        std::hint::black_box(view.profile(id));
                        std::hint::black_box(view.ingredient_name(id));
                    }
                    for label in view.overlap_labels() {
                        std::hint::black_box(view.overlap(label));
                    }
                }
            } else if let Ok(view) = recipe_artifact::open(aligned.as_slice()) {
                for region in view.regions() {
                    let cuisine = view.cuisine(region);
                    for r in 0..cuisine.n_recipes() {
                        std::hint::black_box(cuisine.ingredients_of(r));
                    }
                }
            }
        }
    }
}

#[test]
fn snapshots_are_stable_across_identical_worlds() {
    let a = generate_world(&WorldConfig::tiny());
    let b = generate_world(&WorldConfig::tiny());
    assert_eq!(
        flavor_io::to_snapshot(&a.flavor).unwrap(),
        flavor_io::to_snapshot(&b.flavor).unwrap(),
        "flavor snapshots differ for identical configs"
    );
    assert_eq!(
        recipe_io::to_snapshot(&a.recipes).unwrap(),
        recipe_io::to_snapshot(&b.recipes).unwrap(),
        "recipe snapshots differ for identical configs"
    );
}
