//! Integration: dataset snapshots round-trip across crates — a
//! generated world survives flavor-DB and recipe-store serialization,
//! and the analyses computed before and after are identical.

use culinaria::analysis::pairing::mean_cuisine_score;
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::flavordb::io as flavor_io;
use culinaria::recipedb::io as recipe_io;
use culinaria::recipedb::Region;

#[test]
fn world_snapshot_preserves_analysis_results() {
    let world = generate_world(&WorldConfig::tiny());

    let flavor_snap = flavor_io::to_snapshot(&world.flavor).expect("encodes");
    let recipe_snap = recipe_io::to_snapshot(&world.recipes).expect("encodes");

    let flavor2 = flavor_io::from_snapshot(flavor_snap).expect("flavor snapshot decodes");
    let recipes2 = recipe_io::from_snapshot(recipe_snap).expect("recipe snapshot decodes");

    assert_eq!(world.flavor.n_ingredients(), flavor2.n_ingredients());
    assert_eq!(world.recipes.n_recipes(), recipes2.n_recipes());

    for region in [Region::Italy, Region::Japan, Region::Usa] {
        let before = mean_cuisine_score(&world.flavor, &world.recipes.cuisine(region));
        let after = mean_cuisine_score(&flavor2, &recipes2.cuisine(region));
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "{region}: score changed across snapshot"
        );
    }
}

#[test]
fn recipe_csv_export_is_loadable_tabular() {
    let world = generate_world(&WorldConfig::tiny());
    let csv = recipe_io::to_csv(&world.recipes);
    let frame = culinaria::tabular::Frame::from_csv_str(&csv).expect("own CSV parses");
    assert_eq!(frame.n_rows(), world.recipes.n_recipes());
    for col in ["recipe_id", "name", "region", "source", "ingredients"] {
        assert!(frame.has_column(col), "{col} missing from export");
    }
    // Region codes in the export are valid Table 1 codes.
    let regions = frame.column("region").expect("column exists");
    for v in regions.iter_values() {
        let code = v.as_str().expect("region column is strings");
        assert!(code.parse::<Region>().is_ok(), "bad region code {code}");
    }
}

#[test]
fn snapshots_are_stable_across_identical_worlds() {
    let a = generate_world(&WorldConfig::tiny());
    let b = generate_world(&WorldConfig::tiny());
    assert_eq!(
        flavor_io::to_snapshot(&a.flavor).unwrap(),
        flavor_io::to_snapshot(&b.flavor).unwrap(),
        "flavor snapshots differ for identical configs"
    );
    assert_eq!(
        recipe_io::to_snapshot(&a.recipes).unwrap(),
        recipe_io::to_snapshot(&b.recipes).unwrap(),
        "recipe snapshots differ for identical configs"
    );
}
