//! Cross-crate fault-injection suite (`--features fault-injection`).
//!
//! Uses the deterministic [`culinaria::stats::fault`] harness to inject
//! error- and panic-shaped faults at every pipeline stage — overlap
//! packing and sweeping, Monte-Carlo blocks (pairwise and k-tuple),
//! network edge rows, the flattened world queue, and batch import — and
//! asserts the two contracts of the failure model:
//!
//! 1. **Determinism**: an injected fault yields the same structured
//!    error (lowest failing index wins) for 1, 2 and 8 worker threads.
//! 2. **Transparency**: with an empty fault plan every `try_*` path is
//!    bit-identical to its infallible sibling.
//!
//! `fault::with_plan` serializes plan installation behind a global
//! lock, so these tests are safe under the default parallel test
//! runner.

#![cfg(feature = "fault-injection")]

use culinaria::analysis::monte_carlo::{
    run_null_model, try_run_null_model, try_run_null_model_observed,
};
use culinaria::analysis::network::FlavorNetwork;
use culinaria::analysis::ntuple::{ktuple_null_ensemble, try_ktuple_null_ensemble, KTupleScorer};
use culinaria::analysis::null_models::CuisineSampler;
use culinaria::analysis::z_analysis::{analyze_world, try_analyze_cuisine, try_analyze_world};
use culinaria::analysis::{FailureCause, MonteCarloConfig, NullModel, OverlapCache, StageFailure};
use culinaria::datagen::{generate_world, World, WorldConfig};
use culinaria::obs::Metrics;
use culinaria::recipedb::import::{ImportFailureReason, Importer, RawRecipe};
use culinaria::recipedb::{IngestLog, RecipeDbError, RecipeStore, Region, Source};
use culinaria::stats::fault::{self, FaultKind, FaultPlan};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn tiny_world() -> World {
    generate_world(&WorldConfig::tiny())
}

fn mc_cfg(n_threads: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        // 8192 recipes / 2048-recipe blocks = 4 Monte-Carlo blocks, so
        // block indices up to 3 are injectable.
        n_recipes: 8192,
        seed: 7,
        n_threads,
    }
}

fn plan(stage: &str, index: usize, kind: FaultKind) -> FaultPlan {
    FaultPlan::new().fail(stage, index, kind)
}

/// The cause a probe-injected fault should surface as.
fn expected_cause(stage: &str, index: usize, kind: FaultKind) -> FailureCause {
    match kind {
        FaultKind::Error => FailureCause::Error(format!("injected fault at {stage}[{index}]")),
        FaultKind::Panic => FailureCause::Panic(format!("injected panic at {stage}[{index}]")),
    }
}

#[test]
fn empty_plan_leaves_every_stage_bit_identical() {
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    let models = [NullModel::Random, NullModel::Frequency];

    fault::with_plan(FaultPlan::new(), || {
        // An empty plan keeps the probe fast path inactive.
        assert!(!fault::active());
        let plain_cache = OverlapCache::build(&world.flavor, &pool);
        let try_cache = OverlapCache::try_build(&world.flavor, &pool).unwrap();
        assert_eq!(plain_cache.len(), try_cache.len());
        for i in 0..plain_cache.len() as u32 {
            for j in 0..plain_cache.len() as u32 {
                assert_eq!(plain_cache.overlap(i, j), try_cache.overlap(i, j));
            }
        }

        let plain_net = FlavorNetwork::build(&world.flavor, &pool);
        let try_net = FlavorNetwork::try_build(&world.flavor, &pool).unwrap();
        assert_eq!(plain_net.n_edges(), try_net.n_edges());

        let plain = analyze_world(&world.flavor, &world.recipes, &models, &mc_cfg(2));
        let tried = try_analyze_world(&world.flavor, &world.recipes, &models, &mc_cfg(2)).unwrap();
        assert_eq!(plain.len(), tried.len());
        for (a, b) in plain.iter().zip(&tried) {
            assert_eq!(a.region, b.region);
            assert_eq!(a.observed_mean.to_bits(), b.observed_mean.to_bits());
            for (x, y) in a.comparisons.iter().zip(&b.comparisons) {
                assert_eq!(x.null, y.null, "{} ensembles diverged", a.region.code());
            }
        }
    });
    assert!(!fault::active());
}

#[test]
fn overlap_pack_error_is_deterministic() {
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    assert!(pool.len() > 2);
    for threads in THREAD_COUNTS {
        let failure = fault::with_plan(plan("overlap.pack", 1, FaultKind::Error), || {
            OverlapCache::try_build_with_threads(&world.flavor, &pool, threads).unwrap_err()
        });
        assert_eq!(
            failure,
            StageFailure::error("overlap.pack", 1, "injected fault at overlap.pack[1]"),
            "diverged at {threads} threads"
        );
    }
}

#[test]
fn overlap_tile_faults_are_deterministic_across_threads() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    assert!(pool.len() > 4);
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for threads in THREAD_COUNTS {
            let failure = fault::with_plan(plan("overlap.tile", 3, kind), || {
                OverlapCache::try_build_with_threads(&world.flavor, &pool, threads).unwrap_err()
            });
            assert_eq!(failure.stage, "overlap.tile");
            assert_eq!(failure.index, 3);
            assert_eq!(
                failure.cause,
                expected_cause("overlap.tile", 3, kind),
                "diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn lowest_failing_index_wins_in_the_pool_stage() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    let mixed = FaultPlan::new()
        .fail("overlap.tile", 5, FaultKind::Panic)
        .fail("overlap.tile", 2, FaultKind::Error)
        .fail("overlap.tile", 9, FaultKind::Error);
    for threads in THREAD_COUNTS {
        let failure = fault::with_plan(mixed.clone(), || {
            OverlapCache::try_build_with_threads(&world.flavor, &pool, threads).unwrap_err()
        });
        assert_eq!(
            failure,
            StageFailure::error("overlap.tile", 2, "injected fault at overlap.tile[2]"),
            "lowest index did not win at {threads} threads"
        );
    }
}

#[test]
fn mc_block_faults_are_deterministic_across_threads() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let cuisine = world.recipes.cuisine(Region::Italy);
    let sampler = CuisineSampler::build(&world.flavor, &cuisine).unwrap();
    let cache = OverlapCache::build(&world.flavor, &cuisine.ingredient_set());
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for threads in THREAD_COUNTS {
            let failure = fault::with_plan(plan("mc.block", 2, kind), || {
                try_run_null_model(&cache, &sampler, NullModel::Random, &mc_cfg(threads))
                    .unwrap_err()
            });
            assert_eq!(failure.stage, "mc.block");
            assert_eq!(failure.index, 2);
            assert_eq!(
                failure.cause,
                expected_cause("mc.block", 2, kind),
                "diverged at {threads} threads"
            );
        }
    }
    // Sanity: the same configuration without a plan still runs.
    assert!(run_null_model(&cache, &sampler, NullModel::Random, &mc_cfg(2)).is_some());
}

#[test]
fn ktuple_block_faults_are_deterministic_across_threads() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let cuisine = world.recipes.cuisine(Region::Italy);
    let sampler = CuisineSampler::build(&world.flavor, &cuisine).unwrap();
    let scorer = KTupleScorer::for_cuisine(&world.flavor, &cuisine, 3);
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for threads in THREAD_COUNTS {
            let failure = fault::with_plan(plan("mc.ktuple.block", 1, kind), || {
                try_ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &mc_cfg(threads))
                    .unwrap_err()
            });
            assert_eq!(failure.stage, "mc.ktuple.block");
            assert_eq!(failure.index, 1);
            assert_eq!(failure.cause, expected_cause("mc.ktuple.block", 1, kind));
        }
    }
    // Transparent when no fault matches the stage.
    let clean = fault::with_plan(plan("unrelated.stage", 0, FaultKind::Error), || {
        try_ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &mc_cfg(2)).unwrap()
    });
    assert_eq!(
        clean,
        ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &mc_cfg(2))
    );
}

#[test]
fn network_row_faults_are_deterministic_across_threads() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for threads in THREAD_COUNTS {
            let failure = fault::with_plan(plan("network.row", 2, kind), || {
                FlavorNetwork::try_build_with_threads(&world.flavor, &pool, threads).unwrap_err()
            });
            assert_eq!(failure.stage, "network.row");
            assert_eq!(failure.index, 2);
            assert_eq!(failure.cause, expected_cause("network.row", 2, kind));
        }
    }
}

#[test]
fn world_block_faults_are_deterministic_across_threads() {
    fault::silence_injected_panics();
    let world = tiny_world();
    let models = [NullModel::Random];
    for kind in [FaultKind::Error, FaultKind::Panic] {
        for threads in THREAD_COUNTS {
            let failure = fault::with_plan(plan("world.block", 0, kind), || {
                try_analyze_world(&world.flavor, &world.recipes, &models, &mc_cfg(threads))
                    .unwrap_err()
            });
            assert_eq!(failure.stage, "world.block");
            assert_eq!(failure.index, 0);
            assert_eq!(failure.cause, expected_cause("world.block", 0, kind));
        }
    }
}

#[test]
fn cuisine_analysis_propagates_nested_stage_failures() {
    let world = tiny_world();
    let cuisine = world.recipes.cuisine(Region::Italy);
    let failure = fault::with_plan(plan("overlap.tile", 1, FaultKind::Error), || {
        try_analyze_cuisine(&world.flavor, &cuisine, &[NullModel::Random], &mc_cfg(2)).unwrap_err()
    });
    assert_eq!(failure.stage, "overlap.tile");
    assert_eq!(failure.index, 1);
}

#[test]
fn engine_failures_bump_error_counters() {
    let world = tiny_world();
    let cuisine = world.recipes.cuisine(Region::Italy);
    let sampler = CuisineSampler::build(&world.flavor, &cuisine).unwrap();
    let cache = OverlapCache::build(&world.flavor, &cuisine.ingredient_set());
    let metrics = Metrics::enabled();
    fault::with_plan(plan("mc.block", 0, FaultKind::Error), || {
        let failure =
            try_run_null_model_observed(&cache, &sampler, NullModel::Random, &mc_cfg(2), &metrics)
                .unwrap_err();
        assert_eq!(failure.stage, "mc.block");
    });
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("error.mc.block"), Some(1));
    assert_eq!(snap.counter("pool.failures"), Some(1));
}

fn import_fixture() -> (Importer, Vec<RawRecipe>) {
    let db = culinaria::flavordb::curated::curated_db();
    let importer = Importer::from_flavor_db(&db);
    let raws: Vec<RawRecipe> = (0..12)
        .map(|i| RawRecipe {
            name: format!("recipe {i}"),
            region: Region::Italy,
            source: Source::Synthetic,
            ingredient_lines: vec!["3 ripe tomatoes".into(), "2 cloves garlic".into()],
        })
        .collect();
    (importer, raws)
}

#[test]
fn import_error_faults_become_per_recipe_failures() {
    let db = culinaria::flavordb::curated::curated_db();
    let (importer, raws) = import_fixture();
    for threads in THREAD_COUNTS {
        let mut store = RecipeStore::new();
        let stats = fault::with_plan(plan("import.recipe", 1, FaultKind::Error), || {
            importer
                .import_batch(&db, &mut store, &raws, threads)
                .unwrap()
        });
        assert_eq!(stats.offered, 12, "at {threads} threads");
        assert_eq!(stats.stored, 11);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.failures.len(), 1);
        assert_eq!(stats.failures[0].index, 1);
        assert_eq!(stats.failures[0].name, "recipe 1");
        assert_eq!(
            stats.failures[0].reason,
            ImportFailureReason::Fault("injected fault at import.recipe[1]".into())
        );
        // The other eleven recipes made it into the store.
        assert_eq!(store.n_recipes(), 11);
    }
}

#[test]
fn import_panic_fails_the_batch_with_the_lowest_index() {
    fault::silence_injected_panics();
    let db = culinaria::flavordb::curated::curated_db();
    let (importer, raws) = import_fixture();
    let two_panics = FaultPlan::new()
        .fail("import.recipe", 7, FaultKind::Panic)
        .fail("import.recipe", 2, FaultKind::Panic);
    for threads in THREAD_COUNTS {
        let mut store = RecipeStore::new();
        let err = fault::with_plan(two_panics.clone(), || {
            importer
                .import_batch(&db, &mut store, &raws, threads)
                .unwrap_err()
        });
        assert_eq!(
            err,
            RecipeDbError::Worker {
                index: 2,
                message: "injected panic at import.recipe[2]".into(),
            },
            "diverged at {threads} threads"
        );
        // A failed batch must not have mutated the store.
        assert_eq!(store.n_recipes(), 0);
    }
}

#[test]
fn wal_append_fault_leaves_a_valid_replayable_prefix() {
    let db = culinaria::flavordb::curated::curated_db();
    let (importer, raws) = import_fixture();
    for threads in THREAD_COUNTS {
        let mut log = IngestLog::new();
        let mut store = RecipeStore::new();
        let err = fault::with_plan(plan("wal.append", 3, FaultKind::Error), || {
            log.append_batch(&db, &importer, &mut store, &raws, threads)
                .unwrap_err()
        });
        assert!(
            matches!(err, RecipeDbError::Wal(_)),
            "expected a Wal error, got {err:?} at {threads} threads"
        );
        assert!(err.to_string().contains("record 3"), "{err}");
        // Import ran first (append_batch contract), but only the
        // records before the fault reached the log — whole, in order.
        assert_eq!(store.n_recipes(), 12);
        assert_eq!(log.records().len(), 3);
        // What did land is a valid log: the bytes re-decode and replay
        // as a cold batch import of that 3-record prefix.
        let reopened = IngestLog::from_bytes(log.as_bytes()).expect("prefix stays decodable");
        let (prefix_store, stats) = reopened.replay(&db, &importer, threads).expect("replays");
        assert_eq!(stats.stored, 3);
        assert_eq!(prefix_store.n_recipes(), 3);
    }
}

#[test]
fn wal_append_probe_indices_are_log_global() {
    // The probe index is the *log* offset, not the batch offset, so a
    // plan targeting record 13 fires in the second batch.
    let db = culinaria::flavordb::curated::curated_db();
    let (importer, raws) = import_fixture();
    let mut log = IngestLog::new();
    let mut store = RecipeStore::new();
    log.append_batch(&db, &importer, &mut store, &raws, 2)
        .expect("first batch appends cleanly");
    assert_eq!(log.records().len(), 12);
    let err = fault::with_plan(plan("wal.append", 13, FaultKind::Error), || {
        log.append_batch(&db, &importer, &mut store, &raws, 2)
            .unwrap_err()
    });
    assert!(err.to_string().contains("record 13"), "{err}");
    assert_eq!(log.records().len(), 13);
}

#[test]
fn seeded_plans_are_reproducible() {
    let stages = ["overlap.tile", "mc.block", "world.block"];
    let a = FaultPlan::seeded(42, &stages, 16, 5);
    let b = FaultPlan::seeded(42, &stages, 16, 5);
    assert_eq!(a.specs(), b.specs());
    assert_eq!(a.len(), 5);
    // Different seeds may differ (not guaranteed, but with 3 stages ×
    // 16 indices × 2 kinds a collision of all five specs is unlikely
    // enough to pin down here).
    let c = FaultPlan::seeded(43, &stages, 16, 5);
    assert_ne!(a.specs(), c.specs());

    // Replaying the same seeded plan twice produces the same outcome.
    fault::silence_injected_panics();
    let world = tiny_world();
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    let run = || {
        fault::with_plan(FaultPlan::seeded(42, &["overlap.tile"], 4, 2), || {
            OverlapCache::try_build_with_threads(&world.flavor, &pool, 4).map(|cache| cache.len())
        })
    };
    assert_eq!(run(), run());
}
