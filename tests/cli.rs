//! Integration tests of the `culinaria` command-line interface.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_culinaria"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn regions_lists_all_22() {
    let (ok, stdout, _) = run(&["regions"]);
    assert!(ok);
    for code in ["AFR", "ITA", "USA", "KOR", "SCND"] {
        assert!(stdout.contains(code), "{code} missing");
    }
    assert_eq!(stdout.lines().count(), 23); // header + 22 rows
    assert!(stdout.contains("contrasting"));
}

#[test]
fn no_command_shows_usage() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn report_requires_valid_region() {
    let (ok, _, stderr) = run(&["report", "ATLANTIS"]);
    assert!(!ok);
    assert!(stderr.contains("region code"));
}

#[test]
fn report_produces_verdict() {
    let (ok, stdout, _) = run(&["report", "JPN", "--scale", "0.02", "--mc", "2000"]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("Japan"));
    assert!(stdout.contains("verdict:"));
    assert!(stdout.contains("top contributors"));
}

#[test]
fn analyze_emits_agreement_line() {
    let (ok, stdout, _) = run(&["analyze", "--scale", "0.01", "--mc", "1500"]);
    assert!(ok);
    assert!(stdout.contains("z_random"));
    assert!(stdout.contains("pairing-sign agreement with the paper:"));
}

#[test]
fn generate_writes_snapshots() {
    let dir = std::env::temp_dir().join(format!("culinaria-cli-test-{}", std::process::id()));
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let (ok, stdout, _) = run(&["generate", "--scale", "0.01", "--out", dir_str]);
    assert!(ok, "stdout: {stdout}");
    for file in ["flavor.cfdb", "recipes.crdb", "recipes.csv"] {
        let path = dir.join(file);
        assert!(path.exists(), "{file} missing");
        assert!(
            path.metadata().expect("stat").len() > 100,
            "{file} too small"
        );
    }
    // Snapshots decode.
    let flavor_bytes = std::fs::read(dir.join("flavor.cfdb")).expect("readable");
    let db = culinaria::flavordb::io::from_snapshot(flavor_bytes.into()).expect("decodes");
    assert!(db.n_ingredients() > 100);
    let recipe_bytes = std::fs::read(dir.join("recipes.crdb")).expect("readable");
    let store = culinaria::recipedb::io::from_snapshot(recipe_bytes.into()).expect("decodes");
    assert!(store.n_recipes() > 100);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_malformed_flags_before_touching_data() {
    // Each case must fail fast (exit 2, no dataset needed) and name
    // the offending flag on stderr.
    for (args, needle) in [
        (
            &["serve", "--stdio", "--cache-entries", "lots"][..],
            "--cache-entries",
        ),
        (
            &["serve", "--stdio", "--max-queue", "-4"][..],
            "--max-queue",
        ),
        (&["serve", "--stdio", "--threads", "two"][..], "--threads"),
        (&["serve", "--stdio", "--metrics=xml"][..], "--metrics"),
        (&["serve"][..], "--stdio or --socket"),
        (
            &["serve", "--stdio", "--socket", "/tmp/x.sock"][..],
            "mutually exclusive",
        ),
    ] {
        let (ok, _, stderr) = run(args);
        assert!(!ok, "args {args:?} should be rejected");
        assert!(
            stderr.contains(needle),
            "args {args:?}: stderr {stderr:?} does not name {needle:?}"
        );
    }
}

#[test]
fn serve_refuses_to_start_without_a_dataset() {
    let dir = std::env::temp_dir().join(format!("culinaria-serve-nodata-{}", std::process::id()));
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let (ok, _, stderr) = run(&["serve", "--stdio", "--data", dir_str]);
    assert!(!ok);
    assert!(stderr.contains("culinaria generate"), "stderr: {stderr}");
}

#[test]
fn serve_stdio_answers_framed_queries_over_artifacts() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("culinaria-serve-stdio-{}", std::process::id()));
    let dir_str = dir.to_str().expect("utf-8 temp path").to_owned();
    let (ok, stdout, _) = run(&["generate", "--scale", "0.01", "--out", &dir_str]);
    assert!(ok, "generate failed: {stdout}");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_culinaria"))
        .args([
            "serve",
            "--stdio",
            "--data",
            &dir_str,
            "--mc",
            "200",
            "--metrics=json",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");

    // Hand-rolled frames: u32 LE length + UTF-8 payload.
    let frame = |line: &str| {
        let mut buf = (line.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(line.as_bytes());
        buf
    };
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        stdin.write_all(&frame("1 PING")).expect("write");
        stdin.write_all(&frame("2 METRICS")).expect("write");
        stdin.write_all(&frame("3 QUIT")).expect("write");
        stdin.flush().expect("flush");
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Walk the response frames; ids correlate, order may interleave.
    let bytes = out.stdout;
    let mut replies = Vec::new();
    let mut cursor = &bytes[..];
    while cursor.len() >= 4 {
        let len = u32::from_le_bytes(cursor[..4].try_into().unwrap()) as usize;
        let payload = std::str::from_utf8(&cursor[4..4 + len]).expect("utf-8 reply");
        replies.push(payload.to_owned());
        cursor = &cursor[4 + len..];
    }
    assert!(
        replies.iter().any(|r| r == "1 OK pong"),
        "no pong in {replies:?}"
    );
    assert!(
        replies
            .iter()
            .any(|r| r.starts_with("2 OK ") && r.contains("serve.requests")),
        "no metrics reply in {replies:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("zero-copy"),
        "v2 open not reported: {stderr}"
    );
    assert!(
        stderr.contains("connection closed"),
        "no close summary: {stderr}"
    );
    // --metrics=json dumped the registry at exit.
    assert!(
        stderr.contains("\"serve.requests\""),
        "no exit dump: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_and_replay_round_trip_through_the_log() {
    let dir = std::env::temp_dir().join(format!("culinaria-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("recipes.txt");
    std::fs::write(
        &file,
        "Bruschetta | ITA\ntomato\nolive oil\nbasil\n\n\
         Header Only | JPN\n\n\
         Caprese | ITA\ntomato\nbasil\n",
    )
    .expect("write recipes");
    let file = file.to_str().expect("utf-8 path");
    let log = dir.join("import.cwal");
    let log = log.to_str().expect("utf-8 path");

    // Missing --log fails fast with exit 2 and names the flag.
    let (ok, _, stderr) = run(&["ingest", file]);
    assert!(!ok);
    assert!(stderr.contains("--log"), "stderr: {stderr}");
    let (ok, _, stderr) = run(&["replay"]);
    assert!(!ok);
    assert!(stderr.contains("--log"), "stderr: {stderr}");

    // First batch: two stored, the header-only block tombstoned.
    let (ok, stdout, stderr) = run(&["ingest", file, "--log", log]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ingested 2/3"), "stdout: {stdout}");
    assert!(stdout.contains("3 records (+3)"), "stdout: {stdout}");
    assert!(stderr.contains("Header Only"), "stderr: {stderr}");

    // Second batch appends on top of the replayed history.
    let (ok, stdout, _) = run(&["ingest", file, "--log", log, "--threads", "2"]);
    assert!(ok);
    assert!(stdout.contains("6 records (+3)"), "stdout: {stdout}");
    assert!(stdout.contains("store: 4 recipes"), "stdout: {stdout}");

    // Full replay and a prefix replay both reconstruct the stream.
    let (ok, stdout, _) = run(&["replay", "--log", log]);
    assert!(ok);
    assert!(
        stdout.contains("replayed 6/6 records: 4 stored, 2 tombstoned"),
        "stdout: {stdout}"
    );
    let (ok, stdout, _) = run(&["replay", "--log", log, "--prefix", "3", "--threads", "2"]);
    assert!(ok);
    assert!(
        stdout.contains("replayed 3/6 records: 2 stored, 1 tombstoned"),
        "stdout: {stdout}"
    );

    // A corrupt log is reported, not panicked on.
    let mut bytes = std::fs::read(log).expect("log readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    let bad = dir.join("bad.cwal");
    std::fs::write(&bad, &bytes).expect("write corrupt log");
    let (ok, _, stderr) = run(&["replay", "--log", bad.to_str().expect("utf-8 path")]);
    assert!(!ok);
    assert!(stderr.contains("corrupt import log"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pairings_lists_candidates() {
    let (ok, stdout, _) = run(&["pairings", "ITA", "--scale", "0.02", "--top", "3"]);
    assert!(ok);
    assert!(stdout.contains("novel pairings"));
    assert!(stdout.contains("overlap"));
}

#[test]
fn suggest_generates_a_recipe() {
    let (ok, stdout, _) = run(&["suggest", "ITA", "--scale", "0.02", "--size", "5"]);
    assert!(ok);
    assert!(stdout.contains("generated uniform recipe for Italy"));
    assert_eq!(stdout.lines().filter(|l| l.starts_with("  ")).count(), 5);
    let (ok, stdout, _) = run(&["suggest", "JPN", "--scale", "0.02", "--contrast", "true"]);
    assert!(ok);
    assert!(stdout.contains("contrasting"));
}
