//! Integration tests of the `culinaria` command-line interface.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_culinaria"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn regions_lists_all_22() {
    let (ok, stdout, _) = run(&["regions"]);
    assert!(ok);
    for code in ["AFR", "ITA", "USA", "KOR", "SCND"] {
        assert!(stdout.contains(code), "{code} missing");
    }
    assert_eq!(stdout.lines().count(), 23); // header + 22 rows
    assert!(stdout.contains("contrasting"));
}

#[test]
fn no_command_shows_usage() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn report_requires_valid_region() {
    let (ok, _, stderr) = run(&["report", "ATLANTIS"]);
    assert!(!ok);
    assert!(stderr.contains("region code"));
}

#[test]
fn report_produces_verdict() {
    let (ok, stdout, _) = run(&["report", "JPN", "--scale", "0.02", "--mc", "2000"]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("Japan"));
    assert!(stdout.contains("verdict:"));
    assert!(stdout.contains("top contributors"));
}

#[test]
fn analyze_emits_agreement_line() {
    let (ok, stdout, _) = run(&["analyze", "--scale", "0.01", "--mc", "1500"]);
    assert!(ok);
    assert!(stdout.contains("z_random"));
    assert!(stdout.contains("pairing-sign agreement with the paper:"));
}

#[test]
fn generate_writes_snapshots() {
    let dir = std::env::temp_dir().join(format!("culinaria-cli-test-{}", std::process::id()));
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let (ok, stdout, _) = run(&["generate", "--scale", "0.01", "--out", dir_str]);
    assert!(ok, "stdout: {stdout}");
    for file in ["flavor.cfdb", "recipes.crdb", "recipes.csv"] {
        let path = dir.join(file);
        assert!(path.exists(), "{file} missing");
        assert!(
            path.metadata().expect("stat").len() > 100,
            "{file} too small"
        );
    }
    // Snapshots decode.
    let flavor_bytes = std::fs::read(dir.join("flavor.cfdb")).expect("readable");
    let db = culinaria::flavordb::io::from_snapshot(flavor_bytes.into()).expect("decodes");
    assert!(db.n_ingredients() > 100);
    let recipe_bytes = std::fs::read(dir.join("recipes.crdb")).expect("readable");
    let store = culinaria::recipedb::io::from_snapshot(recipe_bytes.into()).expect("decodes");
    assert!(store.n_recipes() > 100);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pairings_lists_candidates() {
    let (ok, stdout, _) = run(&["pairings", "ITA", "--scale", "0.02", "--top", "3"]);
    assert!(ok);
    assert!(stdout.contains("novel pairings"));
    assert!(stdout.contains("overlap"));
}

#[test]
fn suggest_generates_a_recipe() {
    let (ok, stdout, _) = run(&["suggest", "ITA", "--scale", "0.02", "--size", "5"]);
    assert!(ok);
    assert!(stdout.contains("generated uniform recipe for Italy"));
    assert_eq!(stdout.lines().filter(|l| l.starts_with("  ")).count(), 5);
    let (ok, stdout, _) = run(&["suggest", "JPN", "--scale", "0.02", "--contrast", "true"]);
    assert!(ok);
    assert!(stdout.contains("contrasting"));
}
