//! Streaming-ingestion replay contract (`culinaria_recipedb::wal`).
//!
//! The import log's whole value is one guarantee: **replaying any
//! prefix of the log is bit-identical to a cold batch import of the
//! same prefix**, at every thread count, with per-recipe failures
//! preserved as tombstones. This suite drives that guarantee over a
//! seeded 200-recipe log (deliberate failures included), checks that
//! the downstream Fig-4 z-score table is bit-identical too, and
//! property-tests the on-disk format: truncations and bit flips must
//! be *reported*, never panicked on.

use std::sync::OnceLock;

use culinaria::analysis::z_analysis::{analyses_to_frame, analyze_world};
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::flavordb::curated::curated_db;
use culinaria::flavordb::FlavorDb;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{io, IngestLog, RecipeStore, Region, Source};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> &'static (FlavorDb, Importer) {
    static FIXTURE: OnceLock<(FlavorDb, Importer)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        (db, importer)
    })
}

/// A deterministic batch of `n` raw recipes over the curated lexicon.
/// Every 17th recipe has no ingredient lines and every 23rd resolves
/// nothing — both fail import and must come back as tombstones.
fn seeded_raws(n: usize) -> Vec<RawRecipe> {
    let (db, _) = fixture();
    let names: Vec<String> = db.ingredients().map(|ing| ing.name.clone()).collect();
    assert!(names.len() > 20, "curated db unexpectedly small");
    (0..n)
        .map(|i| {
            let region = Region::ALL[i % Region::ALL.len()];
            if i % 17 == 5 {
                return RawRecipe {
                    name: format!("empty {i}"),
                    region,
                    source: Source::Synthetic,
                    ingredient_lines: Vec::new(),
                };
            }
            if i % 23 == 7 {
                return RawRecipe {
                    name: format!("gibberish {i}"),
                    region,
                    source: Source::Synthetic,
                    ingredient_lines: vec!["xqzzt unobtainium".into()],
                };
            }
            let k = 2 + i % 5;
            let lines = (0..k)
                .map(|j| names[(i * 7 + j * 13 + 1) % names.len()].clone())
                .collect();
            RawRecipe {
                name: format!("recipe {i}"),
                region,
                source: Source::Epicurious,
                ingredient_lines: lines,
            }
        })
        .collect()
}

/// The 200-record log, built in uneven micro-batches (like a stream
/// would), serialized and re-opened from its own bytes (like the CLI
/// does), plus the live store those batches accumulated.
fn seeded_log() -> (IngestLog, RecipeStore, Vec<RawRecipe>) {
    let (db, importer) = fixture();
    let raws = seeded_raws(200);
    let mut log = IngestLog::new();
    let mut live = RecipeStore::new();
    let mut offset = 0;
    for size in [1usize, 2, 13, 44, 60, 80] {
        let chunk = &raws[offset..offset + size];
        log.append_batch(db, importer, &mut live, chunk, 2)
            .expect("append_batch");
        offset += size;
    }
    assert_eq!(offset, 200);
    let log = IngestLog::from_bytes(log.as_bytes()).expect("own bytes re-open");
    (log, live, raws)
}

#[test]
fn every_prefix_replays_bit_identical_to_cold_batch() {
    let (db, importer) = fixture();
    let (log, live, raws) = seeded_log();
    assert_eq!(log.records().len(), 200);
    let tombstones = log.records().iter().filter(|r| r.is_tombstone()).count();
    assert!(
        (15..=25).contains(&tombstones),
        "seed drifted: {tombstones} tombstones"
    );

    for n in 0..=200 {
        let mut cold = RecipeStore::new();
        let cold_stats = importer
            .import_batch(db, &mut cold, &raws[..n], 1)
            .expect("cold import");
        let cold_bytes = io::to_snapshot(&cold).expect("cold snapshot");
        for threads in THREAD_COUNTS {
            let (store, stats) = log
                .replay_prefix(db, importer, n, threads)
                .expect("prefix replays");
            assert_eq!(
                stats, cold_stats,
                "stats diverged at prefix {n}, {threads} threads"
            );
            assert_eq!(
                io::to_snapshot(&store).expect("replay snapshot"),
                cold_bytes,
                "store bytes diverged at prefix {n}, {threads} threads"
            );
        }
    }

    // The store grown batch-by-batch while logging is itself identical
    // to one full replay — streaming never forks from batch state.
    let (replayed, _) = log.replay(db, importer, 8).expect("full replay");
    assert_eq!(
        io::to_snapshot(&live).expect("live snapshot"),
        io::to_snapshot(&replayed).expect("replayed snapshot"),
        "micro-batched live store diverged from full replay"
    );
}

#[test]
fn z_scores_after_replay_match_cold_batch_at_every_thread_count() {
    let (db, importer) = fixture();
    let (log, _, raws) = seeded_log();
    for n in [67usize, 200] {
        let mc = |threads: usize| MonteCarloConfig {
            n_recipes: 1000,
            seed: 2018,
            n_threads: threads,
        };
        let mut cold = RecipeStore::new();
        importer
            .import_batch(db, &mut cold, &raws[..n], 1)
            .expect("cold import");
        let reference = analyze_world(db, &cold, &NullModel::ALL, &mc(1));
        let reference_table = analyses_to_frame(&reference).to_table_string(22);
        for threads in THREAD_COUNTS {
            let (store, _) = log
                .replay_prefix(db, importer, n, threads)
                .expect("prefix replays");
            let analyses = analyze_world(db, &store, &NullModel::ALL, &mc(threads));
            assert_eq!(analyses.len(), reference.len(), "prefix {n}");
            for (a, b) in analyses.iter().zip(&reference) {
                assert_eq!(a.region, b.region);
                assert_eq!(
                    a.observed_mean.to_bits(),
                    b.observed_mean.to_bits(),
                    "{} observed mean diverged at prefix {n}, {threads} threads",
                    a.region.code()
                );
                for (x, y) in a.comparisons.iter().zip(&b.comparisons) {
                    assert_eq!(x.model, y.model);
                    assert_eq!(
                        x.z.map(f64::to_bits),
                        y.z.map(f64::to_bits),
                        "{} z vs {} diverged at prefix {n}, {threads} threads",
                        a.region.code(),
                        x.model.name()
                    );
                    assert_eq!(x.null, y.null, "{} ensembles diverged", a.region.code());
                }
            }
            assert_eq!(
                analyses_to_frame(&analyses).to_table_string(22),
                reference_table,
                "rendered Fig-4 table diverged at prefix {n}, {threads} threads"
            );
        }
    }
}

/// A small serialized log for the corruption properties below.
fn small_log_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (db, importer) = fixture();
        let raws = seeded_raws(24);
        let mut log = IngestLog::new();
        let mut store = RecipeStore::new();
        log.append_batch(db, importer, &mut store, &raws, 2)
            .expect("append_batch");
        assert!(log.records().iter().any(|r| r.is_tombstone()));
        log.as_bytes().to_vec()
    })
}

proptest! {
    /// Truncating the byte stream anywhere is survivable: either the
    /// cut lands on a record boundary (the valid-prefix case an
    /// interrupted append leaves behind) and the shorter log re-encodes
    /// to exactly those bytes, or decoding reports an error. Never a
    /// panic, never silently invented records.
    #[test]
    fn truncated_logs_never_panic(cut in 0usize..1 << 16) {
        let bytes = small_log_bytes();
        let cut = cut % (bytes.len() + 1);
        match IngestLog::from_bytes(&bytes[..cut]) {
            Ok(log) => {
                prop_assert_eq!(log.as_bytes(), &bytes[..cut]);
                prop_assert!(log.records().len() <= 24);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Flipping any single bit is survivable. Every region of the
    /// format is covered by a check (magic, version, kind, framing,
    /// payload checksum, zero padding), so decode-then-replay must
    /// report an error or reproduce a well-formed log — never panic.
    #[test]
    fn bit_flipped_logs_never_panic(pos in 0usize..1 << 16, bit in 0u32..8) {
        let (db, importer) = fixture();
        let mut bytes = small_log_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        if let Ok(log) = IngestLog::from_bytes(&bytes) {
            prop_assert!(log.records().len() <= 24);
            // A decodable flip (e.g. in an unchecked reserved field)
            // must still replay without panicking.
            let _ = log.replay(db, importer, 2);
        }
    }
}
