//! Integration: the generated world reproduces the paper's published
//! shapes at reduced scale — the same checks the full-scale harnesses
//! print, wired as assertions.

use culinaria::analysis::composition::category_shares;
use culinaria::analysis::popularity::world_popularity_profiles;
use culinaria::analysis::size_dist::world_size_histogram;
use culinaria::analysis::z_analysis::analyze_world;
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::flavordb::Category;
use culinaria::recipedb::Region;

fn test_world() -> culinaria::datagen::World {
    let mut cfg = WorldConfig::tiny();
    cfg.recipe_scale = 0.03;
    cfg.min_region_recipes = 20;
    generate_world(&cfg)
}

#[test]
fn fig4_shape_holds_at_test_scale() {
    let world = test_world();
    let analyses = analyze_world(
        &world.flavor,
        &world.recipes,
        &[NullModel::Random, NullModel::Frequency, NullModel::Category],
        &MonteCarloConfig {
            n_recipes: 8000,
            seed: 5,
            n_threads: 0,
        },
    );
    assert_eq!(analyses.len(), 22);

    let mut sign_matches = 0;
    let mut freq_collapses = 0;
    let mut cat_stays = 0;
    for a in &analyses {
        let zr = a.z_random().expect("non-degenerate null");
        // Every cuisine must deviate significantly — none random-like.
        assert!(zr.abs() > 1.96, "{}: z {zr}", a.region.code());
        if (zr > 0.0) == a.region.paper_positive_pairing() {
            sign_matches += 1;
        }
        let zf = a
            .against(NullModel::Frequency)
            .and_then(|c| c.z)
            .expect("freq null ran");
        let zc = a
            .against(NullModel::Category)
            .and_then(|c| c.z)
            .expect("cat null ran");
        if zf.abs() < 0.4 * zr.abs() {
            freq_collapses += 1;
        }
        if zc.abs() > 0.4 * zr.abs() {
            cat_stays += 1;
        }
    }
    // Small-scale worlds are noisy; require strong majorities, not
    // perfection (the full-scale harness achieves 22/22).
    assert!(sign_matches >= 18, "sign matches only {sign_matches}/22");
    assert!(
        freq_collapses >= 18,
        "frequency explains only {freq_collapses}/22"
    );
    assert!(
        cat_stays >= 15,
        "category wrongly explains {}/22",
        22 - cat_stays
    );
}

#[test]
fn table1_scaling_and_fig3_shapes() {
    let world = test_world();
    // Per-region recipe counts follow Table 1 proportions (scaled),
    // with the configured floor.
    let usa = world.recipes.n_region_recipes(Region::Usa);
    let kor = world.recipes.n_region_recipes(Region::Korea);
    assert!(usa > kor * 5, "USA {usa} vs KOR {kor}");

    // Fig 3a: bounded thin-tailed sizes.
    let h = world_size_histogram(&world.recipes);
    let mean = h.mean().expect("non-empty");
    assert!(mean > 4.0 && mean < 12.0, "mean size {mean}");
    assert!(h.max().expect("non-empty") <= 30);

    // Fig 3b: consistent scaling across regions.
    let profiles = world_popularity_profiles(&world.recipes);
    assert_eq!(profiles.len(), 22);
    for p in &profiles {
        assert_eq!(p.rank_frequency.first().copied(), Some(1.0));
        let exp = p.zipf_exponent.expect("populated cuisine");
        assert!(
            exp > 0.2 && exp < 2.5,
            "{}: exponent {exp}",
            p.region.code()
        );
    }
}

#[test]
fn fig2_regional_deviations() {
    // Category-composition checks need a flavor universe big enough for
    // every category to be well represented; the 60-ingredient tiny
    // universe distorts small categories, so use the 400-ingredient one
    // at reduced recipe scale.
    let mut cfg = WorldConfig::small();
    cfg.recipe_scale = 0.04;
    cfg.min_region_recipes = 25;
    let world = generate_world(&cfg);
    // Dairy-led regions per the paper.
    for region in [Region::France, Region::BritishIsles, Region::Scandinavia] {
        let s = category_shares(&world.flavor, &world.recipes.cuisine(region));
        assert!(
            s[Category::Dairy.index()] > s[Category::Vegetable.index()],
            "{region}: dairy not dominant"
        );
    }
    // Spice-predominant regions.
    for region in [Region::IndianSubcontinent, Region::MiddleEast] {
        let s = category_shares(&world.flavor, &world.recipes.cuisine(region));
        let top = s.iter().cloned().fold(0.0, f64::max);
        assert!(
            s[Category::Spice.index()] >= top * 0.95,
            "{region}: spice share {} vs top {top}",
            s[Category::Spice.index()]
        );
    }
}

#[test]
fn world_determinism_across_calls() {
    let a = test_world();
    let b = test_world();
    assert_eq!(a.recipes.n_recipes(), b.recipes.n_recipes());
    for (x, y) in a.recipes.recipes().zip(b.recipes.recipes()) {
        assert_eq!(x.ingredients(), y.ingredients());
        assert_eq!(x.region, y.region);
    }
    for (x, y) in a.flavor.ingredients().zip(b.flavor.ingredients()) {
        assert_eq!(x, y);
    }
}
