//! Integration: the full Fig 1 pipeline — curated flavor database →
//! raw-text import through the aliasing NLP → recipe store → pairing
//! analysis with Monte-Carlo nulls.

use culinaria::analysis::pairing::{mean_cuisine_score, OverlapCache};
use culinaria::analysis::z_analysis::analyze_cuisine;
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::flavordb::curated::curated_db;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{RecipeStore, Region, Source};

fn raw(name: &str, region: Region, lines: &[&str]) -> RawRecipe {
    RawRecipe {
        name: name.to_owned(),
        region,
        source: Source::AllRecipes,
        ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
    }
}

/// A small but realistic Italian corpus written as free text.
fn italian_corpus() -> Vec<RawRecipe> {
    vec![
        raw(
            "marinara",
            Region::Italy,
            &[
                "3 ripe tomatoes, chopped",
                "2 cloves garlic, minced",
                "2 tbsp olive oil",
                "fresh basil leaves",
            ],
        ),
        raw(
            "caprese",
            Region::Italy,
            &["2 tomatoes, sliced", "fresh basil", "olive oil", "cheese"],
        ),
        raw(
            "herb focaccia",
            Region::Italy,
            &[
                "bread flour",
                "olive oil",
                "rosemary sprigs",
                "oregano",
                "yeast",
            ],
        ),
        raw(
            "pasta al pomodoro",
            Region::Italy,
            &["pasta", "tomato puree", "garlic", "basil", "olive oil"],
        ),
        raw(
            "wine braised beef",
            Region::Italy,
            &["1 pound beef", "red wine", "onion", "carrots", "thyme"],
        ),
        raw(
            "lemon granita",
            Region::Italy,
            &["lemon juice", "sugar", "mint leaves"],
        ),
    ]
}

#[test]
fn import_then_analyze_italian_corpus() {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();
    let stats = importer
        .import(&db, &mut store, &italian_corpus())
        .expect("import succeeds");

    // Every recipe resolves at least partially.
    assert_eq!(stats.stored, 6);
    assert_eq!(stats.dropped, 0);
    assert!(
        stats.lines_resolved >= 20,
        "resolved {}",
        stats.lines_resolved
    );

    let cuisine = store.cuisine(Region::Italy);
    assert_eq!(cuisine.n_recipes(), 6);
    // The aliasing produced multi-ingredient recipes, so pairing is
    // defined and positive on this tomato/basil/oil-heavy corpus.
    let mean = mean_cuisine_score(&db, &cuisine);
    assert!(mean > 0.0, "mean Ns {mean}");

    // Cache agrees with the direct computation.
    let cache = OverlapCache::for_cuisine(&db, &cuisine);
    let cached = cache
        .mean_cuisine_score(&cuisine)
        .expect("pool covers cuisine");
    assert!((cached - mean).abs() < 1e-12);

    // Full analysis against two nulls runs end to end.
    let analysis = analyze_cuisine(
        &db,
        &cuisine,
        &[NullModel::Random, NullModel::Frequency],
        &MonteCarloConfig {
            n_recipes: 3000,
            seed: 11,
            n_threads: 2,
        },
    )
    .expect("pairing-bearing cuisine");
    assert_eq!(analysis.region, Region::Italy);
    assert!(analysis.observed_mean > 0.0);
    assert!(analysis.z_random().is_some());
}

#[test]
fn synonyms_and_variants_map_to_the_same_ids() {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();
    importer
        .import(
            &db,
            &mut store,
            &[
                raw("a", Region::BritishIsles, &["a glass of whisky", "1 bun"]),
                raw("b", Region::BritishIsles, &["whiskey", "bread"]),
            ],
        )
        .expect("import succeeds");
    let a = store
        .recipe(culinaria::recipedb::RecipeId(0))
        .expect("stored");
    let b = store
        .recipe(culinaria::recipedb::RecipeId(1))
        .expect("stored");
    // Spelling variant and synonym collapse onto identical ingredient ids.
    assert_eq!(a.ingredients(), b.ingredients());
}

#[test]
fn curation_affects_downstream_scores() {
    // Removing a hub ingredient from the flavor DB before import
    // changes what recipes resolve to — the paper's curation loop.
    let mut db = curated_db();
    db.remove_ingredient("tomato").expect("tomato exists");
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();
    let stats = importer
        .import(
            &db,
            &mut store,
            &[raw("t", Region::Italy, &["2 tomatoes", "basil"])],
        )
        .expect("import succeeds");
    assert_eq!(stats.stored, 1);
    let r = store
        .recipe(culinaria::recipedb::RecipeId(0))
        .expect("stored");
    // Only basil made it; tomato is gone from the lexicon.
    assert_eq!(r.size(), 1);
}
