//! `culinaria` — command-line front end for the culinary-patterns
//! framework.
//!
//! ```text
//! culinaria generate [--scale S] [--seed N] [--out DIR]
//! culinaria migrate-artifact [--in DIR] [--out DIR] [--no-overlaps]
//! culinaria analyze  [--scale S] [--seed N] [--mc N] [--metrics[=json]]
//! culinaria report   <REGION> [--scale S] [--seed N] [--metrics[=json]]
//! culinaria import   <FILE> [--threads N] [--metrics[=json]]
//! culinaria ingest   <FILE> --log PATH [--threads N]
//! culinaria replay   --log PATH [--prefix N] [--threads N] [--analyze]
//! culinaria pairings <REGION> [--scale S] [--top K]
//! culinaria serve    (--stdio | --socket PATH) [--data DIR] [--threads N]
//!                    [--batch N] [--cache-entries N] [--max-queue N]
//!                    [--mc N] [--seed N] [--once] [--metrics[=json]]
//! culinaria regions
//! ```
//!
//! `--metrics` renders the observability registry (spans, counters,
//! histograms — see `culinaria-obs`) to stderr when the command
//! finishes; `--metrics=json` renders it as one JSON object instead.

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use culinaria::analysis::contribution::top_contributors;
use culinaria::analysis::generation::{Objective, RecipeGenerator};
use culinaria::analysis::pairing::OverlapCache;
use culinaria::analysis::z_analysis::{
    analyses_to_frame, try_analyze_cuisine_observed, try_analyze_world_observed,
};
use culinaria::analysis::{FlavorViewRef, RecipesViewRef};
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::datagen::{generate_world, World, WorldConfig};
use culinaria::flavordb::FlavorArtifactBuilder;
use culinaria::flavordb::{AlignedBytes, FlavorDb};
use culinaria::obs::Metrics;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{IngestLog, RecipeArtifactBuilder, RecipeStore, Region, Source};
use culinaria::serve::{ServeConfig, Server};

struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if let Some(name) = raw[i].strip_prefix("--") {
            // `--name=value` binds inline; otherwise a non-`--`
            // successor is the value. A `--`-prefixed successor is the
            // next flag, not a value — boolean flags (`--uniform`,
            // `--contrast`) must not swallow it, whatever order the
            // flags come in.
            if let Some((name, value)) = name.split_once('=') {
                flags.insert(name.to_owned(), value.to_owned());
                i += 1;
                continue;
            }
            let value = match raw.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 2;
                    next.clone()
                }
                _ => {
                    i += 1;
                    String::new()
                }
            };
            flags.insert(name.to_owned(), value);
        } else {
            positional.push(raw[i].clone());
            i += 1;
        }
    }
    Args { flags, positional }
}

impl Args {
    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Args::flag`], but a present-yet-unparseable value is an
    /// error instead of a silent fall-back to the default. Long-lived
    /// commands (`serve`) use this so a typo'd `--cache-entries lots`
    /// refuses to start rather than running with a surprise default.
    fn flag_checked<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse value {v:?}")),
        }
    }

    /// The metrics sink selected by `--metrics` (text) or
    /// `--metrics=json`; disabled (zero-cost no-op) when absent.
    fn metrics(&self) -> MetricsSink {
        match self.flags.get("metrics").map(String::as_str) {
            None => MetricsSink {
                metrics: Metrics::disabled(),
                json: false,
            },
            Some(mode) => MetricsSink {
                metrics: Metrics::enabled(),
                json: mode == "json",
            },
        }
    }
}

/// A [`Metrics`] handle plus the output format `--metrics` selected.
struct MetricsSink {
    metrics: Metrics,
    json: bool,
}

impl MetricsSink {
    /// Render the registry to stderr (stdout stays the command's data).
    /// No-op when metrics were not requested.
    fn dump(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        if self.json {
            eprintln!("{}", self.metrics.render_json());
        } else {
            eprint!("{}", self.metrics.render_text());
        }
    }
}

fn build_world(args: &Args) -> World {
    let mut cfg = WorldConfig::paper();
    cfg.recipe_scale = args.flag("scale", 0.1);
    cfg.seed = args.flag("seed", 2018u64);
    eprintln!(
        "generating world (scale {}, seed {})…",
        cfg.recipe_scale, cfg.seed
    );
    generate_world(&cfg)
}

/// One malformed block found while parsing the `import` text format.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ParseIssue {
    /// 1-based line number of the offending block header.
    line: usize,
    message: String,
}

/// Parse the `import` command's plain-text recipe format: recipes are
/// blank-line-separated blocks, the first line of each block is
/// `name | REGION_CODE`, every following line is one free-text
/// ingredient line. `#` starts a comment line anywhere.
///
/// Malformed blocks (bad header, unknown region tag) do not abort the
/// parse: every well-formed recipe is returned, and every bad block is
/// reported as a [`ParseIssue`] with its line number so curators can
/// fix the whole file in one pass.
fn parse_raw_recipes(text: &str) -> (Vec<RawRecipe>, Vec<ParseIssue>) {
    let mut raws = Vec::new();
    let mut issues = Vec::new();
    let mut block: Vec<(usize, &str)> = Vec::new();
    // A sentinel blank line flushes the final block without a special case.
    for (idx, line) in text.lines().chain(std::iter::once("")).enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if !line.is_empty() {
            block.push((idx + 1, line));
            continue;
        }
        let Some(((header_line, header), ingredients)) = block.split_first() else {
            continue;
        };
        let Some((name, code)) = header.split_once('|') else {
            issues.push(ParseIssue {
                line: *header_line,
                message: format!("recipe header must be `name | REGION_CODE`, got {header:?}"),
            });
            block.clear();
            continue;
        };
        let code = code.trim();
        let Ok(region) = code.parse::<Region>() else {
            issues.push(ParseIssue {
                line: *header_line,
                message: format!("unknown region code {code:?}"),
            });
            block.clear();
            continue;
        };
        raws.push(RawRecipe {
            name: name.trim().to_owned(),
            region,
            source: Source::Synthetic,
            ingredient_lines: ingredients.iter().map(|(_, l)| (*l).to_owned()).collect(),
        });
        block.clear();
    }
    (raws, issues)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         culinaria generate [--scale S] [--seed N] [--out DIR]   write dataset snapshots + CSV\n  \
         culinaria migrate-artifact [--in DIR] [--out DIR]       CFDB1/CRDB1 → zero-copy v2 artifacts\n  \
         culinaria analyze  [--scale S] [--seed N] [--mc N]      Fig-4 z-score table\n  \
         culinaria report   <REGION> [--scale S] [--seed N]      one cuisine in depth\n  \
         culinaria import   <FILE> [--threads N]                 import raw recipes from a file\n  \
         culinaria ingest   <FILE> --log PATH [--threads N]      import + append to a replay log\n  \
         culinaria replay   --log PATH [--prefix N] [--analyze]  rebuild the store from the log\n  \
         culinaria pairings <REGION> [--scale S] [--top K]       novel pairing suggestions\n  \
         culinaria suggest  <REGION> [--size N] [--uniform|--contrast]  generate a recipe\n  \
         culinaria serve    (--stdio | --socket PATH) [--data DIR]      online query service\n  \
         culinaria regions                                       list Table 1 regions\n\
         \n\
         analyze, report and import accept --metrics[=json]: a pipeline-\n\
         telemetry dump (spans, counters, histograms) on stderr at exit."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        return usage();
    };
    let args = parse_args(&raw[1..]);

    match command.as_str() {
        "regions" => {
            println!(
                "{:5} {:24} {:>8} {:>12} {:>12}",
                "code", "name", "recipes", "ingredients", "pairing"
            );
            for r in Region::ALL {
                println!(
                    "{:5} {:24} {:>8} {:>12} {:>12}",
                    r.code(),
                    r.name(),
                    r.paper_recipe_count(),
                    r.paper_ingredient_count(),
                    if r.paper_positive_pairing() {
                        "uniform"
                    } else {
                        "contrasting"
                    }
                );
            }
            ExitCode::SUCCESS
        }
        "generate" => {
            let world = build_world(&args);
            let out = args
                .flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| "culinaria-data".to_owned());
            if let Err(e) = std::fs::create_dir_all(&out) {
                eprintln!("cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
            let write = |name: &str, bytes: &[u8]| -> std::io::Result<()> {
                let path = format!("{out}/{name}");
                let mut f = std::fs::File::create(&path)?;
                f.write_all(bytes)?;
                println!("wrote {path} ({} bytes)", bytes.len());
                Ok(())
            };
            let (flavor, recipes) = match (
                culinaria::flavordb::io::to_snapshot(&world.flavor),
                culinaria::recipedb::io::to_snapshot(&world.recipes),
            ) {
                (Ok(f), Ok(r)) => (f, r),
                (Err(e), _) => {
                    eprintln!("cannot encode flavor snapshot: {e}");
                    return ExitCode::FAILURE;
                }
                (_, Err(e)) => {
                    eprintln!("cannot encode recipe snapshot: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // v2 zero-copy artifacts ride along with the v1 snapshots,
            // so downstream consumers can open without parsing.
            let (flavor2, recipes2) = match (
                FlavorArtifactBuilder::new(&world.flavor).build(),
                RecipeArtifactBuilder::new(&world.recipes).build(),
            ) {
                (Ok(f), Ok(r)) => (f, r),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("cannot encode v2 artifact: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let csv = culinaria::recipedb::io::to_csv(&world.recipes);
            if let Err(e) = write("flavor.cfdb", &flavor)
                .and_then(|_| write("recipes.crdb", &recipes))
                .and_then(|_| write("flavor.cfdb2", &flavor2))
                .and_then(|_| write("recipes.crdb2", &recipes2))
                .and_then(|_| write("recipes.csv", csv.as_bytes()))
            {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "migrate-artifact" => {
            // CFDB1/CRDB1 snapshots → zero-copy CFDB2/CRDB2 artifacts,
            // with per-region overlap triangles precomputed into the
            // flavor artifact (skip with --no-overlaps) so analyses can
            // reuse them instead of re-sweeping at open time.
            let dir = args
                .flags
                .get("in")
                .cloned()
                .unwrap_or_else(|| "culinaria-data".to_owned());
            let out = args
                .flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| dir.clone());
            let read = |name: &str| -> Option<Vec<u8>> {
                let path = format!("{dir}/{name}");
                match std::fs::read(&path) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        None
                    }
                }
            };
            let (Some(flavor_raw), Some(recipes_raw)) = (read("flavor.cfdb"), read("recipes.crdb"))
            else {
                return ExitCode::FAILURE;
            };
            let db = match culinaria::flavordb::io::from_snapshot(bytes::Bytes::from(flavor_raw)) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("cannot decode flavor snapshot: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let store =
                match culinaria::recipedb::io::from_snapshot(bytes::Bytes::from(recipes_raw)) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot decode recipe snapshot: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let mut builder = FlavorArtifactBuilder::new(&db);
            if !args.flags.contains_key("no-overlaps") {
                for region in store.regions() {
                    let cuisine = store.cuisine(region);
                    let cache = OverlapCache::for_cuisine(&db, &cuisine);
                    if cache.is_empty() {
                        continue;
                    }
                    if let Err(e) = builder.add_overlap(region.code(), cache.pool(), cache.tri()) {
                        eprintln!("cannot attach {} overlap section: {e}", region.code());
                        return ExitCode::FAILURE;
                    }
                }
            }
            let (flavor2, recipes2) =
                match (builder.build(), RecipeArtifactBuilder::new(&store).build()) {
                    (Ok(f), Ok(r)) => (f, r),
                    (Err(e), _) | (_, Err(e)) => {
                        eprintln!("cannot encode v2 artifact: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            if let Err(e) = std::fs::create_dir_all(&out) {
                eprintln!("cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
            let write = |name: &str, bytes: &[u8]| -> std::io::Result<()> {
                let path = format!("{out}/{name}");
                let mut f = std::fs::File::create(&path)?;
                f.write_all(bytes)?;
                println!("wrote {path} ({} bytes)", bytes.len());
                Ok(())
            };
            if let Err(e) =
                write("flavor.cfdb2", &flavor2).and_then(|_| write("recipes.crdb2", &recipes2))
            {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "analyze" => {
            let world = build_world(&args);
            let mc = MonteCarloConfig {
                n_recipes: args.flag("mc", 20_000usize),
                seed: args.flag("seed", 2018u64),
                n_threads: 0,
            };
            let sink = args.metrics();
            let analyses = match try_analyze_world_observed(
                &world.flavor,
                &world.recipes,
                &NullModel::ALL,
                &mc,
                &sink.metrics,
            ) {
                Ok(a) => a,
                Err(failure) => {
                    eprintln!("analysis failed: {failure}");
                    sink.dump();
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", analyses_to_frame(&analyses).to_table_string(22));
            let matches = analyses
                .iter()
                .filter(|a| {
                    (a.z_random().unwrap_or(0.0) > 0.0) == a.region.paper_positive_pairing()
                })
                .count();
            println!("pairing-sign agreement with the paper: {matches}/22");
            sink.dump();
            ExitCode::SUCCESS
        }
        "import" => {
            let Some(path) = args.positional.first() else {
                eprintln!("import needs a file path (see --help for the format)");
                return ExitCode::from(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (raws, issues) = parse_raw_recipes(&text);
            for issue in &issues {
                eprintln!("{path}:{}: {}", issue.line, issue.message);
            }
            let db = culinaria::flavordb::curated::curated_db();
            let importer = Importer::from_flavor_db(&db);
            let mut store = RecipeStore::new();
            let sink = args.metrics();
            let stats = match importer.import_batch_observed(
                &db,
                &mut store,
                &raws,
                args.flag("threads", 0usize),
                &sink.metrics,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("import failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "imported {}/{} recipes ({} dropped), {} lines resolved, {} unresolved",
                stats.stored,
                stats.offered,
                stats.dropped,
                stats.lines_resolved,
                stats.lines_unresolved
            );
            if !stats.unresolved_tokens.is_empty() {
                println!("top unresolved tokens (curation worklist):");
                for (tok, count) in stats.unresolved_tokens.iter().take(10) {
                    println!("  {count:>4}× {tok}");
                }
            }
            for failure in &stats.failures {
                eprintln!("dropped {failure}");
            }
            sink.dump();
            if issues.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "{path}: {} malformed block(s) skipped — fix them and re-import",
                    issues.len()
                );
                ExitCode::FAILURE
            }
        }
        "ingest" => {
            let Some(path) = args.positional.first() else {
                eprintln!("ingest needs a file path (same text format as `import`)");
                return ExitCode::from(2);
            };
            let Some(log_path) = args.flags.get("log").filter(|p| !p.is_empty()).cloned() else {
                eprintln!("ingest needs --log PATH (the append-only import log)");
                return ExitCode::from(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (raws, issues) = parse_raw_recipes(&text);
            for issue in &issues {
                eprintln!("{path}:{}: {}", issue.line, issue.message);
            }
            let db = culinaria::flavordb::curated::curated_db();
            let importer = Importer::from_flavor_db(&db);
            let threads = args.flag("threads", 0usize);
            // An existing log is prior history: replay it first so the
            // new batch imports on top of every earlier record and the
            // grown log still replays ≡ one big batch.
            let mut log = match std::fs::read(&log_path) {
                Ok(bytes) => match IngestLog::from_bytes(&bytes) {
                    Ok(log) => log,
                    Err(e) => {
                        eprintln!("{log_path}: corrupt import log: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => IngestLog::new(),
                Err(e) => {
                    eprintln!("cannot read {log_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut store = if log.is_empty() {
                RecipeStore::new()
            } else {
                match log.replay(&db, &importer, threads) {
                    Ok((store, _)) => store,
                    Err(e) => {
                        eprintln!("{log_path}: cannot replay existing log: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let prior = log.records().len();
            let stats = match log.append_batch(&db, &importer, &mut store, &raws, threads) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ingest failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&log_path, log.as_bytes()) {
                eprintln!("cannot write {log_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "ingested {}/{} recipes ({} tombstoned); \
                 log {log_path}: {} records (+{}), {} bytes; store: {} recipes",
                stats.stored,
                stats.offered,
                stats.failures.len(),
                log.records().len(),
                log.records().len() - prior,
                log.as_bytes().len(),
                store.n_recipes()
            );
            for failure in &stats.failures {
                eprintln!("tombstoned {failure}");
            }
            if issues.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "{path}: {} malformed block(s) skipped — fix them and re-ingest",
                    issues.len()
                );
                ExitCode::FAILURE
            }
        }
        "replay" => {
            let Some(log_path) = args.flags.get("log").filter(|p| !p.is_empty()) else {
                eprintln!("replay needs --log PATH");
                return ExitCode::from(2);
            };
            let bytes = match std::fs::read(log_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read {log_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let log = match IngestLog::from_bytes(&bytes) {
                Ok(log) => log,
                Err(e) => {
                    eprintln!("{log_path}: corrupt import log: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let n = args.flag("prefix", log.records().len());
            let db = culinaria::flavordb::curated::curated_db();
            let importer = Importer::from_flavor_db(&db);
            let replayed = log.replay_prefix(&db, &importer, n, args.flag("threads", 0usize));
            let (store, stats) = match replayed {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "replayed {n}/{} records: {} stored, {} tombstoned, \
                 {} lines resolved, {} unresolved",
                log.records().len(),
                stats.stored,
                stats.failures.len(),
                stats.lines_resolved,
                stats.lines_unresolved
            );
            if args.flags.contains_key("analyze") {
                let mc = MonteCarloConfig {
                    n_recipes: args.flag("mc", 2000usize),
                    seed: args.flag("seed", 2018u64),
                    n_threads: 0,
                };
                let sink = args.metrics();
                let analyses = match try_analyze_world_observed(
                    &db,
                    &store,
                    &NullModel::ALL,
                    &mc,
                    &sink.metrics,
                ) {
                    Ok(a) => a,
                    Err(failure) => {
                        eprintln!("analysis failed: {failure}");
                        sink.dump();
                        return ExitCode::FAILURE;
                    }
                };
                println!("{}", analyses_to_frame(&analyses).to_table_string(22));
                sink.dump();
            }
            ExitCode::SUCCESS
        }
        "report" => {
            let Some(region) = args
                .positional
                .first()
                .and_then(|s| s.parse::<Region>().ok())
            else {
                eprintln!("report needs a region code (see `culinaria regions`)");
                return ExitCode::from(2);
            };
            let world = build_world(&args);
            let cuisine = world.recipes.cuisine(region);
            let mc = MonteCarloConfig {
                n_recipes: args.flag("mc", 20_000usize),
                seed: args.flag("seed", 2018u64),
                n_threads: 0,
            };
            let sink = args.metrics();
            let analysis = match try_analyze_cuisine_observed(
                &world.flavor,
                &cuisine,
                &NullModel::ALL,
                &mc,
                &sink.metrics,
            ) {
                Ok(Some(analysis)) => analysis,
                Ok(None) => {
                    eprintln!("{region}: no pairing-bearing recipes");
                    return ExitCode::FAILURE;
                }
                Err(failure) => {
                    eprintln!("report failed: {failure}");
                    sink.dump();
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{} — {} recipes, {} ingredients",
                region.name(),
                analysis.n_recipes,
                analysis.n_ingredients
            );
            println!("observed <Ns> = {:.3}", analysis.observed_mean);
            for c in &analysis.comparisons {
                println!(
                    "  vs {:22} z = {:+10.1}",
                    c.model.name(),
                    c.z.unwrap_or(f64::NAN)
                );
            }
            println!("verdict: {} food pairing", analysis.verdict());
            let positive = analysis.z_random().unwrap_or(0.0) > 0.0;
            println!("\ntop contributors:");
            for c in top_contributors(&world.flavor, &cuisine, 5, positive) {
                println!(
                    "  {:30} {:+7.2}%  ({} recipes)",
                    c.name, c.percent_change, c.n_recipes
                );
            }
            sink.dump();
            ExitCode::SUCCESS
        }
        "suggest" => {
            let Some(region) = args
                .positional
                .first()
                .and_then(|s| s.parse::<Region>().ok())
            else {
                eprintln!("suggest needs a region code (see `culinaria regions`)");
                return ExitCode::from(2);
            };
            let world = build_world(&args);
            let size: usize = args.flag("size", 7usize);
            let cuisine = world.recipes.cuisine(region);
            let objective = if args.flags.contains_key("contrast") {
                Objective::MinimizeSharing
            } else {
                Objective::MaximizeSharing
            };
            let generator = RecipeGenerator::new(&world.flavor, &cuisine, 100);
            let Some(recipe) = generator.generate_recipe(size, objective, 0) else {
                eprintln!("{region}: pool too small for a {size}-ingredient recipe");
                return ExitCode::FAILURE;
            };
            println!(
                "generated {} recipe for {} (Ns = {:.2}):",
                match objective {
                    Objective::MinimizeSharing => "contrasting",
                    _ => "uniform",
                },
                region.name(),
                recipe.ns
            );
            for id in &recipe.ingredients {
                println!("  {}", generator.name(*id));
            }
            ExitCode::SUCCESS
        }
        "pairings" => {
            let Some(region) = args
                .positional
                .first()
                .and_then(|s| s.parse::<Region>().ok())
            else {
                eprintln!("pairings needs a region code (see `culinaria regions`)");
                return ExitCode::from(2);
            };
            let world = build_world(&args);
            let top_k: usize = args.flag("top", 10usize);
            let cuisine = world.recipes.cuisine(region);
            let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);
            let pool = cache.pool().to_vec();
            let mut candidates: Vec<(f64, usize, usize, usize, usize)> = Vec::new();
            for i in 0..pool.len() {
                for j in (i + 1)..pool.len() {
                    let overlap = cache.overlap(i as u32, j as u32) as usize;
                    if overlap == 0 {
                        continue;
                    }
                    let cooc = world.recipes.cooccurrence(pool[i], pool[j]);
                    candidates.push((overlap as f64 / (1.0 + cooc as f64), overlap, cooc, i, j));
                }
            }
            candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
            println!(
                "novel pairings for {} (high overlap, low co-use):",
                region.name()
            );
            for &(novelty, overlap, cooc, i, j) in candidates.iter().take(top_k) {
                // The pool comes straight from the overlap cache, so
                // both ids should be live; a mismatch means the cache
                // and database went out of sync — report, don't panic.
                let (a, b) = match (
                    world.flavor.ingredient(pool[i]),
                    world.flavor.ingredient(pool[j]),
                ) {
                    (Ok(a), Ok(b)) => (&a.name, &b.name),
                    (Err(e), _) | (_, Err(e)) => {
                        eprintln!("pairing table references a dead ingredient: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!("  {novelty:7.1}  {a} + {b}  (overlap {overlap}, co-used {cooc}×)");
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let opts = match ServeOptions::from_args(&args) {
                Ok(opts) => opts,
                Err(msg) => {
                    eprintln!("serve: {msg}");
                    return ExitCode::from(2);
                }
            };
            run_serve(&opts)
        }
        _ => usage(),
    }
}

/// Which transport `culinaria serve` listens on. No network — queries
/// arrive framed over stdin/stdout or a unix-domain socket.
#[derive(Debug)]
enum ServeTransport {
    /// One connection on stdin/stdout; exits at EOF or `QUIT`.
    Stdio,
    /// Unix-domain socket at the given path; one thread per connection.
    Socket(String),
}

/// Fully validated `culinaria serve` options. Validation happens
/// *before* any data is opened, so a malformed flag fails fast with
/// exit code 2 and a message naming the flag.
#[derive(Debug)]
struct ServeOptions {
    data_dir: String,
    transport: ServeTransport,
    cfg: ServeConfig,
    /// Accept exactly one socket connection, then exit (smoke tests).
    once: bool,
    /// `Some(json)` when `--metrics[=json]` asked for an exit dump.
    metrics_dump: Option<bool>,
}

impl ServeOptions {
    fn from_args(args: &Args) -> Result<ServeOptions, String> {
        let cfg = ServeConfig {
            threads: args.flag_checked("threads", 0usize)?,
            batch_max: args.flag_checked("batch", 32usize)?,
            cache_entries: args.flag_checked("cache-entries", 4096usize)?,
            max_queue: args.flag_checked("max-queue", 256usize)?,
            mc_recipes: args.flag_checked("mc", 2000usize)?,
            seed: args.flag_checked("seed", 2018u64)?,
        };
        if cfg.batch_max == 0 {
            return Err("--batch: must be at least 1".to_owned());
        }
        if cfg.max_queue == 0 {
            return Err("--max-queue: must be at least 1".to_owned());
        }
        let transport = match (args.flags.contains_key("stdio"), args.flags.get("socket")) {
            (true, Some(_)) => return Err("--stdio and --socket are mutually exclusive".to_owned()),
            (true, None) => ServeTransport::Stdio,
            (false, Some(path)) if !path.is_empty() => ServeTransport::Socket(path.clone()),
            (false, Some(_)) => return Err("--socket: needs a path".to_owned()),
            (false, None) => return Err("pick a transport: --stdio or --socket PATH".to_owned()),
        };
        let metrics_dump = match args.flags.get("metrics").map(String::as_str) {
            None => None,
            Some("") => Some(false),
            Some("json") => Some(true),
            Some(other) => {
                return Err(format!(
                    "--metrics: expected `--metrics` or `--metrics=json`, got {other:?}"
                ))
            }
        };
        Ok(ServeOptions {
            data_dir: args
                .flags
                .get("data")
                .cloned()
                .unwrap_or_else(|| "culinaria-data".to_owned()),
            transport,
            cfg,
            once: args.flags.contains_key("once"),
            metrics_dump,
        })
    }
}

/// The dataset backing a serve session, owned for the server's whole
/// lifetime. Artifacts stay as aligned byte buffers — the borrowed
/// views into them are built (O(1)) inside [`run_serve`].
enum ServeData {
    /// Zero-copy v2 artifacts (`flavor.cfdb2` + `recipes.crdb2`).
    Artifacts(AlignedBytes, AlignedBytes),
    /// Decoded v1 snapshots (`flavor.cfdb` + `recipes.crdb`).
    Owned(Box<FlavorDb>, Box<RecipeStore>),
}

/// Load the serve dataset: v2 zero-copy artifacts first, v1 snapshots
/// as a decoded fallback, otherwise a pointer at `culinaria generate`.
fn open_serve_data(dir: &str) -> Result<ServeData, String> {
    let path = |name: &str| format!("{dir}/{name}");
    let f2 = path("flavor.cfdb2");
    let r2 = path("recipes.crdb2");
    if std::path::Path::new(&f2).exists() && std::path::Path::new(&r2).exists() {
        let read =
            |p: &str| AlignedBytes::read_file(p).map_err(|e| format!("cannot read {p}: {e}"));
        return Ok(ServeData::Artifacts(read(&f2)?, read(&r2)?));
    }
    let f1 = path("flavor.cfdb");
    let r1 = path("recipes.crdb");
    if std::path::Path::new(&f1).exists() && std::path::Path::new(&r1).exists() {
        eprintln!("serve: no v2 artifacts in {dir}, decoding v1 snapshots (slower open)");
        let read = |p: &str| std::fs::read(p).map_err(|e| format!("cannot read {p}: {e}"));
        let db = culinaria::flavordb::io::from_snapshot(bytes::Bytes::from(read(&f1)?))
            .map_err(|e| format!("cannot decode {f1}: {e}"))?;
        let store = culinaria::recipedb::io::from_snapshot(bytes::Bytes::from(read(&r1)?))
            .map_err(|e| format!("cannot decode {r1}: {e}"))?;
        return Ok(ServeData::Owned(Box::new(db), Box::new(store)));
    }
    Err(format!(
        "{dir}: no dataset (flavor.cfdb2/recipes.crdb2 or flavor.cfdb/recipes.crdb) — \
         run `culinaria generate --out {dir}` first"
    ))
}

fn run_serve(opts: &ServeOptions) -> ExitCode {
    let data = match open_serve_data(&opts.data_dir) {
        Ok(data) => data,
        Err(msg) => {
            eprintln!("serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Both arms converge on `serve_over`; the borrowed-artifact views
    // only live as long as the buffers, hence the per-arm open here.
    match &data {
        ServeData::Artifacts(fbuf, rbuf) => {
            let flavor = match culinaria::flavordb::artifact::open(fbuf.as_slice()) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("serve: corrupt flavor artifact: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let recipes = match culinaria::recipedb::artifact::open(rbuf.as_slice()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("serve: corrupt recipe artifact: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "serve: opened v2 artifacts from {} (zero-copy)",
                opts.data_dir
            );
            serve_over(
                FlavorViewRef::Artifact(&flavor),
                RecipesViewRef::Artifact(&recipes),
                opts,
            )
        }
        ServeData::Owned(db, store) => {
            serve_over(FlavorViewRef::Owned(db), RecipesViewRef::Owned(store), opts)
        }
    }
}

/// Run the server over already-opened views until the transport drains.
fn serve_over(
    flavor: FlavorViewRef<'_>,
    recipes: RecipesViewRef<'_>,
    opts: &ServeOptions,
) -> ExitCode {
    // The METRICS endpoint serves live telemetry, so the server always
    // records; `--metrics[=json]` only controls the exit dump below.
    let server = Server::new(flavor, recipes, opts.cfg, Metrics::enabled());
    let code = match &opts.transport {
        ServeTransport::Stdio => {
            let stats = server.serve_connection(std::io::stdin().lock(), std::io::stdout());
            match stats {
                Ok(stats) => {
                    eprintln!(
                        "serve: connection closed ({} served, {} shed, {} protocol errors)",
                        stats.served, stats.shed, stats.protocol_errors
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serve: transport error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ServeTransport::Socket(path) => serve_socket(&server, path, opts.once),
    };
    if let Some(json) = opts.metrics_dump {
        if json {
            eprintln!("{}", server.metrics().render_json());
        } else {
            eprint!("{}", server.metrics().render_text());
        }
    }
    code
}

/// Accept loop for `--socket`: stale socket files from a previous run
/// are removed, each connection gets a scoped thread sharing the one
/// server (shards and caches are built once, not per connection).
fn serve_socket(server: &Server<'_>, path: &str, once: bool) -> ExitCode {
    if std::path::Path::new(path).exists() {
        let _ = std::fs::remove_file(path);
    }
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serve: listening on {path}{}",
        if once { " (one connection)" } else { "" }
    );
    let code = std::thread::scope(|scope| {
        for conn in listener.incoming() {
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reader = match stream.try_clone() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("serve: cannot clone socket: {e}");
                    continue;
                }
            };
            if once {
                return match server.serve_connection(reader, stream) {
                    Ok(stats) => {
                        eprintln!(
                            "serve: connection closed ({} served, {} shed, {} protocol errors)",
                            stats.served, stats.shed, stats.protocol_errors
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("serve: transport error: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            scope.spawn(move || {
                if let Err(e) = server.serve_connection(reader, stream) {
                    eprintln!("serve: transport error: {e}");
                }
            });
        }
        ExitCode::SUCCESS
    });
    let _ = std::fs::remove_file(path);
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[&str]) -> Args {
        parse_args(&raw.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn boolean_flag_does_not_swallow_next_flag() {
        let args = parse(&["ita", "--uniform", "--size", "3"]);
        assert_eq!(args.positional, vec!["ita"]);
        assert_eq!(args.flags.get("uniform").map(String::as_str), Some(""));
        assert_eq!(args.flag("size", 7usize), 3);
    }

    #[test]
    fn flag_orders_are_equivalent() {
        let a = parse(&["ita", "--size", "3", "--uniform"]);
        let b = parse(&["ita", "--uniform", "--size", "3"]);
        assert_eq!(a.flags, b.flags);
        assert_eq!(a.positional, b.positional);
    }

    #[test]
    fn trailing_boolean_flag_is_empty() {
        let args = parse(&["--contrast"]);
        assert_eq!(args.flags.get("contrast").map(String::as_str), Some(""));
        assert!(args.positional.is_empty());
    }

    #[test]
    fn valued_flags_and_positionals() {
        let args = parse(&["ita", "--scale", "0.5", "--seed", "7", "extra"]);
        assert_eq!(args.positional, vec!["ita", "extra"]);
        assert!((args.flag("scale", 0.1f64) - 0.5).abs() < 1e-12);
        assert_eq!(args.flag("seed", 2018u64), 7);
        // Missing flag falls back to the default.
        assert_eq!(args.flag("mc", 20_000usize), 20_000);
    }

    #[test]
    fn equals_syntax_binds_inline() {
        let args = parse(&["analyze", "--scale=0.5", "--metrics=json", "--seed", "7"]);
        assert_eq!(args.positional, vec!["analyze"]);
        assert!((args.flag("scale", 0.1f64) - 0.5).abs() < 1e-12);
        assert_eq!(args.flags.get("metrics").map(String::as_str), Some("json"));
        assert_eq!(args.flag("seed", 2018u64), 7);
    }

    #[test]
    fn metrics_flag_selects_sink() {
        assert!(!parse(&["analyze"]).metrics().metrics.is_enabled());
        let text = parse(&["analyze", "--metrics"]).metrics();
        assert!(text.metrics.is_enabled() && !text.json);
        let json = parse(&["analyze", "--metrics=json"]).metrics();
        assert!(json.metrics.is_enabled() && json.json);
    }

    #[test]
    fn flag_checked_rejects_malformed_values() {
        let args = parse(&["--threads", "two"]);
        let err = args.flag_checked("threads", 0usize).unwrap_err();
        assert!(err.contains("--threads") && err.contains("two"), "{err}");
        // Absent flag is still the default; well-formed value parses.
        assert_eq!(parse(&[]).flag_checked("threads", 3usize), Ok(3));
        assert_eq!(
            parse(&["--threads", "8"]).flag_checked("threads", 0usize),
            Ok(8)
        );
        // A bare flag (empty value) is malformed for a numeric flag.
        assert!(parse(&["--threads"])
            .flag_checked("threads", 0usize)
            .is_err());
    }

    #[test]
    fn serve_options_reject_malformed_flags() {
        let reject = |raw: &[&str], needle: &str| {
            let err = ServeOptions::from_args(&parse(raw)).unwrap_err();
            assert!(
                err.contains(needle),
                "args {raw:?}: error {err:?} lacks {needle:?}"
            );
        };
        reject(&["--stdio", "--cache-entries", "lots"], "--cache-entries");
        reject(&["--stdio", "--max-queue", "-4"], "--max-queue");
        reject(&["--stdio", "--max-queue", "0"], "--max-queue");
        reject(&["--stdio", "--batch", "0"], "--batch");
        reject(&["--stdio", "--threads", "two"], "--threads");
        reject(&["--stdio", "--seed", "7.5"], "--seed");
        reject(&["--stdio", "--metrics=xml"], "--metrics");
        reject(
            &["--stdio", "--socket", "/tmp/x.sock"],
            "mutually exclusive",
        );
        reject(&["--socket"], "--socket");
        reject(&[], "--stdio or --socket");
    }

    #[test]
    fn serve_options_accept_a_full_flag_set() {
        let args = parse(&[
            "--socket",
            "/tmp/culinaria.sock",
            "--data",
            "d",
            "--threads",
            "4",
            "--batch",
            "16",
            "--cache-entries",
            "128",
            "--max-queue",
            "64",
            "--mc",
            "500",
            "--seed",
            "9",
            "--once",
            "--metrics=json",
        ]);
        let opts = ServeOptions::from_args(&args).expect("valid flags");
        assert_eq!(opts.data_dir, "d");
        assert!(
            matches!(opts.transport, ServeTransport::Socket(ref p) if p == "/tmp/culinaria.sock")
        );
        assert_eq!(opts.cfg.threads, 4);
        assert_eq!(opts.cfg.batch_max, 16);
        assert_eq!(opts.cfg.cache_entries, 128);
        assert_eq!(opts.cfg.max_queue, 64);
        assert_eq!(opts.cfg.mc_recipes, 500);
        assert_eq!(opts.cfg.seed, 9);
        assert!(opts.once);
        assert_eq!(opts.metrics_dump, Some(true));
        // Defaults: stdio transport, no dump, ServeConfig::default() knobs.
        let opts = ServeOptions::from_args(&parse(&["--stdio"])).expect("valid flags");
        assert!(matches!(opts.transport, ServeTransport::Stdio));
        assert_eq!(opts.metrics_dump, None);
        assert_eq!(opts.cfg.cache_entries, ServeConfig::default().cache_entries);
    }

    #[test]
    fn raw_recipe_format_parses() {
        let text = "# comment\nPesto Pasta | ITA\n2 cups basil\n1/2 cup olive oil\n\n\
                    Miso Soup | JPN\n1 tbsp miso paste\n";
        let (raws, issues) = parse_raw_recipes(text);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(raws.len(), 2);
        assert_eq!(raws[0].name, "Pesto Pasta");
        assert_eq!(raws[0].ingredient_lines.len(), 2);
        assert_eq!(raws[1].region.to_string(), "JPN");
        assert_eq!(raws[1].source, Source::Synthetic);
    }

    #[test]
    fn raw_recipe_format_reports_bad_headers_with_line_numbers() {
        let (raws, issues) = parse_raw_recipes("No Region Here\nbasil\n");
        assert!(raws.is_empty());
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].line, 1);
        assert!(issues[0].message.contains("REGION_CODE"), "{issues:?}");

        let (raws, issues) = parse_raw_recipes("Dish | NOPE\nbasil\n");
        assert!(raws.is_empty());
        assert_eq!(issues[0].line, 1);
        assert!(issues[0].message.contains("NOPE"), "{issues:?}");
    }

    #[test]
    fn malformed_blocks_do_not_abort_the_parse() {
        // Good, bad-region, headerless, good — every issue is reported
        // with its line number and both good recipes survive.
        let text = "Pesto | ITA\nbasil\n\n\
                    Dish | NOPE\nbasil\n\n\
                    # comment\nJust Ingredients Here\n\n\
                    Miso Soup | JPN\nmiso paste\n";
        let (raws, issues) = parse_raw_recipes(text);
        assert_eq!(raws.len(), 2);
        assert_eq!(raws[0].name, "Pesto");
        assert_eq!(raws[1].name, "Miso Soup");
        assert_eq!(issues.len(), 2);
        assert_eq!(issues[0].line, 4);
        assert_eq!(issues[1].line, 8);
    }
}
