#![warn(missing_docs)]

//! # culinaria
//!
//! Umbrella crate for the `culinaria` workspace — a from-scratch Rust
//! reproduction of *"Data-driven investigations of culinary patterns in
//! traditional recipes across the world"* (Singh & Bagler, ICDE 2018).
//!
//! This crate re-exports every subsystem under a stable, discoverable
//! namespace so downstream users can depend on a single crate:
//!
//! * [`tabular`] — lightweight columnar data-frame (analysis output substrate)
//! * [`stats`] — descriptive statistics, sampling, z-scores, power-law fits
//! * [`text`] — the ingredient-aliasing NLP pipeline
//! * [`flavordb`] — flavor molecule database (profiles, categories, compounds)
//! * [`recipedb`] — recipe store with regions, indexes and import pipeline
//! * [`datagen`] — calibrated synthetic world generator (CulinaryDB stand-in)
//! * [`analysis`] — the paper's contribution: food-pairing analysis,
//!   null models, Monte-Carlo engine, ingredient contribution
//! * [`obs`] — the hand-rolled observability layer (span timers,
//!   counters, histograms) the pipeline and the CLI `--metrics` flag
//!   record into
//! * [`serve`] — the batched, cached online query service behind
//!   `culinaria serve` (framed protocol, response cache, backpressure)
//!
//! ## Quickstart
//!
//! ```
//! use culinaria::datagen::{WorldConfig, generate_world};
//! use culinaria::analysis::pairing::mean_cuisine_score;
//!
//! // A miniature world (the full paper-scale world uses WorldConfig::paper()).
//! let world = generate_world(&WorldConfig::tiny());
//! let region = world.recipes.regions()[0];
//! let cuisine = world.recipes.cuisine(region);
//! let score = mean_cuisine_score(&world.flavor, &cuisine);
//! assert!(score.is_finite());
//! ```

pub use culinaria_core as analysis;
pub use culinaria_datagen as datagen;
pub use culinaria_flavordb as flavordb;
pub use culinaria_obs as obs;
pub use culinaria_recipedb as recipedb;
pub use culinaria_serve as serve;
pub use culinaria_stats as stats;
pub use culinaria_tabular as tabular;
pub use culinaria_text as text;
