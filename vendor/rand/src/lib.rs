#![warn(missing_docs)]

//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors the small subset of the rand 0.10 API it actually
//! uses — nothing more:
//!
//! * [`Rng`] — the core random source trait (`next_u32` / `next_u64`);
//! * [`RngExt`] — the extension trait with `random::<T>()` and
//!   `random_range(..)`, blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — `seed_from_u64` construction;
//! * [`rngs::StdRng`] — the default generator, here xoshiro256++
//!   seeded via SplitMix64.
//!
//! The stream differs from upstream `StdRng` (ChaCha12), which is fine
//! for this workspace: nothing asserts golden values, only statistical
//! shape and within-build determinism.

/// Core trait for random sources: produce uniformly distributed raw bits.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` without modulo bias
/// (Lemire's widening-multiply rejection method).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to the full
    /// state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's default generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs for why
    /// that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((4000..6000).contains(&c), "bucket {i}: {c}");
        }
        // Inclusive and signed ranges stay in bounds.
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn trait_object_and_generic_dispatch() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..7usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 7);
        let dynrng: &mut dyn Rng = &mut rng;
        // Just exercise dispatch through the trait object.
        let _ = dynrng.next_u64();
    }
}
