#![warn(missing_docs)]

//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment is offline, so the workspace vendors just the
//! API surface its snapshot codecs use: [`Bytes`] (cheaply cloneable,
//! sliceable, consumable byte buffer), [`BytesMut`] (growable builder),
//! and the [`Buf`] / [`BufMut`] cursor traits with the little-endian
//! accessors.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer with an internal read
/// cursor (advanced by the [`Buf`] accessors).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-range of the remaining bytes.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// A growable byte buffer for building snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
///
/// All accessors consume from the front and panic on underflow, matching
/// the upstream crate's contract (callers bounds-check via
/// [`Buf::remaining`] first).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume and return the next `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1).as_slice()[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.copy_to_bytes(2);
        u16::from_le_bytes(b.as_slice().try_into().expect("2 bytes"))
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_le_bytes(b.as_slice().try_into().expect("4 bytes"))
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_le_bytes(b.as_slice().try_into().expect("8 bytes"))
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes({n}) exceeds {}", self.len());
        let out = self.slice(0..n);
        self.start += n;
        out
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance({n}) exceeds {}", self.len());
        self.start += n;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.copy_to_bytes(4).as_slice(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(6..11);
        assert_eq!(s.as_slice(), b"world");
        assert_eq!(b.len(), 11, "slicing leaves the source untouched");
        let clone = s.clone();
        assert_eq!(clone, s);
    }

    #[test]
    fn consuming_advances() {
        let mut b = Bytes::from_static(b"abcdef");
        b.advance(2);
        assert_eq!(b.as_slice(), b"cdef");
        let chunk = b.copy_to_bytes(3);
        assert_eq!(chunk.as_slice(), b"cde");
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.copy_to_bytes(3);
    }
}
