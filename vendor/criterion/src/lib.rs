#![warn(missing_docs)]

//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment is offline, so the workspace vendors the small
//! benchmark-harness surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: per benchmark, warm up briefly, size an iteration
//! batch to ~`measurement_time / sample_size`, time `sample_size`
//! batches, and report the median ns/iteration to stdout. `--test`
//! (as passed by `cargo bench -- --test`) runs each body once and skips
//! measurement; a positional argument filters benchmarks by substring.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Build from the process arguments (`--test`, substring filter;
    /// cargo-injected flags like `--bench` are ignored).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self, name, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.into().label().to_string();
        self.bench_function(&label, |b| f(b, input))
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Target measurement time per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().label());
        let mut scoped = Criterion {
            filter: self.criterion.filter.clone(),
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
        };
        run_benchmark(&mut scoped, &full, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (upstream writes reports here; a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    /// Median ns/iter of the last `iter` call, if measured.
    measured_ns: Option<f64>,
}

impl Bencher {
    /// Measure a closure. In `--test` mode it runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and batch sizing: grow the batch until it costs at
        // least ~1/sample_size of the measurement budget.
        let budget = self.measurement_time;
        let mut batch: u64 = 1;
        let batch_target = budget
            .div_f64(self.sample_size as f64)
            .max(Duration::from_micros(200));
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t.elapsed();
            if took >= batch_target || batch >= 1 << 40 {
                break;
            }
            // Scale toward the target, at least doubling.
            let scale = if took.as_nanos() == 0 {
                8.0
            } else {
                (batch_target.as_nanos() as f64 / took.as_nanos() as f64).clamp(2.0, 8.0)
            };
            batch = ((batch as f64) * scale).ceil() as u64;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.measured_ns = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &mut Criterion, name: &str, mut f: F) {
    if !c.selected(name) {
        return;
    }
    let mut b = Bencher {
        test_mode: c.test_mode,
        sample_size: c.sample_size.max(2),
        measurement_time: c.measurement_time,
        measured_ns: None,
    };
    f(&mut b);
    match b.measured_ns {
        Some(ns) => println!("{name:<50} time: {}", format_ns(ns)),
        None if c.test_mode => println!("{name:<50} ok (test mode)"),
        None => println!("{name:<50} (no measurement: body never called iter)"),
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 3,
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_filter_and_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            ..Criterion::default()
        };
        let mut kept = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function(BenchmarkId::from_parameter("keep-me"), |b| {
                b.iter(|| ());
                kept += 1;
            });
            g.bench_with_input(BenchmarkId::new("skip", 1), &1, |b, _| {
                b.iter(|| ());
                kept += 100;
            });
            g.finish();
        }
        assert_eq!(kept, 1, "filter selects by substring; test mode runs once");
    }
}
