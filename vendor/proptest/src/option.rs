//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// `Some` three times out of four, `None` otherwise (matching
/// upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.random_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let s = of(0u32..10);
        let mut rng = TestRng::for_case("option::tests", 0);
        let values: Vec<Option<u32>> = (0..200).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().flatten().all(|&v| v < 10));
    }
}
