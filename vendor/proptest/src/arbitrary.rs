//! The `any::<T>()` entry point for full-domain strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A uniformly distributed value over the type's whole domain.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_spreads() {
        let s = any::<u64>();
        let mut rng = TestRng::for_case("arbitrary::tests", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.new_value(&mut rng));
        }
        assert!(seen.len() > 95, "near-collision-free full-range draws");
    }
}
