//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: a strategy just
/// produces a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// A string literal is a regex strategy (e.g. `"[a-z]{1,4}"`).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u32..17).new_value(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).new_value(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.new_value(&mut r);
            assert!(v % 2 == 0 && v < 20);
        }
        let dependent = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        for _ in 0..50 {
            let v = dependent.new_value(&mut r);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut r = rng();
        let (a, b, c) = (0u8..5, Just("x"), 0.0f64..1.0).new_value(&mut r);
        assert!(a < 5);
        assert_eq!(b, "x");
        assert!((0.0..1.0).contains(&c));
    }
}
