//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A size specification for generated collections (half-open, like
/// `Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `BTreeSet`s of roughly `size` distinct elements drawn from
/// `element`. Like upstream, the set may be smaller than requested when
/// the element domain is too narrow (bounded retries).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// `HashSet`s of roughly `size` distinct elements drawn from `element`
/// (may undershoot on narrow domains, like [`btree_set`]).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        let mut out = HashSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        let s = vec(0u32..100, 2..6);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sets_are_distinct() {
        let mut rng = TestRng::for_case("collection::tests", 1);
        let s = btree_set(0u32..1000, 5..10);
        for _ in 0..100 {
            let set = s.new_value(&mut rng);
            assert!((5..10).contains(&set.len()));
        }
        // Narrow domain: undershoots rather than spinning forever.
        let narrow = hash_set(0u32..3, 8..9);
        let set = narrow.new_value(&mut rng);
        assert!(set.len() <= 3);
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::for_case("collection::tests", 2);
        let s = vec(0u8..255, 7usize);
        assert_eq!(s.new_value(&mut rng).len(), 7);
    }
}
