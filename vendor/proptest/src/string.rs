//! Regex-shaped string generation (`string_regex`), and the machinery
//! behind string-literal strategies.
//!
//! Supports the subset of regex syntax the workspace's tests use:
//! literals, escapes, character classes with ranges (`[A-Za-z0-9 -]`),
//! groups, alternation, and the `{m}` / `{m,n}` / `?` / `*` / `+`
//! quantifiers (`*` and `+` are capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A parse error from [`string_regex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex parse error: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug, Clone)]
enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// One alternative chosen uniformly.
    Alt(Vec<Node>),
    /// One char chosen uniformly from inclusive ranges (weighted by
    /// range width).
    Class(Vec<(char, char)>),
    /// A literal char.
    Lit(char),
    /// `min..=max` repetitions of the inner node.
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Parser<'_> {
    fn err(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    fn parse_alternation(&mut self) -> Result<Node, Error> {
        let mut branches = vec![self.parse_sequence()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_sequence()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Node::Alt(branches)
        })
    }

    fn parse_sequence(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom()?;
            parts.push(self.parse_quantifier(atom)?);
        }
        Ok(Node::Seq(parts))
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alternation()?;
                if self.chars.next() != Some(')') {
                    return Err(Self::err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => {
                let c = self
                    .chars
                    .next()
                    .ok_or_else(|| Self::err("dangling escape"))?;
                Ok(Node::Lit(unescape(c)))
            }
            Some(c) if c == '{' || c == '}' || c == ']' => {
                Err(Self::err(format!("unexpected `{c}`")))
            }
            Some(c) if c == '*' || c == '+' || c == '?' => Err(Self::err(format!(
                "quantifier `{c}` with nothing to repeat"
            ))),
            Some('.') => Ok(Node::Class(vec![(' ', '~')])),
            Some(c) => Ok(Node::Lit(c)),
            None => Err(Self::err("unexpected end of pattern")),
        }
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        let mut ranges: Vec<(char, char)> = Vec::new();
        if self.chars.peek() == Some(&'^') {
            return Err(Self::err("negated classes are not supported"));
        }
        loop {
            let c = match self.chars.next() {
                None => return Err(Self::err("unclosed character class")),
                Some(']') => {
                    if ranges.is_empty() {
                        return Err(Self::err("empty character class"));
                    }
                    return Ok(Node::Class(ranges));
                }
                Some('\\') => {
                    let e = self
                        .chars
                        .next()
                        .ok_or_else(|| Self::err("dangling escape"))?;
                    unescape(e)
                }
                Some(c) => c,
            };
            // `a-z` range, unless `-` is the last char before `]`.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                match lookahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    Some(_) => {
                        self.chars.next();
                        let hi = match self.chars.next() {
                            Some('\\') => unescape(
                                self.chars
                                    .next()
                                    .ok_or_else(|| Self::err("dangling escape"))?,
                            ),
                            Some(h) => h,
                            None => return Err(Self::err("unclosed character class")),
                        };
                        if hi < c {
                            return Err(Self::err(format!("invalid range {c}-{hi}")));
                        }
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min_text = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    min_text.push(self.chars.next().expect("digit"));
                }
                let min: u32 = min_text
                    .parse()
                    .map_err(|_| Self::err("bad quantifier minimum"))?;
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max_text = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            max_text.push(self.chars.next().expect("digit"));
                        }
                        if self.chars.next() != Some('}') {
                            return Err(Self::err("unclosed quantifier"));
                        }
                        if max_text.is_empty() {
                            min.saturating_add(8)
                        } else {
                            max_text
                                .parse()
                                .map_err(|_| Self::err("bad quantifier maximum"))?
                        }
                    }
                    _ => return Err(Self::err("unclosed quantifier")),
                };
                if max < min {
                    return Err(Self::err("quantifier maximum below minimum"));
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            Some('?') => {
                self.chars.next();
                Ok(Node::Repeat(Box::new(atom), 0, 1))
            }
            Some('*') => {
                self.chars.next();
                Ok(Node::Repeat(Box::new(atom), 0, 8))
            }
            Some('+') => {
                self.chars.next();
                Ok(Node::Repeat(Box::new(atom), 1, 8))
            }
            _ => Ok(atom),
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for p in parts {
                generate(p, rng, out);
            }
        }
        Node::Alt(branches) => {
            let pick = rng.random_range(0..branches.len());
            generate(&branches[pick], rng, out);
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.random_range(0..total);
            for &(lo, hi) in ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick).unwrap_or(lo));
                    return;
                }
                pick -= width;
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = rng.random_range(*min..=*max);
            for _ in 0..n {
                generate(inner, rng, out);
            }
        }
    }
}

/// A strategy generating strings matching a regex pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    root: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate(&self.root, rng, &mut out);
        out
    }
}

/// Build a string strategy from a regex pattern.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
    };
    let root = parser.parse_alternation()?;
    if parser.chars.next().is_some() {
        return Err(Parser::err("trailing characters after pattern"));
    }
    Ok(RegexGeneratorStrategy { root })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pattern: &str, valid: impl Fn(&str) -> bool) {
        let strat = string_regex(pattern).expect("valid pattern");
        let mut rng = TestRng::for_case("string::tests", 0);
        for _ in 0..300 {
            let s = strat.new_value(&mut rng);
            assert!(valid(&s), "{pattern:?} generated invalid {s:?}");
        }
    }

    #[test]
    fn simple_class_with_counts() {
        check("[a-z]{1,15}", |s| {
            (1..=15).contains(&s.chars().count()) && s.chars().all(|c| c.is_ascii_lowercase())
        });
    }

    #[test]
    fn printable_ascii_range() {
        check("[ -~]{0,60}", |s| {
            s.chars().count() <= 60 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn class_with_escape_and_literals() {
        check("[ -~\n]{0,20}", |s| {
            s.chars().all(|c| (' '..='~').contains(&c) || c == '\n')
        });
        check("[A-Za-z0-9 ,.!()'&/-]{0,60}", |s| {
            s.chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.!()'&/-".contains(c))
        });
    }

    #[test]
    fn groups_and_word_phrases() {
        check("[a-z]{1,12}( [a-z]{1,12}){0,3}", |s| {
            let words: Vec<&str> = s.split(' ').collect();
            (1..=4).contains(&words.len())
                && words
                    .iter()
                    .all(|w| !w.is_empty() && w.chars().all(|c| c.is_ascii_lowercase()))
        });
    }

    #[test]
    fn alternation_and_quantifiers() {
        check("(ab|cd)+x?", |s| {
            let trimmed = s.strip_suffix('x').unwrap_or(s);
            !trimmed.is_empty()
                && trimmed.len() % 2 == 0
                && trimmed
                    .as_bytes()
                    .chunks(2)
                    .all(|c| c == b"ab" || c == b"cd")
        });
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(string_regex("[a-").is_err());
        assert!(string_regex("(abc").is_err());
        assert!(string_regex("a{2,1}").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("*a").is_err());
    }
}
