#![warn(missing_docs)]

//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the workspace vendors the
//! subset of proptest it uses: the [`proptest!`] macro, `prop_assert*`
//! macros, numeric-range / tuple / regex-string strategies, and the
//! `collection` / `string` / `sample` / `option` modules.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic inputs.** Each test's case stream is seeded from
//!   the test's module path and name, so failures reproduce exactly on
//!   re-run. Set `PROPTEST_CASES` to change the per-test case count
//!   (default 64).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` alias upstream exposes through its prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::string;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::ProptestConfig;

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.cases;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                let strategies = ( $( $strat, )+ );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    case += 1;
                    let ( $( $arg, )+ ) =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 65_536,
                                "{test_path}: too many prop_assume rejections"
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("{test_path}: case {} failed: {msg}", case - 1);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Discard the current case (retried without counting toward the case
/// budget) when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
