//! Sampling from fixed collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A strategy picking one element of a fixed list, uniformly.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires a non-empty list");
    Select { items }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.items[rng.random_range(0..self.items.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_only_from_list() {
        let s = select(vec!["a", "b", "c"]);
        let mut rng = TestRng::for_case("sample::tests", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3, "all elements eventually drawn");
    }
}
