//! Config, case errors, and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (retried, not counted).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies: deterministic per `(test, case index)`
/// so failures reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for one case of one test.
    pub fn for_case(test_path: &str, case: u64) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn config_with_cases() {
        assert_eq!(ProptestConfig::with_cases(8).cases, 8);
        assert!(ProptestConfig::default().cases > 0);
    }
}
