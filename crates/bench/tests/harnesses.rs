//! Integration tests: every reproduction harness runs end-to-end at a
//! tiny scale and emits its key sections. This keeps the paper-facing
//! binaries from rotting as the library evolves.

use std::process::Command;

/// Run a harness binary with a miniature world and reduced Monte Carlo.
fn run(path: &str) -> String {
    let out = Command::new(path)
        .env("CULINARIA_SCALE", "0.005")
        .env("CULINARIA_MC", "1000")
        .env("CULINARIA_SEED", "2018")
        .output()
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(
        out.status.success(),
        "{path} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table1_reports_all_regions_and_totals() {
    let out = run(env!("CARGO_BIN_EXE_repro_table1"));
    for code in ["AFR", "ITA", "USA", "KOR"] {
        assert!(out.contains(code), "{code} missing");
    }
    assert!(out.contains("45565"));
    assert!(out.contains("paper: Korea, 301"));
}

#[test]
fn fig2_prints_heatmap_and_checks() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig2"));
    assert!(out.contains("WORLD"));
    assert!(out.contains("dairy"));
    assert!(out.contains("χ²") || out.contains("chi2"));
    assert!(out.contains("spice"));
}

#[test]
fn fig3a_reports_mean_size() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig3a"));
    assert!(out.contains("WORLD: mean"));
    assert!(out.contains("cumulative"));
}

#[test]
fn fig3b_reports_scaling() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig3b"));
    assert!(out.contains("Zipf exponents"));
    assert!(out.contains("rank"));
}

#[test]
fn fig4_reports_all_models_and_agreement() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig4"));
    for col in ["z_random", "z_freq", "z_cat", "z_freq+cat"] {
        assert!(out.contains(col), "{col} missing");
    }
    assert!(out.contains("sign agreement with paper:"));
    assert!(out.contains("median |z|/|z_random|"));
}

#[test]
fn fig5_lists_positive_and_negative_groups() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig5"));
    assert!(out.contains("POSITIVE food pairing"));
    assert!(out.contains("NEGATIVE food pairing"));
    // Negative group has exactly the paper's six regions.
    let neg_section = out
        .split("NEGATIVE food pairing")
        .nth(1)
        .expect("negative section present");
    for code in ["SCND", "JPN", "DACH", "BRI", "KOR", "EE"] {
        assert!(neg_section.contains(code), "{code} missing from 5(b)");
    }
}

#[test]
fn ntuples_reports_three_orders() {
    let out = run(env!("CARGO_BIN_EXE_repro_ntuples"));
    assert!(out.contains("Ns(2)"));
    assert!(out.contains("Ns(4)"));
    assert!(out.contains("share their sign"));
}

#[test]
fn evolution_sweeps_mutation_rates() {
    let out = run(env!("CARGO_BIN_EXE_repro_evolution"));
    assert!(out.contains("zipf_exp"));
    assert!(out.contains("0.80"));
    assert!(out.contains("empirical zipf exponent"));
}

#[test]
fn robustness_reports_stability() {
    let out = run(env!("CARGO_BIN_EXE_repro_robustness"));
    assert!(out.contains("sign_stability"));
    assert!(out.contains("worst-case sign stability"));
}

#[test]
fn network_reports_statistics() {
    let out = run(env!("CARGO_BIN_EXE_repro_network"));
    assert!(out.contains("density"));
    assert!(out.contains("flavor hubs"));
    assert!(out.contains("heaviest flavor edges"));
}

#[test]
fn classifier_reports_accuracy() {
    let out = run(env!("CARGO_BIN_EXE_repro_classifier"));
    assert!(out.contains("top-1 accuracy"));
    assert!(out.contains("Per-region recall"));
}

#[test]
fn ablation_sweeps_both_knobs() {
    // The ablation binary ignores CULINARIA_SCALE (it sets its own),
    // but runs quickly enough at its built-in scale — still, drive it
    // through the common runner for env consistency.
    let out = run(env!("CARGO_BIN_EXE_repro_ablation"));
    assert!(out.contains("alpha"));
    assert!(out.contains("sign_agreement"));
    assert!(out.contains("freq_median_ratio"));
    // Six configurations reported.
    assert_eq!(out.lines().filter(|l| l.contains("/22")).count(), 6);
}

#[test]
fn similarity_reports_clusters() {
    let out = run(env!("CARGO_BIN_EXE_repro_similarity"));
    assert!(out.contains("Nearest neighbour"));
    assert!(out.contains("Average-linkage clustering"));
    // The final merge covers all 22 regions.
    assert!(out.contains("21. "));
}

#[test]
fn cooking_reports_method_table() {
    let out = run(env!("CARGO_BIN_EXE_repro_cooking"));
    assert!(out.contains("roasted"));
    assert!(out.contains("boiled"));
    assert!(out.contains("homogenize"));
}
