//! Kernel bench for the flavor-sharing score N_s, including the
//! DESIGN.md ablation: precomputed [`OverlapCache`] lookups vs direct
//! sorted-slice profile intersection, across recipe sizes, plus the
//! higher-order k-tuple scorer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culinaria_core::ntuple::recipe_ktuple_score;
use culinaria_core::pairing::{recipe_pairing_score, OverlapCache};
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_flavordb::IngredientId;
use culinaria_recipedb::Region;

fn bench_pairing(c: &mut Criterion) {
    let world = generate_world(&WorldConfig::small());
    let cuisine = world.recipes.cuisine(Region::Italy);
    let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);
    let pool = cuisine.ingredient_set();

    let mut group = c.benchmark_group("recipe_score");
    for &size in &[5usize, 9, 15, 25] {
        let recipe: Vec<IngredientId> = pool.iter().copied().take(size).collect();
        let locals: Vec<u32> = recipe
            .iter()
            .map(|&i| cache.local_index(i).expect("pool member"))
            .collect();
        group.bench_with_input(BenchmarkId::new("direct", size), &recipe, |b, r| {
            b.iter(|| recipe_pairing_score(black_box(&world.flavor), black_box(r)))
        });
        group.bench_with_input(BenchmarkId::new("cached", size), &locals, |b, l| {
            b.iter(|| cache.score_local(black_box(l)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cache_build");
    for &n in &[50usize, 150, 300] {
        let sub: Vec<IngredientId> = pool.iter().copied().take(n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sub, |b, s| {
            b.iter(|| OverlapCache::build(black_box(&world.flavor), black_box(s)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cuisine_mean");
    group.bench_function("cached_full_cuisine", |b| {
        b.iter(|| cache.mean_cuisine_score(black_box(&cuisine)))
    });
    group.finish();

    // The DESIGN.md §8 ablation: bitset prefix-mask kernel vs the frozen
    // subset walker, end-to-end per recipe (kernel includes its pack).
    let mut group = c.benchmark_group("ktuple_score");
    let recipe: Vec<IngredientId> = pool.iter().copied().take(9).collect();
    for &k in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("kernel", k), &k, |b, &k| {
            b.iter(|| recipe_ktuple_score(black_box(&world.flavor), black_box(&recipe), k))
        });
        group.bench_with_input(BenchmarkId::new("reference", k), &k, |b, &k| {
            b.iter(|| {
                culinaria_core::ntuple::reference::recipe_ktuple_score(
                    black_box(&world.flavor),
                    black_box(&recipe),
                    k,
                )
            })
        });
    }
    group.finish();

    // Amortized form: one shared kernel + scratch over the cuisine pool.
    let mut group = c.benchmark_group("ktuple_scorer_local");
    let scorer3 = culinaria_core::ntuple::KTupleScorer::for_cuisine(&world.flavor, &cuisine, 3);
    let reference3 =
        culinaria_core::ntuple::reference::KTupleScorer::for_cuisine(&world.flavor, &cuisine, 3);
    let locals: Vec<u32> = (0..9).collect();
    let mut scratch = culinaria_core::pairing::IntersectScratch::new();
    group.bench_function("kernel_scratch_reuse", |b| {
        b.iter(|| scorer3.score_local_with(black_box(&locals), &mut scratch))
    });
    group.bench_function("reference", |b| {
        b.iter(|| reference3.score_local(black_box(&locals)))
    });
    group.finish();

    // Observability A/B: the `*_observed` entry points must cost nothing
    // when the handle is disabled (one branch per instrument, no clock
    // reads) — `plain` and `disabled` should be indistinguishable, with
    // `enabled` showing the true price of recording.
    let mut group = c.benchmark_group("obs_overhead");
    let sub: Vec<IngredientId> = pool.iter().copied().take(150).collect();
    let disabled = culinaria_obs::Metrics::disabled();
    let enabled = culinaria_obs::Metrics::enabled();
    group.bench_function("cache_build_plain", |b| {
        b.iter(|| OverlapCache::build_with_threads(black_box(&world.flavor), black_box(&sub), 1))
    });
    group.bench_function("cache_build_disabled", |b| {
        b.iter(|| {
            OverlapCache::build_observed(black_box(&world.flavor), black_box(&sub), 1, &disabled)
        })
    });
    group.bench_function("cache_build_enabled", |b| {
        b.iter(|| {
            OverlapCache::build_observed(black_box(&world.flavor), black_box(&sub), 1, &enabled)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pairing);
criterion_main!(benches);
