//! Kernel bench for the flavor-sharing score N_s, including the
//! DESIGN.md ablation: precomputed [`OverlapCache`] lookups vs direct
//! sorted-slice profile intersection, across recipe sizes, plus the
//! higher-order k-tuple scorer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culinaria_core::ntuple::recipe_ktuple_score;
use culinaria_core::pairing::{recipe_pairing_score, OverlapCache};
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_flavordb::IngredientId;
use culinaria_recipedb::Region;

fn bench_pairing(c: &mut Criterion) {
    let world = generate_world(&WorldConfig::small());
    let cuisine = world.recipes.cuisine(Region::Italy);
    let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);
    let pool = cuisine.ingredient_set();

    let mut group = c.benchmark_group("recipe_score");
    for &size in &[5usize, 9, 15, 25] {
        let recipe: Vec<IngredientId> = pool.iter().copied().take(size).collect();
        let locals: Vec<u32> = recipe
            .iter()
            .map(|&i| cache.local_index(i).expect("pool member"))
            .collect();
        group.bench_with_input(BenchmarkId::new("direct", size), &recipe, |b, r| {
            b.iter(|| recipe_pairing_score(black_box(&world.flavor), black_box(r)))
        });
        group.bench_with_input(BenchmarkId::new("cached", size), &locals, |b, l| {
            b.iter(|| cache.score_local(black_box(l)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cache_build");
    for &n in &[50usize, 150, 300] {
        let sub: Vec<IngredientId> = pool.iter().copied().take(n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sub, |b, s| {
            b.iter(|| OverlapCache::build(black_box(&world.flavor), black_box(s)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cuisine_mean");
    group.bench_function("cached_full_cuisine", |b| {
        b.iter(|| cache.mean_cuisine_score(black_box(&cuisine)))
    });
    group.finish();

    let mut group = c.benchmark_group("ktuple_score");
    let recipe: Vec<IngredientId> = pool.iter().copied().take(9).collect();
    for &k in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| recipe_ktuple_score(black_box(&world.flavor), black_box(&recipe), k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairing);
criterion_main!(benches);
