//! End-to-end benchmark of the Fig 4 world pipeline (`analyze_world`)
//! plus its two optimized building blocks: the bitset overlap-cache
//! build (vs the seed's sorted-merge sweep) and allocation-free recipe
//! sampling (`generate_into` vs the allocating `generate`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use culinaria_core::monte_carlo::MonteCarloConfig;
use culinaria_core::null_models::{CuisineSampler, NullModel, SampleScratch};
use culinaria_core::pairing::OverlapCache;
use culinaria_core::z_analysis::analyze_world;
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_recipedb::Region;

fn bench_world_analysis(c: &mut Criterion) {
    let tiny = generate_world(&WorldConfig::tiny());

    // The whole Fig 4 pipeline: 22 regions x 4 models, flattened onto
    // the shared pool. Thread counts matter only on multi-core hosts;
    // the result is bit-identical across all of them.
    let mut group = c.benchmark_group("analyze_world_tiny");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = MonteCarloConfig {
                    n_recipes: 4096,
                    seed: 2018,
                    n_threads: threads,
                };
                b.iter(|| {
                    black_box(analyze_world(
                        &tiny.flavor,
                        &tiny.recipes,
                        &NullModel::ALL,
                        &cfg,
                    ))
                })
            },
        );
    }
    group.finish();

    // Overlap-table construction at a realistic cuisine pool size:
    // packed-bitset AND+popcount vs the seed's sorted-merge sweep.
    let small = generate_world(&WorldConfig::small());
    let cuisine = small.recipes.cuisine(Region::Italy);
    let pool_ids = cuisine.ingredient_set();
    let profiles: Vec<_> = pool_ids
        .iter()
        .map(|&id| {
            &small
                .flavor
                .ingredient(id)
                .expect("live ingredient")
                .profile
        })
        .collect();
    let mut group = c.benchmark_group("overlap_cache_build");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("bitset", pool_ids.len()), |b| {
        b.iter(|| {
            black_box(OverlapCache::build_with_threads(
                &small.flavor,
                &pool_ids,
                1,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("sorted_merge", pool_ids.len()), |b| {
        b.iter(|| {
            let mut checksum = 0u64;
            for i in 0..profiles.len() {
                for j in (i + 1)..profiles.len() {
                    checksum += profiles[i].shared_count(profiles[j]) as u64;
                }
            }
            black_box(checksum)
        })
    });
    group.finish();

    // Per-recipe sampling: allocation-free generate_into vs generate.
    let sampler = CuisineSampler::build(&small.flavor, &cuisine).expect("populated cuisine");
    let mut group = c.benchmark_group("sample_recipe");
    for model in [NullModel::Frequency, NullModel::FrequencyCategory] {
        group.bench_with_input(
            BenchmarkId::new("generate", model.short()),
            &model,
            |b, &m| {
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| black_box(sampler.generate(m, &mut rng)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("generate_into", model.short()),
            &model,
            |b, &m| {
                let mut rng = StdRng::seed_from_u64(9);
                let mut out = Vec::new();
                let mut scratch = SampleScratch::new();
                b.iter(|| {
                    sampler.generate_into(m, &mut rng, &mut out, &mut scratch);
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_world_analysis);
criterion_main!(benches);
