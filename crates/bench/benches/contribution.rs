//! Benchmark of the leave-one-ingredient-out contribution sweep (Fig 5
//! kernel) across cuisine sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culinaria_core::contribution::ingredient_contributions;
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_recipedb::Region;

fn bench_contribution(c: &mut Criterion) {
    let world = generate_world(&WorldConfig::small());

    let mut group = c.benchmark_group("contribution_sweep");
    group.sample_size(10);
    // Korea is the smallest cuisine, USA the largest.
    for region in [Region::Korea, Region::Italy, Region::Usa] {
        let cuisine = world.recipes.cuisine(region);
        group.bench_with_input(
            BenchmarkId::from_parameter(region.code()),
            &cuisine,
            |b, cu| b.iter(|| black_box(ingredient_contributions(&world.flavor, cu))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_contribution);
criterion_main!(benches);
