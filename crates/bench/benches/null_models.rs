//! Benchmarks for the null-model sampling machinery: per-model recipe
//! generation throughput and the DESIGN.md sampling ablation (Walker
//! alias method vs linear CDF scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use culinaria_core::monte_carlo::{run_null_model, MonteCarloConfig};
use culinaria_core::null_models::{CuisineSampler, NullModel};
use culinaria_core::pairing::OverlapCache;
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_recipedb::Region;
use culinaria_stats::{LinearCdfSampler, WeightedAliasSampler};

fn bench_null_models(c: &mut Criterion) {
    let world = generate_world(&WorldConfig::small());
    let cuisine = world.recipes.cuisine(Region::Italy);
    let sampler = CuisineSampler::build(&world.flavor, &cuisine).expect("populated cuisine");
    let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);

    let mut group = c.benchmark_group("generate_recipe");
    for model in NullModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.short()),
            &model,
            |b, &m| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(sampler.generate(m, &mut rng)))
            },
        );
    }
    group.finish();

    // Ablation: O(1) alias sampling vs O(n) linear CDF scan, at the
    // pool sizes the cuisines actually have (Table 1: 198..612).
    let mut group = c.benchmark_group("weighted_sampling");
    for &n in &[200usize, 400, 612] {
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
        let alias = WeightedAliasSampler::new(&weights).expect("valid weights");
        let linear = LinearCdfSampler::new(&weights).expect("valid weights");
        group.bench_with_input(BenchmarkId::new("alias", n), &alias, |b, s| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(s.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("linear_cdf", n), &linear, |b, s| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(s.sample(&mut rng)))
        });
    }
    group.finish();

    // Macro: a full (reduced) Monte-Carlo ensemble per model.
    let mut group = c.benchmark_group("monte_carlo_10k");
    group.sample_size(10);
    for model in [NullModel::Random, NullModel::Frequency] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.short()),
            &model,
            |b, &m| {
                let cfg = MonteCarloConfig {
                    n_recipes: 10_000,
                    seed: 3,
                    n_threads: 0,
                };
                b.iter(|| run_null_model(&cache, &sampler, m, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_null_models);
criterion_main!(benches);
