//! Benchmarks of the tabular substrate: group-by aggregation, sorting,
//! joins, and CSV round-trips at analysis-output scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culinaria_tabular::{Column, Frame, SortOrder};

fn build_frame(n: usize) -> Frame {
    let regions: Vec<String> = (0..n).map(|i| format!("R{:02}", i % 22)).collect();
    let region_refs: Vec<&str> = regions.iter().map(String::as_str).collect();
    let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
    let counts: Vec<i64> = (0..n).map(|i| (i % 37) as i64).collect();
    Frame::from_columns(vec![
        ("region", Column::from_strs(&region_refs)),
        ("score", Column::from_f64s(&vals)),
        ("count", Column::from_i64s(&counts)),
    ])
    .expect("fresh frame")
}

fn bench_tabular(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000] {
        let frame = build_frame(n);

        let mut group = c.benchmark_group(format!("tabular_{n}"));
        group.bench_function("group_by_mean", |b| {
            b.iter(|| {
                black_box(
                    frame
                        .group_by(&["region"])
                        .expect("column exists")
                        .mean("score")
                        .expect("numeric column"),
                )
            })
        });
        group.bench_function("sort_two_keys", |b| {
            b.iter(|| {
                black_box(
                    frame
                        .sort_by_with(&[
                            ("region", SortOrder::Ascending),
                            ("score", SortOrder::Descending),
                        ])
                        .expect("columns exist"),
                )
            })
        });
        group.bench_function("filter_numeric", |b| {
            b.iter(|| {
                black_box(
                    frame
                        .filter(|r| r.get("score").and_then(|v| v.as_float()).unwrap_or(0.0) > 0.0)
                        .expect("filter"),
                )
            })
        });
        group.bench_function("csv_roundtrip", |b| {
            b.iter(|| {
                let csv = frame.to_csv();
                black_box(Frame::from_csv_str(&csv).expect("own output parses"))
            })
        });
        group.finish();
    }

    // Join at region-table scale.
    let left = build_frame(10_000);
    let right = {
        let codes: Vec<String> = (0..22).map(|i| format!("R{:02}", i)).collect();
        let refs: Vec<&str> = codes.iter().map(String::as_str).collect();
        let z: Vec<f64> = (0..22).map(|i| i as f64).collect();
        Frame::from_columns(vec![
            ("region", Column::from_strs(&refs)),
            ("z", Column::from_f64s(&z)),
        ])
        .expect("fresh frame")
    };
    c.bench_with_input(BenchmarkId::new("inner_join", "10k x 22"), &(), |b, _| {
        b.iter(|| {
            black_box(
                left.inner_join(&right, &["region"], &["region"])
                    .expect("join"),
            )
        })
    });
}

criterion_group!(benches, bench_tabular);
criterion_main!(benches);
