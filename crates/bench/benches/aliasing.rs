//! Benchmarks of the ingredient-aliasing NLP pipeline: end-to-end
//! phrase resolution (trie engine vs the frozen legacy matcher, with
//! and without scratch/memo reuse), and the individual stages
//! (normalization, singularization, edit distance).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culinaria_flavordb::curated::curated_db;
use culinaria_recipedb::import::Importer;
use culinaria_text::alias::{AliasResolver, ResolveScratch};
use culinaria_text::edit_distance::damerau_levenshtein;
use culinaria_text::legacy::LegacyAliasResolver;
use culinaria_text::normalize::tokenize;
use culinaria_text::singularize::singularize;

const PHRASES: &[&str] = &[
    "2 jalapeno peppers, roasted and slit",
    "1 cup extra-virgin olive oil, divided",
    "3 ripe tomatoes, peeled, seeded and finely chopped",
    "250g curd, whisked until smooth",
    "a generous pinch of saffron threads soaked in warm milk",
    "1 (15 ounce) can black beans, drained and rinsed",
    "freshly ground black pepper to taste",
    "2 tablespoons coriander seeds, toasted and crushed",
];

fn bench_aliasing(c: &mut Criterion) {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut resolver = AliasResolver::new();
    let mut legacy = LegacyAliasResolver::new();
    for ing in db.ingredients() {
        resolver.add_canonical(&ing.name);
        legacy.add_canonical(&ing.name);
    }
    for (syn, id) in db.synonyms() {
        if let Ok(target) = db.ingredient(id) {
            resolver.add_synonym(syn, &target.name);
            legacy.add_synonym(syn, &target.name);
        }
    }

    c.bench_function("resolve_phrase_trie", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % PHRASES.len();
            black_box(resolver.resolve(PHRASES[i]))
        })
    });

    c.bench_function("resolve_phrase_trie_scratch", |b| {
        let mut scratch = ResolveScratch::with_memo_capacity(0);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % PHRASES.len();
            black_box(resolver.resolve_with(PHRASES[i], &mut scratch))
        })
    });

    c.bench_function("resolve_phrase_trie_memo", |b| {
        let mut scratch = ResolveScratch::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % PHRASES.len();
            black_box(resolver.resolve_with(PHRASES[i], &mut scratch))
        })
    });

    c.bench_function("resolve_phrase_legacy", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % PHRASES.len();
            black_box(legacy.resolve(PHRASES[i]))
        })
    });

    c.bench_function("import_line_to_ids", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % PHRASES.len();
            black_box(importer.resolve_line(&db, PHRASES[i]))
        })
    });

    c.bench_function("tokenize", |b| {
        b.iter(|| black_box(tokenize("3 ripe Roma tomatoes, peeled & finely chopped")))
    });

    c.bench_function("singularize", |b| {
        b.iter(|| {
            for w in [
                "tomatoes", "berries", "leaves", "peaches", "glasses", "onions",
            ] {
                black_box(singularize(w));
            }
        })
    });

    c.bench_function("damerau_levenshtein", |b| {
        b.iter(|| black_box(damerau_levenshtein("asafoetida", "asafetida")))
    });
}

criterion_group!(benches, bench_aliasing);
criterion_main!(benches);
