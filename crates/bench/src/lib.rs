#![warn(missing_docs)]

//! # culinaria-bench
//!
//! Reproduction harnesses (one binary per paper table/figure, under
//! `src/bin/`) and Criterion micro-benchmarks (under `benches/`).
//!
//! Every harness regenerates one artifact of the paper's evaluation:
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `repro_table1`    | Table 1 — recipes & ingredients per region |
//! | `repro_fig2`      | Fig 2 — category-composition heatmap |
//! | `repro_fig3a`     | Fig 3a — recipe-size distribution |
//! | `repro_fig3b`     | Fig 3b — ingredient rank-frequency scaling |
//! | `repro_fig4`      | Fig 4 — z-scores vs the four null models |
//! | `repro_fig5`      | Fig 5 — top-3 contributing ingredients |
//! | `repro_ntuples`   | §V extension — triple/quadruple sharing |
//! | `repro_evolution` | paper ref 10 — copy-mutate evolution model |
//! | `repro_robustness`| §V extension — subsampling / profile dilution |
//! | `repro_cooking`   | §V extension — cooking flavor transformation |
//! | `repro_network`   | supplementary — Ahn-style flavor network |
//! | `repro_similarity`| supplementary — fingerprints + clustering |
//! | `repro_classifier`| supplementary — cuisine classification |
//! | `repro_ablation`  | DESIGN.md §5 — generator design ablation |
//!
//! ## Environment knobs
//!
//! * `CULINARIA_SCALE` — recipe-count multiplier on Table 1
//!   (default 1.0 = full paper scale);
//! * `CULINARIA_MC` — Monte-Carlo recipes per null model
//!   (default 100000, the paper's number);
//! * `CULINARIA_SEED` — master seed (default 2018);
//! * `CULINARIA_METRICS` — `text` or `json`: dump the observability
//!   registry (see `culinaria-obs`) on stderr when the harness exits.
//!   The instrumented harnesses also accept `--metrics[=json]` on the
//!   command line, which takes precedence over the variable.

use culinaria_core::MonteCarloConfig;
use culinaria_datagen::{generate_world, World, WorldConfig};
use culinaria_obs::Metrics;

/// Read an environment variable, falling back to a default.
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The world configuration selected by the environment (see the crate
/// docs for the knobs).
pub fn world_config_from_env() -> WorldConfig {
    let scale: f64 = env_or("CULINARIA_SCALE", 1.0);
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let mut cfg = WorldConfig::paper();
    cfg.recipe_scale = scale;
    cfg.seed = seed;
    cfg
}

/// Generate the world selected by the environment, logging timings.
pub fn world_from_env() -> World {
    let cfg = world_config_from_env();
    eprintln!(
        "generating world: scale {}, seed {}, {} ingredients / {} molecules",
        cfg.recipe_scale, cfg.seed, cfg.flavor.n_ingredients, cfg.flavor.n_molecules
    );
    let t = std::time::Instant::now();
    let world = generate_world(&cfg);
    eprintln!(
        "world ready: {} recipes in {:.1?}",
        world.recipes.n_recipes(),
        t.elapsed()
    );
    world
}

/// The Monte-Carlo configuration selected by the environment.
pub fn mc_config_from_env() -> MonteCarloConfig {
    MonteCarloConfig {
        n_recipes: env_or("CULINARIA_MC", 100_000),
        seed: env_or("CULINARIA_SEED", 2018),
        n_threads: 0,
    }
}

/// Print a harness section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// A [`Metrics`] handle plus the rendering format the harness was asked
/// for. Build one with [`metrics_from_env`]; pass `.metrics` to the
/// `*_observed` entry points and call [`MetricsSink::dump`] at exit.
pub struct MetricsSink {
    /// The handle the instrumented pipeline records into. Disabled
    /// (every operation a no-op) unless metrics were requested.
    pub metrics: Metrics,
    /// Render as one JSON object instead of aligned text.
    pub json: bool,
}

impl MetricsSink {
    /// Render the registry to stderr (stdout stays the harness's
    /// tables). No-op when metrics were not requested.
    pub fn dump(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        if self.json {
            eprintln!("{}", self.metrics.render_json());
        } else {
            eprint!("{}", self.metrics.render_text());
        }
    }
}

/// The metrics sink selected by `--metrics[=json]` on the command line
/// or, failing that, the `CULINARIA_METRICS` environment variable
/// (`text` or `json`). Returns a disabled (zero-cost) sink when
/// neither asks for metrics.
pub fn metrics_from_env() -> MetricsSink {
    let mode = std::env::args()
        .skip(1)
        .find_map(|arg| match arg.as_str() {
            "--metrics" => Some("text".to_owned()),
            _ => arg.strip_prefix("--metrics=").map(str::to_owned),
        })
        .or_else(|| std::env::var("CULINARIA_METRICS").ok());
    match mode {
        None => MetricsSink {
            metrics: Metrics::disabled(),
            json: false,
        },
        Some(mode) => MetricsSink {
            metrics: Metrics::enabled(),
            json: mode == "json",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Tolerate exported overrides by only checking types/ranges.
        let cfg = world_config_from_env();
        assert!(cfg.recipe_scale > 0.0);
        let mc = mc_config_from_env();
        assert!(mc.n_recipes > 0);
    }
}
