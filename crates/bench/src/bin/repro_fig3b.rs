//! Reproduces **Fig 3b**: ingredient frequency-of-use (normalized by
//! the most popular ingredient) against popularity rank, with the
//! cumulative-share inset and the cross-region scaling consistency the
//! paper highlights.

use culinaria_bench::{section, world_from_env};
use culinaria_core::popularity::{
    popularity_frame, popularity_summary_frame, world_popularity_profiles,
};

fn main() {
    let world = world_from_env();
    let profiles = world_popularity_profiles(&world.recipes);

    section("Fig 3b — Normalized rank-frequency of ingredients per region (first 30 ranks)");
    let frame = popularity_frame(&profiles);
    println!("{}", frame.to_table_string(30));

    section("Scaling summary (inset + cross-region consistency)");
    println!("{}", popularity_summary_frame(&profiles));

    let exps: Vec<f64> = profiles.iter().filter_map(|p| p.zipf_exponent).collect();
    let mean = exps.iter().sum::<f64>() / exps.len() as f64;
    let spread = exps.iter().map(|e| (e - mean).abs()).fold(0.0f64, f64::max);
    println!("\nZipf exponents: mean {mean:.3}, max |deviation| {spread:.3} across 22 regions");
    println!(
        "-> {} (paper: \"exceptionally consistent scaling phenomenon\")",
        if spread < 0.5 {
            "consistent scaling across all cuisines"
        } else {
            "scaling varies more than expected"
        }
    );
}
