//! Ablation study of the world generator's design choices (DESIGN.md
//! §5): how the Fig 4 reproduction responds to the two mechanisms that
//! create pairing structure —
//!
//! * `popularity_similarity_bias` (α) — similarity-aware popularity
//!   ranking, the carrier of the paper's "frequency explains pairing"
//!   finding;
//! * `pairing_bias` (β) — residual best/worst-of-K co-selection, the
//!   part the Frequency null cannot reproduce.
//!
//! For each configuration the harness reports the Fig 4 sign agreement
//! and the Frequency model's median |z| ratio. Expected shape: without
//! α the negative regions disappear (sign agreement drops to ~16/22);
//! without β the Frequency model reproduces pairing *exactly* (ratio →
//! ~0); with both, the paper's pattern emerges.

use culinaria_core::z_analysis::analyze_world;
use culinaria_core::{MonteCarloConfig, NullModel};
use culinaria_datagen::{generate_world, WorldConfig};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        f64::NAN
    } else {
        xs[xs.len() / 2]
    }
}

fn main() {
    // Ablations run at reduced scale: the effects are large.
    let scale = 0.05;
    let mc = MonteCarloConfig {
        n_recipes: 20_000,
        seed: 2018,
        n_threads: 0,
    };

    println!(
        "{:>6} {:>6} {:>14} {:>18} {:>18}",
        "alpha", "beta", "sign_agreement", "freq_median_ratio", "cat_median_ratio"
    );
    for &(alpha, beta) in &[
        (0.0, 0.0),  // no mechanism at all
        (1.4, 0.0),  // ranking only
        (0.0, 0.35), // co-selection only
        (1.4, 0.35), // the shipped configuration
        (1.4, 0.75), // heavy co-selection
        (2.8, 0.35), // extreme ranking
    ] {
        let mut cfg = WorldConfig::paper();
        cfg.recipe_scale = scale;
        cfg.popularity_similarity_bias = alpha;
        cfg.pairing_bias = beta;
        let world = generate_world(&cfg);
        let analyses = analyze_world(
            &world.flavor,
            &world.recipes,
            &[NullModel::Random, NullModel::Frequency, NullModel::Category],
            &mc,
        );
        let agreement = analyses
            .iter()
            .filter(|a| (a.z_random().unwrap_or(0.0) > 0.0) == a.region.paper_positive_pairing())
            .count();
        let ratio = |model: NullModel| -> f64 {
            median(
                analyses
                    .iter()
                    .filter_map(|a| {
                        let zr = a.against(NullModel::Random)?.z?;
                        let zm = a.against(model)?.z?;
                        (zr != 0.0).then(|| (zm / zr).abs())
                    })
                    .collect(),
            )
        };
        println!(
            "{:>6.1} {:>6.2} {:>11}/22 {:>18.3} {:>18.3}",
            alpha,
            beta,
            agreement,
            ratio(NullModel::Frequency),
            ratio(NullModel::Category)
        );
    }
    println!(
        "\nreading: alpha drives the sign pattern (and lets Frequency explain it);\n\
         beta adds the residual that keeps the Frequency match imperfect, as the\n\
         paper's \"to a large extent\" phrasing implies."
    );
}
