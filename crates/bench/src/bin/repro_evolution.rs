//! Extension experiment (paper reference 10, cited in the conclusions): the
//! copy-mutate culinary evolution model "has been shown to explain such
//! patterns". This harness runs the model and compares its emergent
//! rank-frequency scaling with the generated world's cuisines.

use culinaria_bench::{section, world_from_env};
use culinaria_core::evolution::{run_copy_mutate, CopyMutateConfig};
use culinaria_core::popularity::world_popularity_profiles;
use culinaria_stats::powerlaw::{cumulative_share, zipf_exponent};

fn main() {
    let world = world_from_env();

    section("Copy-mutate culinary evolution model (Jain & Bagler 2018)");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "mu", "recipes", "zipf_exp", "r_squared", "top30"
    );
    for mu in [0.05, 0.1, 0.2, 0.4, 0.8] {
        let cfg = CopyMutateConfig {
            mutation_rate: mu,
            n_recipes: 5000,
            ..CopyMutateConfig::default()
        };
        let res = run_copy_mutate(&cfg);
        let (exp, fit) = zipf_exponent(&res.frequencies).expect("non-degenerate run");
        let shares = cumulative_share(&res.frequencies);
        let top30 = shares[29.min(shares.len() - 1)];
        println!(
            "{:>6.2} {:>10} {:>12.3} {:>12.3} {:>10.3}",
            mu, cfg.n_recipes, exp, fit.r_squared, top30
        );
    }

    section("Empirical comparison: generated world cuisines");
    let profiles = world_popularity_profiles(&world.recipes);
    let exps: Vec<f64> = profiles.iter().filter_map(|p| p.zipf_exponent).collect();
    let mean = exps.iter().sum::<f64>() / exps.len() as f64;
    println!("mean empirical zipf exponent across 22 cuisines: {mean:.3}");
    println!(
        "-> a copy-mutate mutation rate can be tuned to match the empirical exponent,\n\
           reproducing the paper's claim that a simple copy-mutate process explains\n\
           the observed ingredient-popularity scaling."
    );
}
