//! Load benchmark for `culinaria-serve`: the batched, cached online
//! query service over the zero-copy artifacts.
//!
//! Spins up an in-process [`Server`] over freshly built CFDB2/CRDB2
//! artifacts (with per-region overlap sections, so shard builds take
//! the section-reuse fast path) and drives it with an in-repo load
//! generator over `UnixStream` pairs:
//!
//! * **Parity probes** — one request per endpoint (`PAIR` shard +
//!   global, `ZPROF`, `TOPK`, `SCORE`), each answered over a real
//!   connection and asserted bit-identical to the offline
//!   `analyze_cuisine` / `recipe_pairing_score` / novelty-enumeration
//!   pipeline, and identical across every (threads, cache) config.
//! * **Closed-loop runs** — N clients, each keeping a window of W
//!   requests pipelined over its own connection (the window is what
//!   feeds the batcher: requests queued while a batch is in flight
//!   coalesce into the next one). Seeded deterministic query mix with
//!   repeated id sets, so a warm cache shows real hits.
//! * **One fixed-rate run** — open-loop sender on an absolute
//!   schedule, reader thread correlating replies by id.
//! * **One backpressure burst** — a tiny-queue server flooded with
//!   pipelined `ZPROF`s; asserts the overload is shed with `BUSY`
//!   replies, never unbounded growth.
//!
//! Client-side latencies feed a `culinaria-obs` histogram and are
//! reported as interpolated p50/p99 (`quantile_interp_us`); the
//! server's own `serve.batch` histogram yields the batch-size
//! distribution, and `serve.cache.*` counters the hit rate.
//!
//! Writes `BENCH_serve.json`. Knobs: `CULINARIA_SCALE`,
//! `CULINARIA_SEED`, `CULINARIA_SERVE_REQS` (total requests per run,
//! default 2000), `CULINARIA_SERVE_CLIENTS` (default 4),
//! `CULINARIA_SERVE_WINDOW` (pipelined requests per client, default 8),
//! `CULINARIA_SERVE_MC` (Monte-Carlo recipes per ZPROF, default 500),
//! `CULINARIA_SERVE_THREADS` (default "1,2"), `CULINARIA_SERVE_CACHE`
//! (default "0,4096"), `CULINARIA_SERVE_RATE` (fixed-rate rps, default
//! 300), `CULINARIA_BENCH_OUT`.

use std::collections::HashMap;
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use culinaria_bench::world_from_env;
use culinaria_core::{
    analyze_cuisine, recipe_pairing_score, CuisineView, FlavorViewRef, MonteCarloConfig, NullModel,
    OverlapCache, RecipesViewRef,
};
use culinaria_datagen::World;
use culinaria_flavordb::{
    artifact as flavor_artifact, AlignedBytes, FlavorArtifactBuilder, IngredientId,
};
use culinaria_obs::Metrics;
use culinaria_recipedb::import::Importer;
use culinaria_recipedb::{artifact as recipe_artifact, RecipeArtifactBuilder, Region};
use culinaria_serve::protocol::{self, Client, TopPairing};
use culinaria_serve::{resolve_score_lines, ConnStats, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Salt so the query-mix RNG never collides with the datagen streams.
const MIX_SALT: u64 = 0x6b21_7c5e_11d3_90af;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(name: &str, default: &str) -> Vec<usize> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_owned());
    raw.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse().expect("comma-separated usize list"))
        .collect()
}

/// The seeded deterministic query mix: request payloads (sans id) plus
/// everything the parity probes need.
struct QueryMix {
    /// Prebuilt `(region, ids)` sets; repeats across requests are what
    /// make the response cache earn its keep.
    sets: Vec<(Region, Vec<IngredientId>)>,
    /// Regions populated enough for ZPROF/TOPK/SCORE.
    regions: Vec<Region>,
    /// Free-text lines per region for SCORE (real ingredient names).
    score_lines: Vec<Vec<String>>,
}

impl QueryMix {
    fn build(world: &World, seed: u64) -> QueryMix {
        let mut rng = StdRng::seed_from_u64(seed ^ MIX_SALT);
        let mut ranked: Vec<(Region, Vec<IngredientId>)> = world
            .recipes
            .regions()
            .into_iter()
            .map(|r| (r, world.recipes.cuisine(r).ingredient_set()))
            .filter(|(_, pool)| pool.len() >= 8)
            .collect();
        ranked.sort_by_key(|(r, _)| std::cmp::Reverse(world.recipes.cuisine(*r).n_recipes()));
        ranked.truncate(3);
        assert!(!ranked.is_empty(), "world has no populated cuisine");
        let mut sets = Vec::with_capacity(64);
        for _ in 0..64 {
            let (region, pool) = &ranked[rng.random_range(0..ranked.len())];
            let n = rng.random_range(2..=5usize);
            let mut ids: Vec<IngredientId> = (0..n)
                .map(|_| pool[rng.random_range(0..pool.len())])
                .collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() < 2 {
                ids = pool[..2].to_vec();
            }
            sets.push((*region, ids));
        }
        let score_lines = ranked
            .iter()
            .map(|(_, pool)| {
                pool[..3]
                    .iter()
                    .map(|&id| world.flavor.ingredient(id).expect("live id").name.clone())
                    .collect()
            })
            .collect();
        QueryMix {
            regions: ranked.iter().map(|(r, _)| *r).collect(),
            sets,
            score_lines,
        }
    }

    /// One request payload body (everything after the id token).
    fn draw(&self, rng: &mut StdRng) -> String {
        let roll = rng.random_range(0..100u32);
        let (region, ids) = &self.sets[rng.random_range(0..self.sets.len())];
        let ids_arg = ids
            .iter()
            .map(|id| id.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        if roll < 55 {
            format!("PAIR {} {ids_arg}", region.code())
        } else if roll < 65 {
            format!("PAIR - {ids_arg}")
        } else if roll < 80 {
            let r = self.regions[rng.random_range(0..self.regions.len())];
            format!("TOPK {} 10", r.code())
        } else if roll < 90 {
            let r = self.regions[rng.random_range(0..self.regions.len())];
            format!("ZPROF {}", r.code())
        } else {
            let i = rng.random_range(0..self.regions.len());
            format!(
                "SCORE {}\n{}",
                self.regions[i].code(),
                self.score_lines[i].join("\n")
            )
        }
    }
}

/// Run `f` against a live connection to `server`. The client must read
/// every reply it is owed before returning; the connection closes by
/// dropping the client (clean EOF on the server side).
fn with_connection<T>(
    server: &Server<'_>,
    f: impl FnOnce(&mut Client<UnixStream>) -> T,
) -> (T, ConnStats) {
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let handle =
            scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        let mut client = Client::new(client_side);
        let out = f(&mut client);
        drop(client);
        (out, handle.join().expect("server thread"))
    })
}

/// Offline expected responses for the parity probes, computed from the
/// owned world through the same `analyze_*` pipeline the batch CLI
/// uses. Pairs of (request payload, expected response sans id).
fn offline_probes(world: &World, mix: &QueryMix, mc: usize, seed: u64) -> Vec<(String, String)> {
    let (region, ids) = &mix.sets[0];
    let cuisine_owned = world.recipes.cuisine(*region);
    let cuisine = CuisineView::Owned(world.recipes.cuisine(*region));
    let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine_owned);
    let ids_arg = ids
        .iter()
        .map(|id| id.0.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut probes = Vec::new();

    // PAIR, shard path and global path — same bits both ways.
    let shard_score = cache.score_ids(ids).expect("ids from the region pool");
    probes.push((
        format!("PAIR {} {ids_arg}", region.code()),
        format!("OK {}", protocol::pair_body(shard_score)),
    ));
    let global_score = recipe_pairing_score(&world.flavor, ids);
    probes.push((
        format!("PAIR - {ids_arg}"),
        format!("OK {}", protocol::pair_body(global_score)),
    ));

    // ZPROF — the serve shard path must reproduce analyze_cuisine.
    let cfg = MonteCarloConfig {
        n_recipes: mc,
        seed,
        n_threads: 1,
    };
    let analysis =
        analyze_cuisine(&world.flavor, &cuisine_owned, &NullModel::ALL, &cfg).expect("populated");
    probes.push((
        format!("ZPROF {}", region.code()),
        format!("OK {}", protocol::zprof_body(&analysis)),
    ));

    // TOPK — the novelty enumeration promoted from the examples.
    let pool = cuisine.ingredient_set();
    let tri_index = |n: usize, i: usize, j: usize| i * n - i * (i + 1) / 2 + (j - i - 1);
    let pos: HashMap<IngredientId, usize> =
        pool.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut cooc = vec![0u64; pool.len() * pool.len().saturating_sub(1) / 2];
    for recipe in world.recipes.recipes() {
        let mut members: Vec<usize> = recipe
            .ingredients()
            .iter()
            .filter_map(|id| pos.get(id).copied())
            .collect();
        members.sort_unstable();
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                cooc[tri_index(pool.len(), i, j)] += 1;
            }
        }
    }
    let mut candidates: Vec<(f64, u32, u64, usize, usize)> = Vec::new();
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            let overlap = cache.overlap(i as u32, j as u32);
            if overlap == 0 {
                continue;
            }
            let c = cooc[tri_index(pool.len(), i, j)];
            candidates.push((f64::from(overlap) / (1.0 + c as f64), overlap, c, i, j));
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    let rows: Vec<TopPairing> = candidates
        .iter()
        .take(10)
        .map(|&(novelty, overlap, cooc, i, j)| TopPairing {
            novelty,
            overlap,
            cooc,
            a: world.flavor.ingredient(pool[i]).expect("live").name.clone(),
            b: world.flavor.ingredient(pool[j]).expect("live").name.clone(),
        })
        .collect();
    probes.push((
        format!("TOPK {} 10", region.code()),
        format!("OK {}", protocol::topk_body(*region, &rows)),
    ));

    // SCORE — free-text import-and-score.
    let lines = &mix.score_lines[mix.regions.iter().position(|r| r == region).unwrap_or(0)];
    let importer = Importer::from_flavor_db(&world.flavor);
    let (resolved_ids, resolved) = resolve_score_lines(&importer, &world.flavor, lines);
    assert!(resolved_ids.len() >= 2, "probe names must resolve");
    let score = recipe_pairing_score(&world.flavor, &resolved_ids);
    let mean = cache.mean_cuisine_score_view(&cuisine).expect("scores");
    probes.push((
        format!("SCORE {}\n{}", region.code(), lines.join("\n")),
        format!(
            "OK {} vs={}",
            protocol::score_body(resolved, lines.len(), resolved_ids.len(), score),
            protocol::f64_field(mean),
        ),
    ));
    probes
}

/// Measured outcome of one load run.
struct RunStats {
    mode: &'static str,
    threads: usize,
    cache_entries: usize,
    requests: usize,
    busy: u64,
    elapsed_s: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

impl RunStats {
    fn json_row(&self, server: &Server<'_>) -> String {
        let (hits, misses, evictions) = server
            .cache_stats()
            .map(|s| (s.hits, s.misses, s.evictions))
            .unwrap_or((0, 0, 0));
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let snap = server.metrics().snapshot();
        let (batch_mean, batch_p50, batch_max) = snap
            .histogram("serve.batch")
            .map(|h| (h.mean_us() as f64, h.quantile_interp_us(0.50), h.max_us))
            .unwrap_or((0.0, 0.0, 0));
        format!(
            "    {{ \"mode\": \"{}\", \"threads\": {}, \"cache_entries\": {}, \
             \"requests\": {}, \"busy\": {}, \"elapsed_s\": {:.3}, \
             \"throughput_rps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"mean_us\": {:.1}, \"cache_hits\": {hits}, \"cache_misses\": {misses}, \
             \"cache_evictions\": {evictions}, \"cache_hit_rate\": {hit_rate:.3}, \
             \"batch_mean\": {batch_mean:.1}, \"batch_p50\": {batch_p50:.1}, \
             \"batch_max\": {batch_max} }}",
            self.mode,
            self.threads,
            self.cache_entries,
            self.requests,
            self.busy,
            self.elapsed_s,
            self.requests as f64 / self.elapsed_s,
            self.p50_us,
            self.p99_us,
            self.mean_us,
        )
    }
}

/// Closed-loop run: `clients` connections, each keeping `window`
/// requests pipelined. Returns merged client-side latencies (µs),
/// BUSY count, and wall time.
fn run_closed_loop(
    server: &Server<'_>,
    mix: &QueryMix,
    seed: u64,
    total: usize,
    clients: usize,
    window: usize,
) -> (Vec<u64>, u64, f64) {
    let per_client = total.div_ceil(clients);
    let t0 = Instant::now();
    let results: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ MIX_SALT ^ (c as u64 + 1));
                    let lines: Vec<String> = (0..per_client).map(|_| mix.draw(&mut rng)).collect();
                    let (out, _stats) = with_connection(server, |client| {
                        let mut lat = Vec::with_capacity(lines.len());
                        let mut busy = 0u64;
                        let mut inflight: HashMap<u64, Instant> = HashMap::new();
                        let mut next = 0usize;
                        let base = (c as u64 + 1) << 32;
                        let send_next = |client: &mut Client<UnixStream>,
                                         inflight: &mut HashMap<u64, Instant>,
                                         next: &mut usize| {
                            let id = base + *next as u64;
                            inflight.insert(id, Instant::now());
                            client
                                .send(&format!("{id} {}", lines[*next]))
                                .expect("send");
                            *next += 1;
                        };
                        while next < lines.len() && inflight.len() < window {
                            send_next(client, &mut inflight, &mut next);
                        }
                        while !inflight.is_empty() {
                            let (rid, rest) =
                                client.recv().expect("recv").expect("connection open");
                            if rest.starts_with("BUSY") {
                                busy += 1;
                            }
                            if let Some(sent) = inflight.remove(&rid) {
                                lat.push(sent.elapsed().as_micros() as u64);
                            }
                            if next < lines.len() {
                                send_next(client, &mut inflight, &mut next);
                            }
                        }
                        (lat, busy)
                    });
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut lat = Vec::new();
    let mut busy = 0u64;
    for (mut l, b) in results {
        lat.append(&mut l);
        busy += b;
    }
    (lat, busy, elapsed)
}

/// Fixed-rate (open-loop) run on one connection: a writer thread on an
/// absolute schedule, the reader correlating replies by id.
fn run_fixed_rate(
    server: &Server<'_>,
    mix: &QueryMix,
    seed: u64,
    total: usize,
    rate_rps: usize,
) -> (Vec<u64>, u64, f64) {
    let mut rng = StdRng::seed_from_u64(seed ^ MIX_SALT ^ 0xfeed);
    let lines: Vec<String> = (0..total).map(|_| mix.draw(&mut rng)).collect();
    let sent_at: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let period = Duration::from_secs_f64(1.0 / rate_rps as f64);

    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    let write_half = client_side.try_clone().expect("clone");
    let t0 = Instant::now();
    let (lat, busy) = std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let srv = scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        let sent_at = &sent_at;
        let lines_ref = &lines;
        let writer = scope.spawn(move || {
            let mut w = write_half;
            let start = Instant::now();
            for (i, line) in lines_ref.iter().enumerate() {
                let due = start + period * i as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let id = (1u64 << 48) + i as u64;
                sent_at.lock().expect("lock").insert(id, Instant::now());
                protocol::write_frame(&mut w, format!("{id} {line}").as_bytes()).expect("send");
            }
        });
        let mut client = Client::new(client_side);
        let mut lat = Vec::with_capacity(total);
        let mut busy = 0u64;
        for _ in 0..total {
            let (rid, rest) = client.recv().expect("recv").expect("open");
            if rest.starts_with("BUSY") {
                busy += 1;
            }
            if let Some(t) = sent_at.lock().expect("lock").remove(&rid) {
                lat.push(t.elapsed().as_micros() as u64);
            }
        }
        writer.join().expect("writer thread");
        drop(client); // last client-side fd -> clean EOF on the server
        srv.join().expect("server thread");
        (lat, busy)
    });
    (lat, busy, t0.elapsed().as_secs_f64())
}

/// Interpolated quantiles via the obs histogram — the same estimator
/// the METRICS endpoint reports.
fn latency_quantiles(lat_us: &[u64]) -> (f64, f64, f64) {
    let metrics = Metrics::enabled();
    let hist = metrics.histogram("client.latency_us");
    let mut sum = 0u64;
    for &us in lat_us {
        hist.record(us);
        sum += us;
    }
    let snap = metrics.snapshot();
    let h = snap.histogram("client.latency_us").expect("recorded");
    (
        h.quantile_interp_us(0.50),
        h.quantile_interp_us(0.99),
        sum as f64 / lat_us.len().max(1) as f64,
    )
}

fn main() {
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let total: usize = env_or("CULINARIA_SERVE_REQS", 2_000);
    let clients: usize = env_or("CULINARIA_SERVE_CLIENTS", 4);
    let window: usize = env_or("CULINARIA_SERVE_WINDOW", 8);
    let mc: usize = env_or("CULINARIA_SERVE_MC", 500);
    let rate: usize = env_or("CULINARIA_SERVE_RATE", 300);
    let thread_list = env_list("CULINARIA_SERVE_THREADS", "1,2");
    let cache_list = env_list("CULINARIA_SERVE_CACHE", "0,4096");
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_serve.json".to_string());

    let world = world_from_env();
    let mix = QueryMix::build(&world, seed);

    // Artifacts with overlap sections: the server's shard builds hit
    // the section-reuse fast path, as in production.
    let mut builder = FlavorArtifactBuilder::new(&world.flavor);
    for region in world.recipes.regions() {
        let cache = OverlapCache::for_cuisine(&world.flavor, &world.recipes.cuisine(region));
        if cache.pool().is_empty() {
            continue;
        }
        builder
            .add_overlap(region.code(), cache.pool(), cache.tri())
            .expect("overlap section");
    }
    let fbuf = AlignedBytes::from_vec(builder.build().expect("flavor artifact"));
    let rbuf = AlignedBytes::from_vec(
        RecipeArtifactBuilder::new(&world.recipes)
            .build()
            .expect("recipe artifact"),
    );
    let fview = flavor_artifact::open(fbuf.as_slice()).expect("open");
    let rview = recipe_artifact::open(rbuf.as_slice()).expect("open");
    let flavor = FlavorViewRef::Artifact(&fview);
    let recipes = RecipesViewRef::Artifact(&rview);

    let probes = offline_probes(&world, &mix, mc, seed);
    let mut probe_fingerprint: Option<Vec<String>> = None;
    let mut rows = Vec::new();

    for &threads in &thread_list {
        for &cache_entries in &cache_list {
            let cfg = ServeConfig {
                threads,
                cache_entries,
                mc_recipes: mc,
                seed,
                ..ServeConfig::default()
            };

            // Parity: every probe answered over a live connection must
            // match the offline pipeline bit-for-bit — and match every
            // other config (threads and caching must not change bits).
            let probe_server = Server::new(flavor, recipes, cfg, Metrics::enabled());
            let (served, _) = with_connection(&probe_server, |client| {
                probes
                    .iter()
                    .enumerate()
                    .map(|(i, (req, _))| client.call(i as u64 + 1, req).expect("probe answered"))
                    .collect::<Vec<String>>()
            });
            for ((req, expected), got) in probes.iter().zip(&served) {
                assert_eq!(
                    got, expected,
                    "served {req:?} diverged from the offline pipeline \
                     (threads {threads}, cache {cache_entries})"
                );
            }
            match &probe_fingerprint {
                None => probe_fingerprint = Some(served),
                Some(first) => assert_eq!(
                    first, &served,
                    "probe responses changed across configs (threads {threads}, \
                     cache {cache_entries})"
                ),
            }

            // Closed-loop load run on a fresh server (clean counters).
            let server = Server::new(flavor, recipes, cfg, Metrics::enabled());
            let (lat, busy, elapsed) = run_closed_loop(&server, &mix, seed, total, clients, window);
            assert_eq!(lat.len(), clients * total.div_ceil(clients));
            let (p50, p99, mean) = latency_quantiles(&lat);
            if cache_entries > 0 {
                let cs = server.cache_stats().expect("cache enabled");
                assert!(
                    cs.hits > 0,
                    "seeded mix must produce cache hits (threads {threads})"
                );
            }
            eprintln!(
                "closed-loop threads={threads} cache={cache_entries}: \
                 {} reqs in {elapsed:.2}s ({:.0} rps), p50 {p50:.0}µs p99 {p99:.0}µs",
                lat.len(),
                lat.len() as f64 / elapsed,
            );
            rows.push(
                RunStats {
                    mode: "closed-loop",
                    threads,
                    cache_entries,
                    requests: lat.len(),
                    busy,
                    elapsed_s: elapsed,
                    p50_us: p50,
                    p99_us: p99,
                    mean_us: mean,
                }
                .json_row(&server),
            );
        }
    }

    // Fixed-rate run at the widest config.
    let cfg = ServeConfig {
        threads: *thread_list.last().expect("nonempty"),
        cache_entries: *cache_list.last().expect("nonempty"),
        mc_recipes: mc,
        seed,
        ..ServeConfig::default()
    };
    let server = Server::new(flavor, recipes, cfg, Metrics::enabled());
    let n_rate = (total / 2).max(1);
    let (lat, busy, elapsed) = run_fixed_rate(&server, &mix, seed, n_rate, rate);
    let (p50, p99, mean) = latency_quantiles(&lat);
    eprintln!(
        "fixed-rate {rate} rps: {} reqs in {elapsed:.2}s, p50 {p50:.0}µs p99 {p99:.0}µs",
        lat.len()
    );
    rows.push(
        RunStats {
            mode: "fixed-rate",
            threads: cfg.threads,
            cache_entries: cfg.cache_entries,
            requests: lat.len(),
            busy,
            elapsed_s: elapsed,
            p50_us: p50,
            p99_us: p99,
            mean_us: mean,
        }
        .json_row(&server),
    );

    // Backpressure burst: tiny queue, serial batches, expensive
    // queries — the flood must be shed with BUSY, not queued forever.
    let burst_cfg = ServeConfig {
        threads: 1,
        batch_max: 1,
        cache_entries: 0,
        max_queue: 2,
        mc_recipes: mc.max(2_000),
        seed,
    };
    let burst_server = Server::new(flavor, recipes, burst_cfg, Metrics::enabled());
    let burst_n = 60usize;
    let ((answered, busy), conn) = with_connection(&burst_server, |client| {
        for i in 0..burst_n {
            client
                .send(&format!("{} ZPROF {}", i + 1, mix.regions[0].code()))
                .expect("send");
        }
        let mut answered = 0u64;
        let mut busy = 0u64;
        for _ in 0..burst_n {
            let (_, rest) = client.recv().expect("recv").expect("open");
            if rest.starts_with("BUSY") {
                busy += 1;
            } else {
                answered += 1;
            }
        }
        (answered, busy)
    });
    assert!(
        busy > 0,
        "a {burst_n}-deep flood over a 2-slot queue must shed with BUSY"
    );
    assert_eq!(conn.served + conn.shed, burst_n as u64);
    eprintln!("burst: {answered} served, {busy} shed with BUSY");
    rows.push(format!(
        "    {{ \"mode\": \"burst\", \"threads\": 1, \"cache_entries\": 0, \
         \"requests\": {burst_n}, \"busy\": {busy}, \"served\": {answered} }}"
    ));

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"seed\": {seed},\n  \"mc_recipes\": {mc},\n  \
         \"requests_per_run\": {total},\n  \"clients\": {clients},\n  \
         \"window\": {window},\n  \"probes\": {n_probes},\n  \
         \"parity\": \"served PAIR/ZPROF/TOPK/SCORE bit-identical to offline \
         analyze_cuisine + pairing pipeline across all configs\",\n  \
         \"runs\": [\n{rows}\n  ]\n}}\n",
        n_probes = probes.len(),
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
