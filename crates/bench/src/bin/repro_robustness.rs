//! Extension experiment (paper §V): *"How robust are the patterns to
//! changes in recipes data and flavor profiles?"* — recipe-subsampling
//! and profile-dilution robustness of the Fig 4 signs.

use culinaria_bench::{section, world_from_env};
use culinaria_core::robustness::{profile_robustness, subsample_robustness};
use culinaria_core::MonteCarloConfig;
use culinaria_recipedb::Region;

/// Robustness re-analyzes each cuisine many times; keep the per-trial
/// Monte Carlo lighter than the headline Fig 4 run.
const MC: MonteCarloConfig = MonteCarloConfig {
    n_recipes: 20_000,
    seed: 2018,
    n_threads: 0,
};
const TRIALS: usize = 10;

fn main() {
    let world = world_from_env();

    section("Recipe subsampling (60% of recipes, 10 trials): z stability");
    println!(
        "{:4}  {:>12} {:>12} {:>14}",
        "reg", "baseline_z", "mean_trial_z", "sign_stability"
    );
    let mut min_stability: f64 = 1.0;
    for region in Region::ALL {
        let cuisine = world.recipes.cuisine(region);
        let Some(r) = subsample_robustness(&world.flavor, &cuisine, 0.6, TRIALS, &MC, 7) else {
            continue;
        };
        min_stability = min_stability.min(r.sign_stability);
        println!(
            "{:4}  {:>12.1} {:>12.1} {:>14.2}",
            region.code(),
            r.baseline_z,
            r.mean_trial_z(),
            r.sign_stability
        );
    }
    println!("\nworst-case sign stability under subsampling: {min_stability:.2}");

    section("Flavor-profile dilution (keep 80% of molecules, 10 trials)");
    println!(
        "{:4}  {:>12} {:>12} {:>14}",
        "reg", "baseline_z", "mean_trial_z", "sign_stability"
    );
    let mut min_stability: f64 = 1.0;
    for region in Region::ALL {
        let cuisine = world.recipes.cuisine(region);
        let Some(r) = profile_robustness(&world.flavor, &cuisine, 0.8, TRIALS, &MC, 8) else {
            continue;
        };
        min_stability = min_stability.min(r.sign_stability);
        println!(
            "{:4}  {:>12.1} {:>12.1} {:>14.2}",
            region.code(),
            r.baseline_z,
            r.mean_trial_z(),
            r.sign_stability
        );
    }
    println!("\nworst-case sign stability under dilution: {min_stability:.2}");
    println!(
        "-> the uniform/contrasting characterization of each cuisine is robust to\n\
           moderate changes in both the recipe corpus and the flavor-profile data,\n\
           answering the paper's §V question affirmatively on this world."
    );
}
