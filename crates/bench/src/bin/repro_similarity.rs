//! Supplementary analysis: culinary fingerprints and cuisine
//! similarity — the paper's "regional cuisines are like languages"
//! analogy made quantitative. Computes the pairwise cosine-similarity
//! matrix over ingredient-usage fingerprints and an average-linkage
//! clustering of the 22 cuisines.

use culinaria_bench::{section, world_from_env};
use culinaria_core::fingerprint::{
    agglomerate, cosine_similarity, similarity_matrix, world_fingerprints,
};

fn main() {
    let world = world_from_env();
    let fingerprints = world_fingerprints(&world.flavor, &world.recipes);

    section("Cuisine similarity matrix (cosine over ingredient-usage fingerprints)");
    println!("{}", similarity_matrix(&fingerprints).to_table_string(22));

    section("Nearest neighbour per cuisine");
    for (i, fa) in fingerprints.iter().enumerate() {
        let mut best: Option<(f64, &str)> = None;
        for (j, fb) in fingerprints.iter().enumerate() {
            if i == j {
                continue;
            }
            let s = cosine_similarity(fa, fb);
            if best.is_none_or(|(b, _)| s > b) {
                best = Some((s, fb.region.code()));
            }
        }
        let (s, code) = best.expect("22 regions");
        println!("{:4} -> {:4}  ({s:.3})", fa.region.code(), code);
    }

    section("Average-linkage clustering (merge order, most similar first)");
    for (k, m) in agglomerate(&fingerprints).iter().enumerate() {
        let left: Vec<&str> = m.left.iter().map(|r| r.code()).collect();
        let right: Vec<&str> = m.right.iter().map(|r| r.code()).collect();
        println!(
            "{:>2}. [{}] + [{}]  @ {:.3}",
            k + 1,
            left.join(","),
            right.join(","),
            m.similarity
        );
    }
}
