//! Extension experiment (paper §V): *"How to incorporate transformation
//! of flavor in the process of cooking?"* — the cooking model's effect
//! on pairing scores across methods, on the generated world.

use culinaria_bench::{section, world_from_env};
use culinaria_core::cooking::{CookingMethod, Kitchen};
use culinaria_core::pairing::recipe_pairing_score;
use culinaria_recipedb::Region;

fn main() {
    let world = world_from_env();
    let kitchen = Kitchen::new(&world.flavor);

    section("Pairing under uniform cooking methods (mean over 200 recipes/region)");
    println!(
        "{:4}  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "reg", "raw", "boiled", "roasted", "fried", "smoked", "ferment"
    );
    for region in [
        Region::Italy,
        Region::France,
        Region::Japan,
        Region::Scandinavia,
        Region::IndianSubcontinent,
        Region::Usa,
    ] {
        let cuisine = world.recipes.cuisine(region);
        let mut means = [0.0f64; 6];
        let mut n = 0usize;
        for r in cuisine.recipes().iter().take(200) {
            if r.size() < 2 {
                continue;
            }
            n += 1;
            for (slot, &method) in CookingMethod::ALL.iter().enumerate() {
                let prepared: Vec<_> = r.ingredients().iter().map(|&i| (i, method)).collect();
                means[slot] += kitchen.prepared_pairing_score(&prepared);
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        println!(
            "{:4}  {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            region.code(),
            means[0],
            means[1],
            means[2],
            means[3],
            means[4],
            means[5]
        );
    }

    section("Findings");
    let cuisine = world.recipes.cuisine(Region::Japan);
    let recipe = cuisine
        .recipes()
        .iter()
        .find(|r| r.size() >= 4)
        .expect("populated cuisine");
    let raw = recipe_pairing_score(kitchen.db(), recipe.ingredients());
    let roasted: Vec<_> = recipe
        .ingredients()
        .iter()
        .map(|&i| (i, CookingMethod::Roasted))
        .collect();
    println!(
        "browning methods homogenize flavor (shared Maillard signature lifts every\n\
         cuisine's score — e.g. one JPN recipe: raw {raw:.3} -> roasted {:.3});\n\
         boiling strips volatiles and lowers pairing without adding any. A cooked\n\
         corpus would therefore shift Fig 4 toward uniform pairing — a concrete,\n\
         testable prediction of the §V question.",
        kitchen.prepared_pairing_score(&roasted)
    );
}
