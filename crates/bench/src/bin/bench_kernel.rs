//! Microbenchmark for the lane-widened bitset kernel.
//!
//! Isolates the single-thread win of the 4-lane AND+popcount primitive
//! (`culinaria_flavordb::kernel::and_popcount`, runtime-dispatched to a
//! POPCNT build when the CPU has it) against the scalar reference walk
//! (`kernel::scalar::and_popcount`), with no pooling, tiling, or cache
//! effects in the way. Universe sizes sweep the crossover region word
//! by word (64–320 bits) and then the pipeline's packed-profile sizes
//! (512 bits — two full lane groups; 4096 bits — lane-dominated).
//!
//! Three paths are timed per size: the scalar walk, the raw widened
//! loop (`kernel::widened`, no dispatch threshold), and the public
//! dispatcher, which routes operands below
//! [`kernel::SCALAR_BELOW_WORDS`] words to the scalar walk. The
//! summary records the measured crossover — the smallest word count
//! where the widened loop actually beats the scalar one — so the
//! compiled-in threshold can be audited against the machine.
//!
//! All paths fold every result into a checksum that is asserted equal,
//! so the measured loops provably do the same work. Each timing is the
//! min over interleaved repeats. Writes `BENCH_kernel.json`.
//!
//! Knobs: `CULINARIA_KERNEL_PAIRS` (default 4096 operand pairs per
//! universe), `CULINARIA_SEED` (default 2018), `CULINARIA_BENCH_OUT`
//! (default `BENCH_kernel.json`).

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use culinaria_flavordb::kernel;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Universe sizes in bits: every word count through the crossover
/// region, then eight words (two full lane groups, no tail) and
/// sixty-four words (lane-dominated).
const UNIVERSES: &[usize] = &[64, 128, 192, 256, 320, 512, 4096];

/// Timed repeats per path; the min is reported (steady-state cost,
/// robust to scheduler noise on a shared box).
const TIME_REPS: usize = 5;

/// Word-operation budget per timed sample, so every universe size gets
/// a measurement in the milliseconds regardless of operand width.
const WORK_BUDGET: usize = 16_000_000;

/// One timed sample: `passes` sweeps of `f` over all pairs, folding
/// results into a checksum the caller asserts on.
fn sample(
    pairs: &[(Vec<u64>, Vec<u64>)],
    passes: usize,
    f: impl Fn(&[u64], &[u64]) -> u64,
) -> (f64, u64) {
    let t = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..passes {
        for (a, b) in pairs {
            checksum = checksum.wrapping_add(f(black_box(a), black_box(b)));
        }
    }
    (t.elapsed().as_secs_f64() * 1e3, black_box(checksum))
}

/// Whether the dispatched path runs the POPCNT build on this machine.
fn popcnt_dispatch() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn main() {
    let n_pairs: usize = env_or("CULINARIA_KERNEL_PAIRS", 4096);
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_kernel.json".to_string());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut rows = Vec::new();
    let mut crossover_words = usize::MAX;
    for &bits in UNIVERSES {
        let words = bits / 64;
        let pairs: Vec<(Vec<u64>, Vec<u64>)> = (0..n_pairs)
            .map(|_| {
                let gen = |rng: &mut StdRng| (0..words).map(|_| rng.random()).collect::<Vec<u64>>();
                (gen(&mut rng), gen(&mut rng))
            })
            .collect();
        let passes = (WORK_BUDGET / (n_pairs * words).max(1)).max(1);

        // Interleaved min-of-N: the three paths alternate inside each
        // repeat, so none of them monopolizes a quiet (or noisy)
        // window.
        let mut scalar_ms = f64::INFINITY;
        let mut widened_ms = f64::INFINITY;
        let mut dispatched_ms = f64::INFINITY;
        let mut scalar_sum = 0u64;
        let mut widened_sum = 0u64;
        let mut dispatched_sum = 0u64;
        for _ in 0..TIME_REPS {
            let (ms, sum) = sample(&pairs, passes, kernel::scalar::and_popcount);
            scalar_ms = scalar_ms.min(ms);
            scalar_sum = sum;
            let (ms, sum) = sample(&pairs, passes, kernel::widened::and_popcount);
            widened_ms = widened_ms.min(ms);
            widened_sum = sum;
            let (ms, sum) = sample(&pairs, passes, kernel::and_popcount);
            dispatched_ms = dispatched_ms.min(ms);
            dispatched_sum = sum;
        }
        assert_eq!(
            scalar_sum, widened_sum,
            "kernel checksum diverged at {bits} bits"
        );
        assert_eq!(
            scalar_sum, dispatched_sum,
            "dispatched checksum diverged at {bits} bits"
        );

        let widened_speedup = scalar_ms / widened_ms;
        let dispatched_speedup = scalar_ms / dispatched_ms;
        eprintln!(
            "{bits:>5} bits ({words:>2} words): scalar {scalar_ms:.2} ms, \
             widened {widened_ms:.2} ms ({widened_speedup:.2}x), \
             dispatched {dispatched_ms:.2} ms ({dispatched_speedup:.2}x) \
             ({passes} passes x {n_pairs} pairs)"
        );
        if widened_speedup > 1.0 {
            crossover_words = crossover_words.min(words);
        }
        rows.push(format!(
            "    {{ \"bits\": {bits}, \"words\": {words}, \"passes\": {passes}, \
             \"scalar_ms\": {scalar_ms:.3}, \"widened_ms\": {widened_ms:.3}, \
             \"dispatched_ms\": {dispatched_ms:.3}, \
             \"widened_speedup\": {widened_speedup:.3}, \
             \"dispatched_speedup\": {dispatched_speedup:.3}, \
             \"parity\": \"checksum-identical\" }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"kernel_and_popcount\",\n  \"n_pairs\": {n_pairs},\n  \
         \"seed\": {seed},\n  \"time_reps\": {TIME_REPS},\n  \
         \"popcnt_dispatch\": {popcnt},\n  \
         \"scalar_below_words\": {threshold},\n  \
         \"measured_crossover_words\": {crossover},\n  \
         \"universes\": [\n{rows}\n  ]\n}}\n",
        popcnt = popcnt_dispatch(),
        threshold = kernel::SCALAR_BELOW_WORDS,
        crossover = if crossover_words == usize::MAX {
            "null".to_string()
        } else {
            crossover_words.to_string()
        },
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
