//! Streaming-ingestion benchmark: incremental analysis state vs batch
//! recomputes, and ingest-while-serving over `Server::ingest_swap`.
//!
//! Two measured regimes, each with an in-binary parity assert:
//!
//! * **Incremental vs batch** — a recipe stream is fed micro-batch by
//!   micro-batch into a [`StreamState`] (frequency tables, category
//!   counts, per-region overlap caches grown row-by-row, Welford
//!   running stats) while the batch path recomputes the touched
//!   regions' state cold after every micro-batch, exactly as the
//!   offline pipeline would. Per micro-batch size the harness reports
//!   total time for both paths, the speedup, and the incremental
//!   update-latency p50/p99 — and asserts the final incremental state
//!   is *bit-identical* to the cold rebuild over the whole stream.
//! * **Ingest while serving** — a [`Server`] answers a fixed-rate
//!   query mix (ZPROF + PAIR over one connection) while the main
//!   thread installs successive data generations with
//!   [`Server::ingest_swap`]. The harness reports query p50/p99 under
//!   churn, swap latency p50/p99, and the `serve.cache.invalidations`
//!   count — and asserts the post-swap server answers bit-identically
//!   to a fresh server built over the final store.
//!
//! Writes `BENCH_stream.json`. Knobs: `CULINARIA_SCALE`,
//! `CULINARIA_SEED`, `CULINARIA_STREAM_RECIPES` (stream length,
//! default 240), `CULINARIA_STREAM_BATCH` (micro-batch sizes, default
//! "1,8,64"), `CULINARIA_STREAM_QUERIES` (default 400),
//! `CULINARIA_STREAM_RATE` (queries/s, default 200),
//! `CULINARIA_STREAM_SWAPS` (generations installed, default 8),
//! `CULINARIA_STREAM_SWAP_BATCH` (recipes per generation, default 16),
//! `CULINARIA_STREAM_MC` (Monte-Carlo recipes per ZPROF, default 300),
//! `CULINARIA_STREAM_THREADS` (default "1,2"), `CULINARIA_BENCH_OUT`.

use std::collections::{BTreeSet, HashMap};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use culinaria_bench::world_from_env;
use culinaria_core::composition::category_counts;
use culinaria_core::{
    recipe_pairing_score, FlavorViewRef, OverlapCache, RecipesViewRef, StreamState,
};
use culinaria_flavordb::IngredientId;
use culinaria_obs::Metrics;
use culinaria_recipedb::{RecipeStore, Region, Source};
use culinaria_serve::protocol::{self, Client};
use culinaria_serve::{ConnStats, ServeConfig, Server};
use culinaria_stats::running::RunningStats;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(name: &str, default: &str) -> Vec<usize> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_owned());
    raw.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse().expect("comma-separated usize list"))
        .collect()
}

/// One stored recipe, owned so stores can be regrown generation by
/// generation without borrowing the world.
struct StreamRecipe {
    name: String,
    region: Region,
    source: Source,
    ids: Vec<IngredientId>,
}

/// Run `f` against a live connection to `server` (same shape as
/// `bench_serve`): the closure must drain every reply it is owed.
fn with_connection<T>(
    server: &Server<'_>,
    f: impl FnOnce(&mut Client<UnixStream>) -> T,
) -> (T, ConnStats) {
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let handle =
            scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        let mut client = Client::new(client_side);
        let out = f(&mut client);
        drop(client);
        (out, handle.join().expect("server thread"))
    })
}

/// Interpolated p50/p99 over client-side latencies, via the same obs
/// histogram estimator the METRICS endpoint uses.
fn quantiles_us(lat_us: &[u64]) -> (f64, f64) {
    let metrics = Metrics::enabled();
    let hist = metrics.histogram("lat_us");
    for &us in lat_us {
        hist.record(us);
    }
    let snap = metrics.snapshot();
    let h = snap.histogram("lat_us").expect("recorded");
    (h.quantile_interp_us(0.50), h.quantile_interp_us(0.99))
}

/// Assert the incrementally fed `state` is bit-identical to a cold
/// batch rebuild over `store` — the bench's parity gate.
fn assert_stream_parity(
    db: &culinaria_flavordb::FlavorDb,
    state: &StreamState,
    store: &RecipeStore,
    label: &str,
) {
    assert_eq!(
        state.global_frequencies(),
        &store.global_frequencies(),
        "{label}: global frequencies diverged"
    );
    for region in store.regions() {
        let cuisine = store.cuisine(region);
        let rs = state.region(region);
        assert_eq!(
            rs.frequencies(),
            &cuisine.frequencies(),
            "{label}: {region} frequencies diverged"
        );
        assert_eq!(
            rs.category_counts(),
            &category_counts(db, &cuisine),
            "{label}: {region} category counts diverged"
        );
        let cold = OverlapCache::for_cuisine(db, &cuisine);
        assert_eq!(
            rs.overlap().pool(),
            cold.pool(),
            "{label}: {region} overlap pool diverged"
        );
        assert_eq!(
            rs.overlap().tri(),
            cold.tri(),
            "{label}: {region} overlap triangle diverged"
        );
        let mut batch = RunningStats::new();
        for r in cuisine.recipes() {
            if r.size() >= 2 {
                batch.push(recipe_pairing_score(db, r.ingredients()));
            }
        }
        assert_eq!(
            rs.pairing_stats(),
            &batch,
            "{label}: {region} running stats diverged"
        );
    }
}

fn main() {
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let n_stream: usize = env_or("CULINARIA_STREAM_RECIPES", 240);
    let batch_sizes = env_list("CULINARIA_STREAM_BATCH", "1,8,64");
    let queries: usize = env_or("CULINARIA_STREAM_QUERIES", 400);
    let rate: usize = env_or("CULINARIA_STREAM_RATE", 200);
    let swaps: usize = env_or("CULINARIA_STREAM_SWAPS", 8);
    let swap_batch: usize = env_or("CULINARIA_STREAM_SWAP_BATCH", 16);
    let mc: usize = env_or("CULINARIA_STREAM_MC", 300);
    let thread_list = env_list("CULINARIA_STREAM_THREADS", "1,2");
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_stream.json".to_string());

    let world = world_from_env();
    let all: Vec<StreamRecipe> = world
        .recipes
        .recipes()
        .map(|r| StreamRecipe {
            name: r.name.clone(),
            region: r.region,
            source: r.source,
            ids: r.ingredients().to_vec(),
        })
        .collect();
    assert!(
        all.len() > swaps * swap_batch + 32,
        "world too small for {swaps} swaps of {swap_batch}: {} recipes",
        all.len()
    );
    let stream = &all[..n_stream.min(all.len())];

    // ---- Part 1: incremental StreamState vs per-batch cold rebuilds.
    let mut inc_rows = Vec::new();
    let mut best_speedup = 0.0f64;
    for &bsize in &batch_sizes {
        let mut state = StreamState::new();
        let mut partial = RecipeStore::new();
        let mut inc_ns = 0u128;
        let mut batch_ns = 0u128;
        let mut update_us: Vec<u64> = Vec::new();
        let mut batches = 0usize;
        for chunk in stream.chunks(bsize) {
            // Store growth is shared by both paths; keep it untimed.
            for r in chunk {
                partial
                    .add_recipe(&r.name, r.region, r.source, r.ids.clone())
                    .expect("stream recipe stores");
            }
            let touched: BTreeSet<Region> = chunk.iter().map(|r| r.region).collect();
            let refs: Vec<(Region, &[IngredientId])> =
                chunk.iter().map(|r| (r.region, r.ids.as_slice())).collect();

            // Incremental path: one chunked ingest — each touched
            // region's overlap pool extends once per micro-batch.
            let t = Instant::now();
            state
                .ingest_batch(&world.flavor, &refs)
                .expect("stream chunk ingests");
            let dt = t.elapsed();
            inc_ns += dt.as_nanos();
            update_us.push(dt.as_micros() as u64);

            // Batch path: cold-recompute every touched region's state,
            // as the offline pipeline would after each micro-batch.
            let t = Instant::now();
            let global = partial.global_frequencies();
            std::hint::black_box(&global);
            for &region in &touched {
                let cuisine = partial.cuisine(region);
                let cold = OverlapCache::for_cuisine(&world.flavor, &cuisine);
                let cats = category_counts(&world.flavor, &cuisine);
                let mut stats = RunningStats::new();
                for r in cuisine.recipes() {
                    if r.size() >= 2 {
                        stats.push(recipe_pairing_score(&world.flavor, r.ingredients()));
                    }
                }
                std::hint::black_box((&cold, &cats, &stats));
            }
            batch_ns += t.elapsed().as_nanos();
            batches += 1;
        }
        assert_stream_parity(
            &world.flavor,
            &state,
            &partial,
            &format!("micro-batch {bsize}"),
        );
        let speedup = batch_ns as f64 / inc_ns.max(1) as f64;
        best_speedup = best_speedup.max(speedup);
        let (p50, p99) = quantiles_us(&update_us);
        eprintln!(
            "micro-batch {bsize}: {} recipes in {batches} batches, \
             incremental {:.1}ms vs batch {:.1}ms — speedup {speedup:.1}x, \
             update p50 {p50:.0}µs p99 {p99:.0}µs",
            stream.len(),
            inc_ns as f64 / 1e6,
            batch_ns as f64 / 1e6,
        );
        inc_rows.push(format!(
            "    {{ \"batch_size\": {bsize}, \"recipes\": {}, \"batches\": {batches}, \
             \"incremental_ms\": {:.3}, \"batch_ms\": {:.3}, \"speedup\": {speedup:.2}, \
             \"update_p50_us\": {p50:.1}, \"update_p99_us\": {p99:.1}, \"parity\": \"ok\" }}",
            stream.len(),
            inc_ns as f64 / 1e6,
            batch_ns as f64 / 1e6,
        ));
    }
    assert!(
        best_speedup > 1.0,
        "incremental maintenance must beat per-batch cold rebuilds \
         (best speedup {best_speedup:.2}x)"
    );

    // ---- Part 2: ingest_swap generations under a fixed-rate query mix.
    // Generation g serves the first base + g*swap_batch recipes; the
    // arena outlives every server so swaps can borrow freely.
    let base_n = all.len() - swaps * swap_batch;
    let arena: Vec<RecipeStore> = (0..=swaps)
        .map(|g| {
            let mut s = RecipeStore::new();
            for r in &all[..base_n + g * swap_batch] {
                s.add_recipe(&r.name, r.region, r.source, r.ids.clone())
                    .expect("arena recipe stores");
            }
            s
        })
        .collect();
    let flavor = FlavorViewRef::Owned(&world.flavor);

    let mut ranked: Vec<Region> = arena[0]
        .regions()
        .into_iter()
        .filter(|&r| arena[0].cuisine(r).ingredient_set().len() >= 8)
        .collect();
    ranked.sort_by_key(|&r| std::cmp::Reverse(arena[0].cuisine(r).n_recipes()));
    ranked.truncate(3);
    assert!(!ranked.is_empty(), "no populated region to query");
    let pair_args: Vec<String> = ranked
        .iter()
        .map(|&r| {
            arena[0].cuisine(r).ingredient_set()[..4]
                .iter()
                .map(|id| id.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    // A small cycling mix: repeats are what expose stale cache entries
    // to the generation check after each swap.
    let lines: Vec<String> = (0..queries)
        .map(|i| {
            let k = i % ranked.len();
            if i % 10 < 3 {
                format!("ZPROF {}", ranked[k].code())
            } else {
                format!("PAIR {} {}", ranked[k].code(), pair_args[k])
            }
        })
        .collect();

    let mut serve_rows = Vec::new();
    for &threads in &thread_list {
        let cfg = ServeConfig {
            threads,
            cache_entries: 1024,
            mc_recipes: mc,
            seed,
            ..ServeConfig::default()
        };
        let server = Server::new(
            flavor,
            RecipesViewRef::Owned(&arena[0]),
            cfg,
            Metrics::enabled(),
        );

        let sent_at: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
        let period = Duration::from_secs_f64(1.0 / rate as f64);
        let swap_every =
            Duration::from_secs_f64((queries as f64 / rate as f64) / (swaps as f64 + 1.0));
        let (server_side, client_side) = UnixStream::pair().expect("socketpair");
        let write_half = client_side.try_clone().expect("clone");
        let t0 = Instant::now();
        let (lat, ok_replies, swap_us) = std::thread::scope(|scope| {
            let reader = server_side.try_clone().expect("clone");
            let server = &server;
            let srv =
                scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
            let sent_at = &sent_at;
            let lines_ref = &lines;
            let writer = scope.spawn(move || {
                let mut w = write_half;
                let start = Instant::now();
                for (i, line) in lines_ref.iter().enumerate() {
                    let due = start + period * i as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let id = (1u64 << 40) + i as u64;
                    sent_at.lock().expect("lock").insert(id, Instant::now());
                    protocol::write_frame(&mut w, format!("{id} {line}").as_bytes()).expect("send");
                }
            });
            // The ingest side: install generations at an even spacing
            // while the reader below keeps draining replies.
            let arena_ref = &arena;
            let ingester = scope.spawn(move || {
                let mut swap_us = Vec::with_capacity(swaps);
                for (g, store) in arena_ref.iter().enumerate().skip(1) {
                    std::thread::sleep(swap_every);
                    let t = Instant::now();
                    let generation = server.ingest_swap(flavor, RecipesViewRef::Owned(store));
                    swap_us.push(t.elapsed().as_micros() as u64);
                    assert_eq!(generation, g as u64, "generations must be sequential");
                }
                swap_us
            });
            let mut client = Client::new(client_side);
            let mut lat = Vec::with_capacity(queries);
            let mut ok_replies = 0usize;
            for _ in 0..queries {
                let (rid, rest) = client.recv().expect("recv").expect("open");
                if rest.starts_with("OK ") {
                    ok_replies += 1;
                }
                if let Some(t) = sent_at.lock().expect("lock").remove(&rid) {
                    lat.push(t.elapsed().as_micros() as u64);
                }
            }
            writer.join().expect("writer thread");
            let swap_us = ingester.join().expect("ingester thread");
            drop(client);
            srv.join().expect("server thread");
            (lat, ok_replies, swap_us)
        });
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            ok_replies, queries,
            "every query must be answered OK while ingesting (threads {threads})"
        );
        assert_eq!(server.generation(), swaps as u64);
        let cs = server.cache_stats().expect("cache enabled");
        assert!(
            cs.invalidations > 0,
            "swaps over a repeating mix must invalidate stale entries (threads {threads})"
        );
        let (q50, q99) = quantiles_us(&lat);
        let (s50, s99) = quantiles_us(&swap_us);

        // Parity: the swapped server must answer exactly like a fresh
        // server over the final generation's store.
        let probes: Vec<String> = ranked
            .iter()
            .map(|r| format!("ZPROF {}", r.code()))
            .collect();
        let (swapped, _) = with_connection(&server, |client| {
            probes
                .iter()
                .enumerate()
                .map(|(i, p)| client.call(i as u64 + 1, p).expect("probe"))
                .collect::<Vec<String>>()
        });
        let fresh_server = Server::new(
            flavor,
            RecipesViewRef::Owned(&arena[swaps]),
            cfg,
            Metrics::enabled(),
        );
        let (fresh, _) = with_connection(&fresh_server, |client| {
            probes
                .iter()
                .enumerate()
                .map(|(i, p)| client.call(i as u64 + 1, p).expect("probe"))
                .collect::<Vec<String>>()
        });
        assert_eq!(
            swapped, fresh,
            "post-swap answers diverged from a cold server (threads {threads})"
        );

        eprintln!(
            "serving threads={threads}: {queries} queries at {rate}/s with {swaps} swaps in \
             {elapsed:.2}s — query p50 {q50:.0}µs p99 {q99:.0}µs, swap p50 {s50:.0}µs \
             p99 {s99:.0}µs, {} invalidations",
            cs.invalidations
        );
        serve_rows.push(format!(
            "    {{ \"threads\": {threads}, \"rate_rps\": {rate}, \"queries\": {queries}, \
             \"swaps\": {swaps}, \"swap_batch\": {swap_batch}, \"elapsed_s\": {elapsed:.3}, \
             \"query_p50_us\": {q50:.1}, \"query_p99_us\": {q99:.1}, \
             \"swap_p50_us\": {s50:.1}, \"swap_p99_us\": {s99:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_invalidations\": {}, \
             \"parity\": \"ok\" }}",
            cs.hits, cs.misses, cs.invalidations
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"seed\": {seed},\n  \
         \"stream_recipes\": {n},\n  \"mc_recipes\": {mc},\n  \
         \"parity\": \"incremental state bit-identical to cold rebuilds per config; \
         post-swap serve answers bit-identical to a cold server\",\n  \
         \"incremental\": [\n{inc}\n  ],\n  \"serving\": [\n{serve}\n  ]\n}}\n",
        n = stream.len(),
        inc = inc_rows.join(",\n"),
        serve = serve_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
