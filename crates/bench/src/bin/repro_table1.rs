//! Reproduces **Table 1**: recipes and unique ingredients per region,
//! plus the aggregate totals the paper quotes in the text.

use culinaria_bench::{section, world_from_env};
use culinaria_recipedb::Region;
use culinaria_tabular::{Column, Frame};

fn main() {
    let world = world_from_env();

    section("Table 1 — Statistics of recipes and ingredients across world cuisines");
    let mut names = Vec::new();
    let mut codes = Vec::new();
    let mut recipes = Vec::new();
    let mut ingredients = Vec::new();
    let mut paper_recipes = Vec::new();
    let mut paper_ingredients = Vec::new();
    for region in Region::ALL {
        let cuisine = world.recipes.cuisine(region);
        names.push(region.name());
        codes.push(region.code());
        recipes.push(cuisine.n_recipes() as i64);
        ingredients.push(cuisine.ingredient_set().len() as i64);
        paper_recipes.push(region.paper_recipe_count() as i64);
        paper_ingredients.push(region.paper_ingredient_count() as i64);
    }
    let frame = Frame::from_columns(vec![
        ("region", Column::from_strs(&names)),
        ("code", Column::from_strs(&codes)),
        ("recipes", Column::from_i64s(&recipes)),
        ("ingredients", Column::from_i64s(&ingredients)),
        ("paper_recipes", Column::from_i64s(&paper_recipes)),
        ("paper_ingredients", Column::from_i64s(&paper_ingredients)),
    ])
    .expect("static frame construction");
    println!("{frame}");

    section("Aggregate");
    let total: i64 = recipes.iter().sum();
    let distinct = world.recipes.n_distinct_ingredients();
    let mean_ing = ingredients.iter().sum::<i64>() as f64 / 22.0;
    println!("total recipes (22 regions): {total}");
    println!("paper total (22 regions):   45565 (45772 incl. 207 minor-region recipes)");
    println!("distinct ingredients used:  {distinct}");
    println!("mean unique ingredients per region: {mean_ing:.1} (paper: 321)");
    let min = Region::ALL
        .iter()
        .min_by_key(|r| world.recipes.n_region_recipes(**r))
        .expect("22 regions");
    let max = Region::ALL
        .iter()
        .max_by_key(|r| world.recipes.n_region_recipes(**r))
        .expect("22 regions");
    println!(
        "smallest cuisine: {} ({} recipes; paper: Korea, 301)",
        min.code(),
        world.recipes.n_region_recipes(*min)
    );
    println!(
        "largest cuisine:  {} ({} recipes; paper: USA, 16118)",
        max.code(),
        world.recipes.n_region_recipes(*max)
    );
}
