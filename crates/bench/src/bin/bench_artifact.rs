//! Benchmark for the zero-copy CFDB2/CRDB2 artifact format.
//!
//! Quantifies what the v2 artifacts buy over the v1 snapshot codecs:
//!
//! * **Open time** — `io::from_snapshot` materializes every string,
//!   profile, and column into owned heap structures; `artifact::open`
//!   validates the section table and hands out borrowed slices. The
//!   harness asserts the borrowed open is at least 20× faster on the
//!   full generated world.
//! * **First-query latency** — the observed mean pairing score of the
//!   largest cuisine, from a freshly opened view: once against an
//!   artifact carrying precomputed overlap-triangle sections (reused
//!   via `OverlapCache::from_parts`) and once against a bare artifact
//!   that must run the kernel build. Both answers are asserted
//!   bit-identical.
//! * **Resident bytes** — RSS delta of materializing the owned DBs vs
//!   the byte length of the buffers the borrowed views live on.
//! * **Parity** — `analyze_world` from the owned DBs vs
//!   `analyze_world_view` from the borrowed views, fingerprinted over
//!   every `f64::to_bits`, asserted identical at 1/2/4/8 threads.
//!
//! Writes `BENCH_artifact.json`. Knobs: `CULINARIA_SCALE`,
//! `CULINARIA_SEED`, `CULINARIA_ARTIFACT_MC` (Monte-Carlo recipes per
//! model for the parity runs, default 2000), `CULINARIA_BENCH_OUT`.

use std::hint::black_box;
use std::time::Instant;

use culinaria_bench::world_from_env;
use culinaria_core::{
    analyze_world, analyze_world_view, CuisineAnalysis, CuisineView, FlavorViewRef,
    MonteCarloConfig, NullModel, OverlapCache, RecipesViewRef,
};
use culinaria_flavordb::{artifact as flavor_artifact, AlignedBytes, FlavorArtifactBuilder};
use culinaria_obs::Metrics;
use culinaria_recipedb::{artifact as recipe_artifact, RecipeArtifactBuilder};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Timed repeats per path; the min is reported.
const TIME_REPS: usize = 5;

/// Min-of-`TIME_REPS` per-iteration wall time in milliseconds.
fn time_min_ms<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TIME_REPS {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

/// Heap bytes of the owned in-memory representation: every `String`
/// and `Vec` payload plus its 24-byte (ptr, len, cap) header, plus the
/// inline struct sizes. A content accounting, so it is what a fresh
/// parse-on-load must allocate regardless of allocator state.
fn owned_heap_bytes(
    db: &culinaria_flavordb::FlavorDb,
    store: &culinaria_recipedb::RecipeStore,
) -> usize {
    const HDR: usize = 24;
    let mut total = 0usize;
    for m in db.molecules() {
        total += std::mem::size_of::<culinaria_flavordb::Molecule>();
        total += HDR + m.name.len();
        total += HDR + m.descriptors.iter().map(|d| HDR + d.len()).sum::<usize>();
    }
    for i in db.ingredients() {
        total += std::mem::size_of::<culinaria_flavordb::Ingredient>();
        total += HDR + i.name.len();
        total += HDR + i.profile.len() * 4;
    }
    for (syn, _) in db.synonyms() {
        total += HDR + syn.len() + 4;
    }
    for r in store.recipes() {
        total += std::mem::size_of::<culinaria_recipedb::Recipe>();
        total += HDR + r.name.len();
        total += HDR + r.ingredients().len() * 4;
    }
    for region in store.regions() {
        total += HDR + store.region_recipe_ids(region).len() * 4;
    }
    total
}

/// Fold one u64 into an FNV-style fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0100_0000_01b3)
}

/// Bit-exact fingerprint of a world analysis: every float enters via
/// `to_bits`, so two runs agree iff they are bit-identical.
fn fingerprint(rows: &[CuisineAnalysis]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in rows {
        for b in row.region.code().bytes() {
            h = mix(h, u64::from(b));
        }
        h = mix(h, row.n_recipes as u64);
        h = mix(h, row.n_ingredients as u64);
        h = mix(h, row.observed_mean.to_bits());
        for c in &row.comparisons {
            h = mix(h, c.null.mean.to_bits());
            h = mix(h, c.null.std_dev.to_bits());
            h = mix(h, c.null.n);
            h = mix(h, c.z.map(f64::to_bits).unwrap_or(1));
        }
    }
    h
}

/// The first real query a consumer runs against a fresh view: the
/// observed mean pairing score of one cuisine. Reuses a serialized
/// overlap-triangle section when the artifact carries one for this
/// region, otherwise runs the kernel build.
fn first_query(flavor: FlavorViewRef<'_>, cuisine: &CuisineView<'_>) -> f64 {
    let pool = cuisine.ingredient_set();
    let cache = match flavor.overlap_section(cuisine.region().code()) {
        Some((sec_pool, tri)) if sec_pool == pool.as_slice() => {
            OverlapCache::from_parts(&pool, tri.to_vec()).expect("section triangle shape")
        }
        _ => OverlapCache::try_build_view_observed(flavor, &pool, 0, &Metrics::disabled())
            .expect("overlap build"),
    };
    cache
        .mean_cuisine_score_view(cuisine)
        .expect("observed mean")
}

fn main() {
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let mc_recipes: usize = env_or("CULINARIA_ARTIFACT_MC", 2_000);
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_artifact.json".to_string());

    let world = world_from_env();

    // ---- serialize both generations -------------------------------
    let flavor_snap = culinaria_flavordb::io::to_snapshot(&world.flavor).expect("v1 flavor");
    let recipe_snap = culinaria_recipedb::io::to_snapshot(&world.recipes).expect("v1 recipes");

    let mut builder = FlavorArtifactBuilder::new(&world.flavor);
    let mut n_sections = 0usize;
    for region in world.recipes.regions() {
        let cuisine = world.recipes.cuisine(region);
        let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);
        if cache.pool().is_empty() {
            continue;
        }
        builder
            .add_overlap(region.code(), cache.pool(), cache.tri())
            .expect("overlap section");
        n_sections += 1;
    }
    let flavor_art = AlignedBytes::from_vec(builder.build().expect("v2 flavor"));
    let flavor_art_bare = AlignedBytes::from_vec(
        FlavorArtifactBuilder::new(&world.flavor)
            .build()
            .expect("v2 bare"),
    );
    let recipe_art = AlignedBytes::from_vec(
        RecipeArtifactBuilder::new(&world.recipes)
            .build()
            .expect("v2 recipes"),
    );
    eprintln!(
        "serialized: v1 {} + {} B, v2 {} + {} B ({} overlap sections)",
        flavor_snap.len(),
        recipe_snap.len(),
        flavor_art.as_slice().len(),
        recipe_art.as_slice().len(),
        n_sections,
    );

    // ---- open time: parse-on-load vs validate-and-borrow ----------
    // Interleaved min-of-N; each sample opens BOTH databases so the
    // two paths do comparable logical work.
    let mut parse_ms = f64::INFINITY;
    let mut open_ms = f64::INFINITY;
    for _ in 0..TIME_REPS {
        parse_ms = parse_ms.min(time_min_ms(1, || {
            let db = culinaria_flavordb::io::from_snapshot(flavor_snap.clone()).expect("parse v1");
            let store =
                culinaria_recipedb::io::from_snapshot(recipe_snap.clone()).expect("parse v1");
            (db.n_ingredients(), store.n_recipes())
        }));
        open_ms = open_ms.min(time_min_ms(64, || {
            let db = flavor_artifact::open(flavor_art.as_slice()).expect("open v2");
            let store = recipe_artifact::open(recipe_art.as_slice()).expect("open v2");
            (db.n_ingredients(), store.n_recipes())
        }));
    }
    let open_speedup = parse_ms / open_ms;
    eprintln!("open: v1 parse {parse_ms:.3} ms, v2 borrow {open_ms:.4} ms -> {open_speedup:.0}x");
    assert!(
        open_speedup >= 20.0,
        "borrowed open must be >=20x faster than parse-on-load, got {open_speedup:.1}x"
    );

    // ---- first-query latency: section reuse vs kernel build -------
    let fview = flavor_artifact::open(flavor_art.as_slice()).expect("open v2");
    let fview_bare = flavor_artifact::open(flavor_art_bare.as_slice()).expect("open v2");
    let rview = recipe_artifact::open(recipe_art.as_slice()).expect("open v2");
    let largest = rview
        .regions()
        .into_iter()
        .max_by_key(|r| rview.n_region_recipes(*r))
        .expect("non-empty world");
    let cuisine = CuisineView::from(rview.cuisine(largest));
    let with_sections = first_query(FlavorViewRef::Artifact(&fview), &cuisine);
    let without_sections = first_query(FlavorViewRef::Artifact(&fview_bare), &cuisine);
    assert_eq!(
        with_sections.to_bits(),
        without_sections.to_bits(),
        "section-reused mean must be bit-identical to the kernel build"
    );
    let reuse_ms = time_min_ms(3, || first_query(FlavorViewRef::Artifact(&fview), &cuisine));
    let build_ms = time_min_ms(3, || {
        first_query(FlavorViewRef::Artifact(&fview_bare), &cuisine)
    });
    eprintln!(
        "first query ({}): section reuse {reuse_ms:.3} ms, kernel build {build_ms:.3} ms",
        largest.code()
    );

    // ---- resident bytes -------------------------------------------
    // Owned: what parse-on-load allocates on the heap (content
    // accounting). Borrowed: the artifact buffers ARE the resident
    // set; opening a view allocates nothing.
    let owned_resident = owned_heap_bytes(&world.flavor, &world.recipes);
    let borrowed_bytes = flavor_art.as_slice().len() + recipe_art.as_slice().len();
    let bare_bytes = flavor_art_bare.as_slice().len() + recipe_art.as_slice().len();
    eprintln!(
        "resident: owned heap {owned_resident} B, borrowed buffers {borrowed_bytes} B \
         ({bare_bytes} B without overlap sections)"
    );

    // ---- parity: owned vs borrowed world analysis, 1/2/4/8 threads
    let models = NullModel::ALL;
    let mut parity_rows = Vec::new();
    let mut prints = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            n_recipes: mc_recipes,
            seed,
            n_threads: threads,
        };
        let owned = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
        let viewed = analyze_world_view(
            FlavorViewRef::Artifact(&fview),
            RecipesViewRef::Artifact(&rview),
            &models,
            &cfg,
        );
        let fp_owned = fingerprint(&owned);
        let fp_view = fingerprint(&viewed);
        assert_eq!(
            fp_owned, fp_view,
            "owned vs borrowed analyze_world diverged at {threads} threads"
        );
        eprintln!("parity: {threads} threads, fingerprint {fp_owned:016x} (owned == borrowed)");
        prints.push(fp_owned);
        parity_rows.push(format!(
            "    {{ \"threads\": {threads}, \"fingerprint\": \"{fp_owned:016x}\", \
             \"owned_equals_borrowed\": true }}"
        ));
    }
    assert!(
        prints.windows(2).all(|w| w[0] == w[1]),
        "world analysis fingerprint must not depend on thread count"
    );

    let json = format!(
        "{{\n  \"bench\": \"artifact_open\",\n  \"seed\": {seed},\n  \
         \"time_reps\": {TIME_REPS},\n  \"mc_recipes\": {mc_recipes},\n  \
         \"v1_bytes\": {v1_bytes},\n  \"v2_bytes\": {borrowed_bytes},\n  \
         \"overlap_sections\": {n_sections},\n  \
         \"parse_open_ms\": {parse_ms:.4},\n  \"borrowed_open_ms\": {open_ms:.5},\n  \
         \"open_speedup\": {open_speedup:.1},\n  \
         \"first_query_section_reuse_ms\": {reuse_ms:.4},\n  \
         \"first_query_kernel_build_ms\": {build_ms:.4},\n  \
         \"first_query_parity\": \"bit-identical\",\n  \
         \"owned_resident_bytes\": {owned_resident},\n  \
         \"borrowed_resident_bytes\": {borrowed_bytes},\n  \
         \"borrowed_resident_bytes_no_sections\": {bare_bytes},\n  \
         \"world_parity\": [\n{rows}\n  ]\n}}\n",
        v1_bytes = flavor_snap.len() + recipe_snap.len(),
        rows = parity_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
