//! Performance harness for the higher-order (n-tuple) analysis kernel.
//!
//! Times the bitset k-way intersection kernel (`ntuple::KTupleKernel` +
//! prefix-mask `IntersectScratch`, pooled blocked ensembles) against the
//! frozen pre-kernel walker (`ntuple::reference`: per-subset profile
//! materialization + allocating k-way set intersections, serial loops)
//! on k = 3 and k = 4, over every region of the generated world:
//!
//! * **observed sweep** — mean N_s^(k) of every cuisine;
//! * **Monte-Carlo ensembles** — the Random-model null per cuisine,
//!   both paths consuming identical block-seeded PRNG streams.
//!
//! Parity is asserted to the bit on every score and every ensemble,
//! and the pooled ensembles are re-run — and now *timed* — on 1, 2, 4
//! and 8 threads, producing a `scaling` curve with a parity flag at
//! every point. The summary lands in `BENCH_ntuple.json`.
//!
//! Knobs: `CULINARIA_SCALE` (default 0.1), `CULINARIA_NTUPLE_MC`
//! (default 10000), `CULINARIA_SEED` (default 2018),
//! `CULINARIA_THREADS` (default 0 = available parallelism),
//! `CULINARIA_BENCH_OUT` (default `BENCH_ntuple.json`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use culinaria_core::monte_carlo::MonteCarloConfig;
use culinaria_core::ntuple::{
    self, ktuple_null_ensemble, mean_cuisine_ktuple_score_with_threads, KTupleScorer,
};
use culinaria_core::null_models::{CuisineSampler, NullModel};
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_recipedb::Region;
use culinaria_stats::pool;
use culinaria_stats::rng::{derive_seed, derive_seed_labeled};
use culinaria_stats::{NullEnsemble, RunningStats};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The pre-kernel Monte-Carlo loop: serial blocks, allocating
/// `generate` per sample, frozen walker per score — on the **same**
/// `(k, model, block)` seed lattice as the pooled kernel ensembles, so
/// both paths draw identical streams.
fn baseline_ktuple_ensemble(
    scorer: &ntuple::reference::KTupleScorer<'_>,
    sampler: &CuisineSampler,
    model: NullModel,
    k: usize,
    n_recipes: usize,
    seed: u64,
) -> Option<NullEnsemble> {
    const BLOCK: usize = 2048;
    let n_blocks = n_recipes.div_ceil(BLOCK);
    let mut total = RunningStats::new();
    for b in 0..n_blocks {
        let lo = b * BLOCK;
        let hi = ((b + 1) * BLOCK).min(n_recipes);
        let stream = (k as u64) << 48 | (model.index() as u64) << 32 | b as u64;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, stream));
        let mut stats = RunningStats::new();
        for _ in lo..hi {
            let recipe = sampler.generate(model, &mut rng);
            stats.push(scorer.score_local(&recipe));
        }
        total.merge(&stats);
    }
    NullEnsemble::from_running(&total)
}

/// Timings of one order k, both paths.
struct KReport {
    k: usize,
    baseline_observed_ms: f64,
    optimized_observed_ms: f64,
    baseline_mc_ms: f64,
    optimized_mc_ms: f64,
}

impl KReport {
    fn baseline_wall_ms(&self) -> f64 {
        self.baseline_observed_ms + self.baseline_mc_ms
    }
    fn optimized_wall_ms(&self) -> f64 {
        self.optimized_observed_ms + self.optimized_mc_ms
    }
    fn speedup(&self) -> f64 {
        self.baseline_wall_ms() / self.optimized_wall_ms()
    }
}

fn main() {
    let scale: f64 = env_or("CULINARIA_SCALE", 0.1);
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let n_threads: usize = env_or("CULINARIA_THREADS", 0);
    let n_mc: usize = env_or("CULINARIA_NTUPLE_MC", 10_000);
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_ntuple.json".to_string());
    let mut world_cfg = WorldConfig::paper();
    world_cfg.recipe_scale = scale;
    world_cfg.seed = seed;

    eprintln!("generating world: scale {scale}, seed {seed}");
    let world = generate_world(&world_cfg);
    eprintln!("world ready: {} recipes", world.recipes.n_recipes());

    // Regions with a usable sampler, and their salted run seeds.
    let regions: Vec<(Region, CuisineSampler, u64)> = world
        .recipes
        .regions()
        .into_iter()
        .filter_map(|region| {
            let sampler = CuisineSampler::build(&world.flavor, &world.recipes.cuisine(region))?;
            Some((region, sampler, derive_seed_labeled(seed, region.code())))
        })
        .collect();
    let n_regions = regions.len();

    let mut reports = Vec::new();
    let mut references: Vec<(usize, Vec<Option<NullEnsemble>>)> = Vec::new();
    for k in [3usize, 4] {
        // Observed sweep: frozen walker.
        let t = Instant::now();
        let baseline_obs: Vec<f64> = regions
            .iter()
            .map(|(region, _, _)| {
                ntuple::reference::mean_cuisine_ktuple_score(
                    &world.flavor,
                    &world.recipes.cuisine(*region),
                    k,
                )
            })
            .collect();
        let baseline_observed_ms = t.elapsed().as_secs_f64() * 1e3;

        // Observed sweep: bitset kernel on the pool.
        let t = Instant::now();
        let optimized_obs: Vec<f64> = regions
            .iter()
            .map(|(region, _, _)| {
                mean_cuisine_ktuple_score_with_threads(
                    &world.flavor,
                    &world.recipes.cuisine(*region),
                    k,
                    n_threads,
                )
            })
            .collect();
        let optimized_observed_ms = t.elapsed().as_secs_f64() * 1e3;
        for ((region, _, _), (a, b)) in regions.iter().zip(baseline_obs.iter().zip(&optimized_obs))
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} k={k}: observed N_s diverges",
                region.code()
            );
        }

        // Monte-Carlo: frozen walker, serial blocks.
        eprintln!("k={k}: baseline Monte-Carlo, {n_mc} recipes x {n_regions} regions");
        let t = Instant::now();
        let baseline_mc: Vec<Option<NullEnsemble>> = regions
            .iter()
            .map(|(region, sampler, rseed)| {
                let scorer = ntuple::reference::KTupleScorer::for_cuisine(
                    &world.flavor,
                    &world.recipes.cuisine(*region),
                    k,
                );
                baseline_ktuple_ensemble(&scorer, sampler, NullModel::Random, k, n_mc, *rseed)
            })
            .collect();
        let baseline_mc_ms = t.elapsed().as_secs_f64() * 1e3;

        // Monte-Carlo: pooled kernel ensembles.
        eprintln!(
            "k={k}: kernel Monte-Carlo on {} threads",
            pool::effective_threads(n_threads)
        );
        let t = Instant::now();
        let optimized_mc: Vec<Option<NullEnsemble>> = regions
            .iter()
            .map(|(region, sampler, rseed)| {
                let scorer =
                    KTupleScorer::for_cuisine(&world.flavor, &world.recipes.cuisine(*region), k);
                let cfg = MonteCarloConfig {
                    n_recipes: n_mc,
                    seed: *rseed,
                    n_threads,
                };
                ktuple_null_ensemble(&scorer, sampler, NullModel::Random, &cfg)
            })
            .collect();
        let optimized_mc_ms = t.elapsed().as_secs_f64() * 1e3;

        // Ensemble parity: identical streams → identical bits.
        for ((region, _, _), (a, b)) in regions.iter().zip(baseline_mc.iter().zip(&optimized_mc)) {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.mean.to_bits(),
                        b.mean.to_bits(),
                        "{} k={k}: null means diverge",
                        region.code()
                    );
                    assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }

        let report = KReport {
            k,
            baseline_observed_ms,
            optimized_observed_ms,
            baseline_mc_ms,
            optimized_mc_ms,
        };
        eprintln!(
            "k={k}: baseline {:.0} ms (observed {:.0} + mc {:.0}) vs kernel {:.0} ms -> {:.2}x",
            report.baseline_wall_ms(),
            baseline_observed_ms,
            baseline_mc_ms,
            report.optimized_wall_ms(),
            report.speedup()
        );
        reports.push(report);
        references.push((k, optimized_mc));
    }

    // Thread-scaling sweep: the pooled kernel ensembles for both
    // orders at 1/2/4/8 workers. The old harness merely *re-ran* the
    // determinism check; this times every point and still asserts
    // bit-parity against the reference ensembles.
    let mut scaling = Vec::new();
    let mut wall_at_1 = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        for (k, reference) in &references {
            for ((region, sampler, rseed), refe) in regions.iter().zip(reference) {
                let scorer =
                    KTupleScorer::for_cuisine(&world.flavor, &world.recipes.cuisine(*region), *k);
                let cfg = MonteCarloConfig {
                    n_recipes: n_mc,
                    seed: *rseed,
                    n_threads: threads,
                };
                let e = ktuple_null_ensemble(&scorer, sampler, NullModel::Random, &cfg);
                match (refe, &e) {
                    (Some(a), Some(b)) => {
                        assert_eq!(
                            a.mean.to_bits(),
                            b.mean.to_bits(),
                            "{} k={k}: ensemble differs on {threads} threads",
                            region.code()
                        );
                        assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
                    }
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            wall_at_1 = wall_ms;
        }
        eprintln!(
            "scaling: {threads} threads -> {wall_ms:.0} ms ({:.2}x vs 1 thread)",
            wall_at_1 / wall_ms
        );
        scaling.push(format!(
            "    {{ \"threads\": {threads}, \"wall_ms\": {wall_ms:.3}, \
             \"speedup_vs_1\": {sp:.3}, \"parity\": \"bit-identical\" }}",
            sp = wall_at_1 / wall_ms,
        ));
    }

    let per_k: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "  \"k{k}\": {{\n    \"baseline_observed_ms\": {bo:.3},\n    \
                 \"optimized_observed_ms\": {oo:.3},\n    \"baseline_mc_ms\": {bm:.3},\n    \
                 \"optimized_mc_ms\": {om:.3},\n    \"baseline_wall_ms\": {bw:.3},\n    \
                 \"optimized_wall_ms\": {ow:.3},\n    \"speedup\": {s:.3}\n  }}",
                k = r.k,
                bo = r.baseline_observed_ms,
                oo = r.optimized_observed_ms,
                bm = r.baseline_mc_ms,
                om = r.optimized_mc_ms,
                bw = r.baseline_wall_ms(),
                ow = r.optimized_wall_ms(),
                s = r.speedup(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ntuple_kway_kernel\",\n  \"n_regions\": {n_regions},\n  \
         \"n_recipes_per_ensemble\": {n_mc},\n  \"recipe_scale\": {scale},\n  \
         \"seed\": {seed},\n  \"n_threads_requested\": {n_threads},\n  \
         \"n_threads_effective\": {eff},\n  \"available_cores\": {cores},\n\
         {per_k},\n  \"scaling\": [\n{scaling}\n  ],\n  \
         \"thread_counts_checked\": [1, 2, 4, 8],\n  \
         \"parity\": \"bit-identical\"\n}}\n",
        eff = pool::effective_threads(n_threads),
        cores = std::thread::available_parallelism().map_or(1, |n| n.get()),
        per_k = per_k.join(",\n"),
        scaling = scaling.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
