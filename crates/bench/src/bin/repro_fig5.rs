//! Reproduces **Fig 5**: the top-3 ingredients contributing to (a) the
//! positive food pairing of uniform-blend cuisines and (b) the negative
//! food pairing of contrasting-blend cuisines, measured as the
//! percentage change in the cuisine's pairing score on removal.

use culinaria_bench::{section, world_from_env};
use culinaria_core::contribution::top_contributors;
use culinaria_recipedb::Region;

fn main() {
    let world = world_from_env();

    section("Fig 5(a) — Top 3 ingredients contributing to POSITIVE food pairing");
    for region in Region::ALL.iter().filter(|r| r.paper_positive_pairing()) {
        let cuisine = world.recipes.cuisine(*region);
        let top = top_contributors(&world.flavor, &cuisine, 3, true);
        let rendered: Vec<String> = top
            .iter()
            .map(|c| format!("{} ({:+.2}%)", c.name, c.percent_change))
            .collect();
        println!("{:4}  {}", region.code(), rendered.join(", "));
    }

    section("Fig 5(b) — Top 3 ingredients contributing to NEGATIVE food pairing");
    for region in Region::ALL.iter().filter(|r| !r.paper_positive_pairing()) {
        let cuisine = world.recipes.cuisine(*region);
        let top = top_contributors(&world.flavor, &cuisine, 3, false);
        let rendered: Vec<String> = top
            .iter()
            .map(|c| format!("{} ({:+.2}%)", c.name, c.percent_change))
            .collect();
        println!("{:4}  {}", region.code(), rendered.join(", "));
    }

    section("Note");
    println!(
        "Ingredient names are synthetic (syn-<rank>-<category>); the paper's real names\n\
         require the proprietary CulinaryDB corpus. The *structure* matches Fig 5: each\n\
         cuisine has a small set of high-frequency ingredients whose removal shifts the\n\
         pairing score by several percent."
    );
}
