//! Supplementary analysis: the Ahn-style flavor network underlying the
//! pairing analysis — per-cuisine network statistics, hubs, and
//! backbone structure.

use culinaria_bench::{metrics_from_env, section, world_from_env};
use culinaria_core::network::FlavorNetwork;
use culinaria_recipedb::Region;

fn main() {
    let world = world_from_env();
    let sink = metrics_from_env();

    section("Flavor-network statistics per cuisine");
    println!(
        "{:4}  {:>6} {:>8} {:>9} {:>11} {:>10}",
        "reg", "nodes", "edges", "density", "clustering", "backbone5"
    );
    for region in Region::ALL {
        let cuisine = world.recipes.cuisine(region);
        let net = FlavorNetwork::build_observed(
            &world.flavor,
            &cuisine.ingredient_set(),
            0,
            &sink.metrics,
        );
        let bb = net.backbone(5);
        println!(
            "{:4}  {:>6} {:>8} {:>9.3} {:>11.3} {:>10}",
            region.code(),
            net.n_nodes(),
            net.n_edges(),
            net.density(),
            net.clustering_coefficient(),
            bb.n_edges()
        );
    }

    section("Global network (full ingredient universe)");
    let pool: Vec<_> = world.flavor.ingredient_ids().collect();
    let net = FlavorNetwork::build_observed(&world.flavor, &pool, 0, &sink.metrics);
    println!(
        "nodes {}, edges {}, density {:.3}, clustering {:.3}",
        net.n_nodes(),
        net.n_edges(),
        net.density(),
        net.clustering_coefficient()
    );
    println!("\nflavor hubs (highest total shared-compound strength):");
    for (id, strength) in net.hubs(10) {
        let name = &world.flavor.ingredient(id).expect("live id").name;
        println!("  {name:28} strength {strength}");
    }
    println!("\nheaviest flavor edges:");
    for e in net.top_edges(10) {
        let a = &world.flavor.ingredient(e.a).expect("live id").name;
        let b = &world.flavor.ingredient(e.b).expect("live id").name;
        println!("  {a} — {b}  ({} shared compounds)", e.weight);
    }
    sink.dump();
}
