//! Performance harness for the ingredient-aliasing hot path.
//!
//! Times the interned-token trie resolver (`culinaria_text::alias`)
//! against the frozen string-join matcher (`culinaria_text::legacy`) on
//! a synthetic ingredient-line corpus built from the curated flavor
//! database, and the parallel batch importer against the serial one.
//! Writes a machine-readable summary to `BENCH_alias.json`.
//!
//! Every corpus line is resolved by both engines in an untimed sweep
//! and the `Resolution`s asserted byte-identical, and the batch
//! importer is asserted bit-identical to the serial importer at 1, 2,
//! and 8 threads — the speedup carries no behavior drift by
//! construction. Import timings take the min of interleaved repeats,
//! since on a 1-core box the adaptive importer and the serial path
//! run identical code and a single-shot ratio is timer noise.
//!
//! Knobs: `CULINARIA_ALIAS_LINES` (default 200000), `CULINARIA_SEED`
//! (default 2018), `CULINARIA_THREADS` (default 0 = available
//! parallelism), `CULINARIA_BENCH_OUT` (default `BENCH_alias.json`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use culinaria_flavordb::curated::curated_db;
use culinaria_flavordb::FlavorDb;
use culinaria_recipedb::import::{Importer, RawRecipe};
use culinaria_recipedb::{RecipeStore, Region, Source};
use culinaria_stats::pool;
use culinaria_text::alias::{AliasResolver, ResolveScratch};
use culinaria_text::legacy::LegacyAliasResolver;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Naive pluralizer for corpus synthesis (the resolver's singularizer
/// must undo these, which is part of what's being exercised).
fn pluralize(name: &str) -> String {
    if name.ends_with('o') || name.ends_with("ch") || name.ends_with('x') {
        format!("{name}es")
    } else if name.ends_with('s') {
        name.to_owned()
    } else {
        format!("{name}s")
    }
}

/// Swap two adjacent characters at a random interior position — the
/// classic transposition typo the fuzzy pass must catch.
fn transpose(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return name.to_owned();
    }
    let i = rng.random_range(1..chars.len() - 2);
    let mut out = chars.clone();
    out.swap(i, i + 1);
    out.into_iter().collect()
}

/// A pseudo-word of lowercase letters (unknown-token noise).
fn junk_word(rng: &mut StdRng) -> String {
    let len = rng.random_range(4..11usize);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

const TEMPLATES: &[(&str, &str)] = &[
    ("2 cups ", ", chopped"),
    ("1 tbsp ", ""),
    ("3 ripe ", ", peeled and diced"),
    ("250g ", ", whisked until smooth"),
    ("a generous pinch of ", " to taste"),
    ("1 (15 ounce) can ", ", drained and rinsed"),
    ("freshly ground ", ""),
    ("", " for garnish"),
];

/// Build a pool of distinct synthetic ingredient lines over the
/// database's names and synonyms: plain, pluralized, transposed
/// (fuzzy-matchable), and junk-laced variants.
fn build_line_pool(db: &FlavorDb, rng: &mut StdRng) -> Vec<String> {
    let mut terms: Vec<String> = db.ingredients().map(|i| i.name.clone()).collect();
    terms.extend(db.synonyms().map(|(s, _)| s.to_owned()));
    let mut pool = Vec::new();
    for term in &terms {
        for (k, (prefix, suffix)) in TEMPLATES.iter().enumerate() {
            let surface = match k % 4 {
                0 => pluralize(term),
                1 => transpose(term, rng),
                2 => format!("{term} and {}", junk_word(rng)),
                _ => term.clone(),
            };
            pool.push(format!("{prefix}{surface}{suffix}"));
        }
    }
    // Pure-noise lines: nothing resolves, everything lands in the
    // unresolved list.
    for _ in 0..terms.len() {
        pool.push(format!("2 cups {} {}", junk_word(rng), junk_word(rng)));
    }
    pool
}

/// Zipf-ish corpus: quadratically skewed draws from the pool, so a few
/// lines repeat very often (real scraped corpora are duplicate-heavy —
/// this is what the memo cache exploits).
fn sample_corpus(pool: &[String], n_lines: usize, rng: &mut StdRng) -> Vec<String> {
    (0..n_lines)
        .map(|_| {
            let u: f64 = rng.random();
            let idx = ((u * u) * pool.len() as f64) as usize;
            pool[idx.min(pool.len() - 1)].clone()
        })
        .collect()
}

/// Group corpus lines into raw recipes of ~6 lines for import timing.
fn corpus_recipes(corpus: &[String]) -> Vec<RawRecipe> {
    corpus
        .chunks(6)
        .enumerate()
        .map(|(i, lines)| RawRecipe {
            name: format!("synthetic {i}"),
            region: Region::from_index(i % 22).expect("index < 22"),
            source: Source::from_index(i % 5).expect("index < 5"),
            ingredient_lines: lines.to_vec(),
        })
        .collect()
}

fn main() {
    let n_lines: usize = env_or("CULINARIA_ALIAS_LINES", 200_000);
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let n_threads: usize = env_or("CULINARIA_THREADS", 0);
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_alias.json".to_string());

    let db = curated_db();
    let mut rng = StdRng::seed_from_u64(seed);
    let pool_lines = build_line_pool(&db, &mut rng);
    let corpus = sample_corpus(&pool_lines, n_lines, &mut rng);
    eprintln!(
        "corpus: {} lines over {} distinct ({} lexicon entries)",
        corpus.len(),
        pool_lines.len(),
        db.n_ingredients()
    );

    // Both engines primed with the identical lexicon sequence.
    let mut trie = AliasResolver::new();
    let mut legacy = LegacyAliasResolver::new();
    for ing in db.ingredients() {
        trie.add_canonical(&ing.name);
        legacy.add_canonical(&ing.name);
    }
    for (syn, id) in db.synonyms() {
        if let Ok(target) = db.ingredient(id) {
            trie.add_synonym(syn, &target.name);
            legacy.add_synonym(syn, &target.name);
        }
    }

    // Untimed parity sweep: every corpus line, byte-identical output.
    eprintln!("parity sweep: trie vs legacy on full corpus");
    let mut scratch = ResolveScratch::new();
    for line in &corpus {
        let expected = legacy.resolve(line);
        let got_plain = trie.resolve(line);
        assert_eq!(
            got_plain, expected,
            "trie resolve diverged from legacy on {line:?}"
        );
        let got_memo = trie.resolve_with(line, &mut scratch);
        assert_eq!(
            got_memo, expected,
            "memoized resolve diverged from legacy on {line:?}"
        );
    }

    // Timed: legacy string-join matcher, single thread.
    let t = Instant::now();
    let mut legacy_matches = 0usize;
    for line in &corpus {
        legacy_matches += legacy.resolve(line).matches.len();
    }
    let legacy_ms = t.elapsed().as_secs_f64() * 1e3;

    // Timed: trie resolver, scratch reuse, memo disabled.
    let t = Instant::now();
    let mut scratch = ResolveScratch::with_memo_capacity(0);
    let mut trie_matches = 0usize;
    for line in &corpus {
        trie_matches += trie.resolve_with(line, &mut scratch).matches.len();
    }
    let trie_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(legacy_matches, trie_matches, "match counts diverged");

    // Timed: trie resolver with the memo cache (duplicate-heavy corpus).
    let t = Instant::now();
    let mut scratch = ResolveScratch::new();
    let mut memo_matches = 0usize;
    for line in &corpus {
        memo_matches += trie.resolve_with(line, &mut scratch).matches.len();
    }
    let memo_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        legacy_matches, memo_matches,
        "memoized match counts diverged"
    );

    let speedup_trie = legacy_ms / trie_ms;
    let speedup_memo = legacy_ms / memo_ms;
    eprintln!(
        "resolve: legacy {legacy_ms:.0} ms, trie {trie_ms:.0} ms ({speedup_trie:.2}x), \
         trie+memo {memo_ms:.0} ms ({speedup_memo:.2}x)"
    );

    // Batch import: serial vs adaptive fan-out. On a 1-core box the
    // adaptive importer resolves to the same inline path as `import`,
    // so a single-shot ratio is pure timer noise (the old harness
    // recorded a phantom 0.78x exactly that way) — take the min of
    // interleaved repeats for both sides instead.
    const IMPORT_REPS: usize = 9;
    let raws = corpus_recipes(&corpus);
    let importer = Importer::from_flavor_db(&db);
    // Each timed run builds and then drops its store: a store kept
    // alive across reps grows the heap under every later run and
    // skews the comparison (~2x on this corpus).
    let mut import_serial_ms = f64::INFINITY;
    let mut import_batch_ms = f64::INFINITY;
    let mut timed_serial_stats = None;
    let mut timed_batch_stats = None;
    for rep in 0..IMPORT_REPS {
        let t = Instant::now();
        let mut store = RecipeStore::new();
        let stats = importer
            .import(&db, &mut store, &raws)
            .expect("serial import");
        let serial_rep = t.elapsed().as_secs_f64() * 1e3;
        import_serial_ms = import_serial_ms.min(serial_rep);
        timed_serial_stats.get_or_insert(stats);
        drop(store);

        let t = Instant::now();
        let mut store = RecipeStore::new();
        let stats = importer
            .import_batch(&db, &mut store, &raws, n_threads)
            .expect("batch import");
        let batch_rep = t.elapsed().as_secs_f64() * 1e3;
        import_batch_ms = import_batch_ms.min(batch_rep);
        timed_batch_stats.get_or_insert(stats);
        drop(store);
        eprintln!("import rep {rep}: serial {serial_rep:.1} ms, batch {batch_rep:.1} ms");
    }
    let import_speedup = import_serial_ms / import_batch_ms;

    // Untimed reference runs for the cross-thread parity sweep below.
    let mut serial_store = RecipeStore::new();
    let serial_stats = importer
        .import(&db, &mut serial_store, &raws)
        .expect("serial import");
    let mut batch_store = RecipeStore::new();
    let batch_stats = importer
        .import_batch(&db, &mut batch_store, &raws, n_threads)
        .expect("batch import");
    assert_eq!(timed_serial_stats.as_ref(), Some(&serial_stats));
    assert_eq!(timed_batch_stats.as_ref(), Some(&batch_stats));
    assert_eq!(batch_stats, serial_stats, "batch import stats diverged");

    for threads in [1usize, 2, 8] {
        let mut store = RecipeStore::new();
        let stats = importer
            .import_batch(&db, &mut store, &raws, threads)
            .expect("batch import");
        assert_eq!(
            stats, serial_stats,
            "import stats diverged at {threads} threads"
        );
        assert_eq!(store.n_recipes(), serial_store.n_recipes());
        for (a, b) in store.recipes().zip(serial_store.recipes()) {
            assert_eq!(a, b, "imported recipe diverged at {threads} threads");
        }
    }
    eprintln!(
        "import: serial {import_serial_ms:.0} ms vs batch({} threads) {import_batch_ms:.0} ms \
         -> {import_speedup:.2}x; {} recipes stored",
        pool::effective_threads(n_threads),
        batch_store.n_recipes()
    );

    let lines_per_s = |ms: f64| corpus.len() as f64 / (ms / 1e3);
    let json = format!(
        "{{\n  \"bench\": \"alias_resolution\",\n  \"n_lines\": {n_lines},\n  \
         \"n_distinct_lines\": {n_distinct},\n  \"n_lexicon\": {n_lexicon},\n  \
         \"n_synonyms\": {n_synonyms},\n  \"seed\": {seed},\n  \
         \"n_threads_requested\": {n_threads},\n  \"n_threads_effective\": {eff},\n  \
         \"available_cores\": {cores},\n  \
         \"legacy_resolve_ms\": {legacy_ms:.3},\n  \
         \"trie_resolve_ms\": {trie_ms:.3},\n  \
         \"trie_memo_resolve_ms\": {memo_ms:.3},\n  \
         \"legacy_lines_per_s\": {legacy_tp:.0},\n  \
         \"trie_lines_per_s\": {trie_tp:.0},\n  \
         \"trie_memo_lines_per_s\": {memo_tp:.0},\n  \
         \"speedup_trie\": {speedup_trie:.3},\n  \
         \"speedup_trie_memo\": {speedup_memo:.3},\n  \
         \"import_serial_ms\": {import_serial_ms:.3},\n  \
         \"import_batch_ms\": {import_batch_ms:.3},\n  \
         \"import_speedup\": {import_speedup:.3},\n  \
         \"import_mode\": \"{import_mode}\",\n  \
         \"import_reps\": {IMPORT_REPS},\n  \
         \"parity\": \"byte-identical\"\n}}\n",
        import_mode = batch_stats.mode,
        n_distinct = pool_lines.len(),
        n_lexicon = trie.n_canonical(),
        n_synonyms = trie.n_synonyms(),
        eff = pool::effective_threads(n_threads),
        cores = std::thread::available_parallelism().map_or(1, |n| n.get()),
        legacy_tp = lines_per_s(legacy_ms),
        trie_tp = lines_per_s(trie_ms),
        memo_tp = lines_per_s(memo_ms),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
