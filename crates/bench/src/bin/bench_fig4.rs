//! Performance harness for the Fig 4 world analysis.
//!
//! Times the optimized pipeline (`analyze_world`: bitset overlap
//! builds, shared worker pool over the flattened `(region, model,
//! block)` queue, allocation-free sampling) against a faithful
//! reconstruction of the pre-optimization path (serial per-region
//! sorted-merge overlap sweep + per-recipe allocating `generate`), and
//! writes a machine-readable summary to `BENCH_fig4.json`.
//!
//! Both paths consume identical PRNG streams, so the harness also
//! asserts the two produce **bit-identical** null ensembles — the
//! speedup is free of numerical drift by construction. A final sweep
//! re-times the optimized pipeline at 1/2/4/8 workers (`scaling` in
//! the JSON), asserting bit-parity at every point.
//!
//! Knobs: `CULINARIA_SCALE` (default 0.1), `CULINARIA_MC` (default
//! 20000), `CULINARIA_SEED` (default 2018), `CULINARIA_THREADS`
//! (default 0 = available parallelism), `CULINARIA_BENCH_OUT`
//! (default `BENCH_fig4.json`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use culinaria_core::monte_carlo::MonteCarloConfig;
use culinaria_core::null_models::{CuisineSampler, NullModel};
use culinaria_core::pairing::OverlapCache;
use culinaria_core::z_analysis::analyze_world;
use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_flavordb::FlavorDb;
use culinaria_recipedb::{Cuisine, RecipeStore};
use culinaria_stats::pool;
use culinaria_stats::rng::{derive_seed, derive_seed_labeled};
use culinaria_stats::{NullEnsemble, RunningStats};

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-region state shared by both timed paths, prepared up front so
/// neither path is charged for the other's scaffolding.
struct Prepared<'a> {
    cuisine: Cuisine<'a>,
    sampler: CuisineSampler,
    cache: OverlapCache,
    seed: u64,
}

fn prepare<'a>(db: &FlavorDb, store: &'a RecipeStore, master_seed: u64) -> Vec<Prepared<'a>> {
    store
        .regions()
        .into_iter()
        .filter_map(|region| {
            let cuisine = store.cuisine(region);
            let sampler = CuisineSampler::build(db, &cuisine)?;
            let cache = OverlapCache::for_cuisine(db, &cuisine);
            Some(Prepared {
                cuisine,
                sampler,
                cache,
                seed: derive_seed_labeled(master_seed, region.code()),
            })
        })
        .collect()
}

/// The seed's overlap-table construction: a serial O(n²) sweep of
/// sorted-merge profile intersections. Returns a checksum so the work
/// cannot be optimized away.
fn sorted_merge_sweep(db: &FlavorDb, cuisine: &Cuisine<'_>) -> u64 {
    let pool_ids = cuisine.ingredient_set();
    let profiles: Vec<_> = pool_ids
        .iter()
        .map(|&id| &db.ingredient(id).expect("live ingredient").profile)
        .collect();
    let mut checksum = 0u64;
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            checksum += profiles[i].shared_count(profiles[j]) as u64;
        }
    }
    checksum
}

/// The seed's Monte-Carlo inner loop: serial over `(model, block)`,
/// one freshly allocated recipe per sample, same block-seeded streams
/// as the optimized pipeline.
fn baseline_monte_carlo(
    prepared: &[Prepared<'_>],
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Vec<Vec<NullEnsemble>> {
    const BLOCK: usize = 2048;
    let n_blocks = cfg.n_recipes.div_ceil(BLOCK);
    prepared
        .iter()
        .map(|p| {
            models
                .iter()
                .map(|&model| {
                    let mut total = RunningStats::new();
                    for b in 0..n_blocks {
                        let lo = b * BLOCK;
                        let hi = ((b + 1) * BLOCK).min(cfg.n_recipes);
                        let stream = (model.index() as u64) << 32 | b as u64;
                        let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, stream));
                        let mut stats = RunningStats::new();
                        for _ in lo..hi {
                            let recipe = p.sampler.generate(model, &mut rng);
                            stats.push(p.cache.score_local(&recipe));
                        }
                        total.merge(&stats);
                    }
                    NullEnsemble::from_running(&total).expect("non-degenerate ensemble")
                })
                .collect()
        })
        .collect()
}

fn main() {
    let scale: f64 = env_or("CULINARIA_SCALE", 0.1);
    let seed: u64 = env_or("CULINARIA_SEED", 2018);
    let n_threads: usize = env_or("CULINARIA_THREADS", 0);
    let out_path: String = env_or("CULINARIA_BENCH_OUT", "BENCH_fig4.json".to_string());
    let mut world_cfg = WorldConfig::paper();
    world_cfg.recipe_scale = scale;
    world_cfg.seed = seed;
    let cfg = MonteCarloConfig {
        n_recipes: env_or("CULINARIA_MC", 20_000),
        seed,
        n_threads,
    };
    let models = NullModel::ALL;

    eprintln!("generating world: scale {scale}, seed {seed}");
    let world = generate_world(&world_cfg);
    eprintln!("world ready: {} recipes", world.recipes.n_recipes());

    let prepared = prepare(&world.flavor, &world.recipes, cfg.seed);
    let n_regions = prepared.len();

    // Baseline build: the seed's serial sorted-merge sweep, per region.
    let t = Instant::now();
    let mut sweep_checksum = 0u64;
    for p in &prepared {
        sweep_checksum += sorted_merge_sweep(&world.flavor, &p.cuisine);
    }
    let baseline_build_ms = t.elapsed().as_secs_f64() * 1e3;

    // Optimized build: bitset pack + pooled triangle sweep, per region.
    let t = Instant::now();
    let mut bitset_checksum = 0u64;
    for p in &prepared {
        let cache = OverlapCache::for_cuisine_with_threads(&world.flavor, &p.cuisine, n_threads);
        for i in 0..cache.len() as u32 {
            for j in (i + 1)..cache.len() as u32 {
                bitset_checksum += u64::from(cache.overlap(i, j));
            }
        }
    }
    let optimized_build_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sweep_checksum, bitset_checksum,
        "bitset and sorted-merge overlap tables disagree"
    );

    // Baseline Monte-Carlo: serial, allocating per sampled recipe.
    eprintln!(
        "baseline: serial Monte-Carlo, {} recipes x {} models x {} regions",
        cfg.n_recipes,
        models.len(),
        n_regions
    );
    let t = Instant::now();
    let baseline = baseline_monte_carlo(&prepared, &models, &cfg);
    let baseline_mc_ms = t.elapsed().as_secs_f64() * 1e3;

    // Optimized end-to-end: analyze_world (its own builds + pooled MC).
    eprintln!(
        "optimized: analyze_world on {} threads",
        pool::effective_threads(n_threads)
    );
    let t = Instant::now();
    let analyses = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
    let optimized_wall_ms = t.elapsed().as_secs_f64() * 1e3;

    // Parity: both paths consumed identical PRNG streams, so every null
    // ensemble must be bit-identical.
    assert_eq!(analyses.len(), baseline.len());
    for (a, b_models) in analyses.iter().zip(&baseline) {
        for (c, b) in a.comparisons.iter().zip(b_models) {
            assert_eq!(
                c.null.mean.to_bits(),
                b.mean.to_bits(),
                "{} {}: baseline and optimized ensembles diverge",
                a.region.code(),
                c.model
            );
            assert_eq!(c.null.std_dev.to_bits(), b.std_dev.to_bits());
        }
    }

    let baseline_wall_ms = baseline_build_ms + baseline_mc_ms;
    let speedup = baseline_wall_ms / optimized_wall_ms;
    eprintln!(
        "baseline {baseline_wall_ms:.0} ms (build {baseline_build_ms:.0} + mc {baseline_mc_ms:.0}) \
         vs optimized {optimized_wall_ms:.0} ms -> {speedup:.2}x"
    );

    // Thread-scaling sweep: the full optimized pipeline at 1/2/4/8
    // workers, every point checked bit-identical against the reference
    // run above (the determinism contract, now *measured*).
    let mut scaling = Vec::new();
    let mut wall_at_1 = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        let sweep_cfg = MonteCarloConfig {
            n_threads: threads,
            ..cfg
        };
        let t = Instant::now();
        let sweep = analyze_world(&world.flavor, &world.recipes, &models, &sweep_cfg);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(sweep.len(), analyses.len());
        for (a, b) in sweep.iter().zip(&analyses) {
            assert_eq!(a.region, b.region);
            assert_eq!(
                a.observed_mean.to_bits(),
                b.observed_mean.to_bits(),
                "{}: observed mean diverges on {threads} threads",
                a.region.code()
            );
            for (x, y) in a.comparisons.iter().zip(&b.comparisons) {
                assert_eq!(
                    x.null.mean.to_bits(),
                    y.null.mean.to_bits(),
                    "{} {}: ensemble diverges on {threads} threads",
                    a.region.code(),
                    x.model
                );
                assert_eq!(x.null.std_dev.to_bits(), y.null.std_dev.to_bits());
            }
        }
        if threads == 1 {
            wall_at_1 = wall_ms;
        }
        eprintln!(
            "scaling: {threads} threads -> {wall_ms:.0} ms ({:.2}x vs 1 thread)",
            wall_at_1 / wall_ms
        );
        scaling.push(format!(
            "    {{ \"threads\": {threads}, \"wall_ms\": {wall_ms:.3}, \
             \"speedup_vs_1\": {sp:.3}, \"parity\": \"bit-identical\" }}",
            sp = wall_at_1 / wall_ms,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fig4_world_analysis\",\n  \"n_regions\": {n_regions},\n  \
         \"n_models\": {n_models},\n  \"n_recipes_per_model\": {n_recipes},\n  \
         \"recipe_scale\": {scale},\n  \"seed\": {seed},\n  \
         \"n_threads_requested\": {n_threads},\n  \"n_threads_effective\": {eff},\n  \
         \"available_cores\": {cores},\n  \
         \"baseline_build_ms\": {baseline_build_ms:.3},\n  \
         \"optimized_build_ms\": {optimized_build_ms:.3},\n  \
         \"baseline_mc_ms\": {baseline_mc_ms:.3},\n  \
         \"baseline_wall_ms\": {baseline_wall_ms:.3},\n  \
         \"optimized_wall_ms\": {optimized_wall_ms:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"scaling\": [\n{scaling}\n  ],\n  \
         \"parity\": \"bit-identical\"\n}}\n",
        n_models = models.len(),
        n_recipes = cfg.n_recipes,
        eff = pool::effective_threads(n_threads),
        cores = std::thread::available_parallelism().map_or(1, |n| n.get()),
        scaling = scaling.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench summary");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
