//! Reproduces **Fig 3a**: the recipe-size distribution and its
//! cumulative inset, pooled and per region.

use culinaria_bench::{section, world_from_env};
use culinaria_core::size_dist::{size_distribution_frame, size_histogram, world_size_histogram};
use culinaria_recipedb::Region;

fn main() {
    let world = world_from_env();

    section("Fig 3a — Recipe size distribution (P(s) per region, WORLD pooled + cumulative)");
    let frame = size_distribution_frame(&world.recipes);
    println!("{}", frame.to_table_string(40));

    section("Summary statistics");
    let h = world_size_histogram(&world.recipes);
    println!(
        "WORLD: mean {:.2} (paper: ~9), mode {}, range {}..{}, recipes {}",
        h.mean().expect("non-empty world"),
        h.mode().expect("non-empty world"),
        h.min().expect("non-empty world"),
        h.max().expect("non-empty world"),
        h.total()
    );
    let cdf = h.cumulative();
    println!(
        "cumulative: P(s<=5) {:.3}, P(s<=9) {:.3}, P(s<=15) {:.3} — bounded, thin-tailed",
        cdf.at(5),
        cdf.at(9),
        cdf.at(15)
    );

    section("Per-region means (generic pattern across cuisines)");
    for region in Region::ALL {
        let rh = size_histogram(&world.recipes.cuisine(region));
        println!(
            "{:4}  mean {:.2}  mode {:2}  max {:2}",
            region.code(),
            rh.mean().unwrap_or(0.0),
            rh.mode().unwrap_or(0),
            rh.max().unwrap_or(0)
        );
    }
}
