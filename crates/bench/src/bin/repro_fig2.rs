//! Reproduces **Fig 2**: the region × category composition heatmap,
//! and checks the deviations the paper narrates (dairy-over-vegetable
//! regions; spice-predominant regions).

use culinaria_bench::{section, world_from_env};
use culinaria_core::composition::{
    category_shares, composition_deviation_frame, composition_frame,
};
use culinaria_flavordb::Category;
use culinaria_recipedb::Region;

fn main() {
    let world = world_from_env();

    section("Fig 2 — Compositions of recipes in terms of ingredient categories");
    let frame = composition_frame(&world.flavor, &world.recipes);
    println!("{}", frame.to_table_string(23));

    section("Deviation from WORLD composition (χ² goodness-of-fit per region)");
    println!(
        "{}",
        composition_deviation_frame(&world.flavor, &world.recipes).to_table_string(22)
    );

    section("Paper narrative checks");
    // "France, British Isles, and Scandinavia regions use dairy
    // products more prominently than vegetables."
    for region in [Region::France, Region::BritishIsles, Region::Scandinavia] {
        let shares = category_shares(&world.flavor, &world.recipes.cuisine(region));
        let dairy = shares[Category::Dairy.index()];
        let veg = shares[Category::Vegetable.index()];
        println!(
            "{:4}  dairy {:.3} vs vegetable {:.3}  -> {}",
            region.code(),
            dairy,
            veg,
            if dairy > veg {
                "dairy-led (matches paper)"
            } else {
                "MISMATCH"
            }
        );
    }
    // "Among regions with predominant use of spice were Indian
    // Subcontinent, Africa, Middle East, and Caribbean."
    for region in [
        Region::IndianSubcontinent,
        Region::Africa,
        Region::MiddleEast,
        Region::Caribbean,
    ] {
        let shares = category_shares(&world.flavor, &world.recipes.cuisine(region));
        let spice = shares[Category::Spice.index()];
        let top = shares.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:4}  spice share {:.3} (top category share {:.3})  -> {}",
            region.code(),
            spice,
            top,
            if (spice - top).abs() < 1e-12 {
                "spice-predominant (matches paper)"
            } else {
                "spice-forward"
            }
        );
    }
}
