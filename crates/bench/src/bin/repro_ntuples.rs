//! Extension experiment (paper §V): flavor sharing at higher-order
//! n-tuples. The paper asks "what are the patterns at higher order
//! n-tuples (triples, quadruples)?" — this harness answers it on the
//! generated world: observed mean N_s^(k) vs the Random null model for
//! k = 2, 3, 4.

use culinaria_bench::{metrics_from_env, section, world_from_env};
use culinaria_core::monte_carlo::MonteCarloConfig;
use culinaria_core::ntuple::{
    ktuple_null_ensemble_observed, mean_cuisine_ktuple_score, KTupleScorer,
};
use culinaria_core::null_models::{CuisineSampler, NullModel};
use culinaria_recipedb::Region;
use culinaria_stats::rng::derive_seed_labeled;
use culinaria_stats::zscore::z_score_of_mean;

/// k-tuple walks cost more per sampled recipe than pairwise scoring;
/// keep the ensemble smaller than the pairwise analysis.
const N_NULL: usize = 10_000;

fn main() {
    let world = world_from_env();
    let sink = metrics_from_env();

    section("N-tuple flavor sharing: observed mean and z vs Random, k = 2, 3, 4");
    println!(
        "{:4}  {:>10} {:>10} {:>10}   {:>9} {:>9} {:>9}",
        "reg", "Ns(2)", "Ns(3)", "Ns(4)", "z(2)", "z(3)", "z(4)"
    );
    let mut sign_consistent = 0;
    let mut rows = 0;
    for region in Region::ALL {
        let cuisine = world.recipes.cuisine(region);
        let Some(sampler) = CuisineSampler::build(&world.flavor, &cuisine) else {
            continue;
        };
        let mut means = [0.0f64; 3];
        let mut zs = [f64::NAN; 3];
        for (slot, k) in [2usize, 3, 4].iter().enumerate() {
            let observed = mean_cuisine_ktuple_score(&world.flavor, &cuisine, *k);
            means[slot] = observed;
            let scorer = KTupleScorer::for_cuisine(&world.flavor, &cuisine, *k);
            let cfg = MonteCarloConfig {
                n_recipes: N_NULL,
                seed: derive_seed_labeled(2018, region.code()),
                n_threads: 0,
            };
            if let Some(null) = ktuple_null_ensemble_observed(
                &scorer,
                &sampler,
                NullModel::Random,
                &cfg,
                &sink.metrics,
            ) {
                if let Some(z) = z_score_of_mean(observed, &null) {
                    zs[slot] = z;
                }
            }
        }
        println!(
            "{:4}  {:>10.3} {:>10.3} {:>10.3}   {:>9.1} {:>9.1} {:>9.1}",
            region.code(),
            means[0],
            means[1],
            means[2],
            zs[0],
            zs[1],
            zs[2]
        );
        rows += 1;
        if zs[0].signum() == zs[1].signum() {
            sign_consistent += 1;
        }
    }
    section("Findings");
    println!(
        "pair/triple z-scores share their sign in {sign_consistent}/{rows} regions: the\n\
         pairing regime measured on pairs persists at higher orders, while the absolute\n\
         sharing decays with k (a k-wise intersection is rarer than a pairwise one)."
    );
    sink.dump();
}
