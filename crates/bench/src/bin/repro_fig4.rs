//! Reproduces **Fig 4**: the food-pairing z-score of each of the 22
//! cuisines against the four null models (Random, Ingredient Frequency,
//! Ingredient Category, Frequency + Category), 100,000 randomized
//! recipes per model.
//!
//! Expected shape (the paper's headline results):
//! * every cuisine deviates from Random (|Z| ≫ 0) — none is
//!   indistinguishable;
//! * 16 regions positive (uniform pairing), 6 negative (contrasting):
//!   SCND, JPN, DACH, BRI, KOR, EE;
//! * the Frequency model collapses |Z| (frequency largely accounts for
//!   pairing); the Category model does not.

use culinaria_bench::{mc_config_from_env, metrics_from_env, section, world_from_env};
use culinaria_core::z_analysis::{analyses_to_frame, analyze_world_observed};
use culinaria_core::NullModel;

fn main() {
    let world = world_from_env();
    let cfg = mc_config_from_env();
    let sink = metrics_from_env();
    eprintln!(
        "monte carlo: {} recipes per model, 4 models, 22 regions",
        cfg.n_recipes
    );

    let t = std::time::Instant::now();
    let analyses = analyze_world_observed(
        &world.flavor,
        &world.recipes,
        &NullModel::ALL,
        &cfg,
        &sink.metrics,
    );
    eprintln!("analysis finished in {:.1?}", t.elapsed());

    section("Fig 4 — Food pairing z-scores per cuisine and null model");
    println!("{}", analyses_to_frame(&analyses).to_table_string(22));

    section("Sign pattern vs paper");
    let mut agree = 0;
    for a in &analyses {
        let z = a.z_random().unwrap_or(0.0);
        let observed_positive = z > 0.0;
        let paper_positive = a.region.paper_positive_pairing();
        let ok = observed_positive == paper_positive;
        if ok {
            agree += 1;
        }
        println!(
            "{:4}  z_random {:>10.1}  verdict {:11}  paper {:11}  {}",
            a.region.code(),
            z,
            a.verdict().to_string(),
            if paper_positive {
                "uniform"
            } else {
                "contrasting"
            },
            if ok { "match" } else { "MISMATCH" }
        );
    }
    println!("\nsign agreement with paper: {agree}/22");

    section("Model explanatory power (paper: frequency explains pairing; category does not)");
    // A model "reproduces" a cuisine's pairing when it removes most of
    // the deviation: |z_model| / |z_random| well below 1.
    let ratios = |model: NullModel| -> Vec<f64> {
        analyses
            .iter()
            .filter_map(|a| {
                let zr = a.against(NullModel::Random)?.z?;
                let zm = a.against(model)?.z?;
                (zr != 0.0).then(|| (zm / zr).abs())
            })
            .collect()
    };
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    for model in [
        NullModel::Frequency,
        NullModel::Category,
        NullModel::FrequencyCategory,
    ] {
        let rs = ratios(model);
        let collapsed = rs.iter().filter(|&&r| r < 0.3).count();
        println!(
            "{:22}  median |z|/|z_random| = {:.3}   reproduces pairing (<0.3) in {}/{} regions",
            model.name(),
            median(rs.clone()),
            collapsed,
            rs.len()
        );
    }
    println!(
        "\nexpected shape: Frequency (and Frequency+Category) collapse the deviation in\n\
         nearly all regions; Category alone does not."
    );
    sink.dump();
}
