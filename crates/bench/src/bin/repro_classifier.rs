//! Supplementary experiment: how identifying are culinary fingerprints?
//! A naive-Bayes cuisine classifier trained on half the corpus and
//! evaluated on the held-out half. High accuracy confirms the paper's
//! premise that recipe compositions carry a regional signature.

use culinaria_bench::{section, world_from_env};
use culinaria_core::classify::CuisineClassifier;
use culinaria_recipedb::{Recipe, Region};

fn is_even(r: &Recipe) -> bool {
    r.id.0.is_multiple_of(2)
}

fn main() {
    let world = world_from_env();

    let clf = CuisineClassifier::train_filtered(&world.recipes, is_even);
    let eval = clf.evaluate(&world.recipes, |r| !is_even(r));

    section("Cuisine classification from ingredient lists (held-out half)");
    println!(
        "top-1 accuracy: {:.3} over {} recipes (chance ≈ {:.3}, majority-class ≈ {:.3})",
        eval.accuracy(),
        eval.total,
        1.0 / 22.0,
        world.recipes.n_region_recipes(Region::Usa) as f64 / world.recipes.n_recipes() as f64
    );

    section("Per-region recall");
    for region in Region::ALL {
        if let Some(r) = eval.recall(region) {
            println!("{:4}  {:.3}", region.code(), r);
        }
    }

    section("Most confused region pairs (true -> predicted)");
    for (t, p, count) in eval.top_confusions(10) {
        println!("{:4} -> {:4}  {count}", t.code(), p.code());
    }
    println!(
        "\nconfusions track fingerprint similarity (see repro_similarity): cuisines\n\
         with overlapping ingredient-usage vectors are exactly the ones the\n\
         classifier mixes up."
    );
}
