//! Flavor molecules.

use crate::ids::MoleculeId;

/// A flavor molecule: the unit of the paper's lowest analysis level.
///
/// Real FlavorDB records PubChem ids and dozens of physicochemical
/// properties; the pairing analysis only consumes identity and the
/// human-facing flavor descriptors, so that is what we keep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Molecule {
    /// Dense id within the owning database.
    pub id: MoleculeId,
    /// Common name, e.g. "limonene".
    pub name: String,
    /// Perceptual descriptors, e.g. ["citrus", "sweet"].
    pub descriptors: Vec<String>,
}

impl Molecule {
    /// True if the molecule carries a given descriptor (case-sensitive;
    /// descriptors are stored lowercase by convention).
    pub fn has_descriptor(&self, descriptor: &str) -> bool {
        self.descriptors.iter().any(|d| d == descriptor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_lookup() {
        let m = Molecule {
            id: MoleculeId(0),
            name: "limonene".into(),
            descriptors: vec!["citrus".into(), "sweet".into()],
        };
        assert!(m.has_descriptor("citrus"));
        assert!(!m.has_descriptor("bitter"));
    }
}
