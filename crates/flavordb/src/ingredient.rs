//! Ingredient entities.

use crate::category::Category;
use crate::ids::IngredientId;
use crate::profile::FlavorProfile;

/// An ingredient: a named entity with a category and a flavor profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ingredient {
    /// Dense id within the owning database.
    pub id: IngredientId,
    /// Canonical lowercase name (the aliasing pipeline maps raw phrases
    /// onto these).
    pub name: String,
    /// One of the paper's 21 categories.
    pub category: Category,
    /// The set of flavor molecules empirically reported for the
    /// ingredient; empty for the four no-profile additives.
    pub profile: FlavorProfile,
    /// True for compound ingredients whose profile was pooled from
    /// constituents (mayonnaise, "half half", …).
    pub is_compound: bool,
}

impl Ingredient {
    /// True if this ingredient has no flavor molecules (e.g. cooking
    /// spray, gelatin, food coloring, liquid smoke).
    pub fn has_empty_profile(&self) -> bool {
        self.profile.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_flagging() {
        let ing = Ingredient {
            id: IngredientId(0),
            name: "food coloring".into(),
            category: Category::Additive,
            profile: FlavorProfile::empty(),
            is_compound: false,
        };
        assert!(ing.has_empty_profile());
    }
}
