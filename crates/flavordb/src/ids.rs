//! Dense interned identifiers.
//!
//! Everything hot operates on `u32` ids assigned densely at insertion,
//! so per-ingredient state lives in flat vectors and pairwise caches can
//! be indexed directly.

use std::fmt;

/// Identifier of a flavor molecule within a [`crate::FlavorDb`].
///
/// `repr(transparent)` over `u32` so a `&[u32]` borrowed from a binary
/// artifact can be reinterpreted as `&[MoleculeId]` without copying
/// (see [`crate::artifact`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct MoleculeId(pub u32);

/// Identifier of an ingredient within a [`crate::FlavorDb`].
///
/// `repr(transparent)` over `u32` for the same zero-copy reason as
/// [`MoleculeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct IngredientId(pub u32);

impl MoleculeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl IngredientId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MoleculeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for IngredientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_numeric() {
        assert!(MoleculeId(1) < MoleculeId(2));
        assert!(IngredientId(0) < IngredientId(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(MoleculeId(7).to_string(), "m7");
        assert_eq!(IngredientId(7).to_string(), "i7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(MoleculeId(42).index(), 42);
        assert_eq!(IngredientId(42).index(), 42);
    }
}
