//! The curated fixture: every ingredient the paper names explicitly.
//!
//! This is a faithful, small-scale stand-in for the paper's curated
//! ingredient list (§III.B). It embeds:
//!
//! * a base lexicon of common ingredients across all 21 categories, with
//!   hand-written flavor profiles over a named molecule universe;
//! * the **13 specific ingredients** added to the FlavorDB list because
//!   they matter in recipes: anise oil, apple juice, coconut milk,
//!   coconut oil, hops beer, lemon juice, brown rice, tomato juice,
//!   tomato paste, tomato puree, coriander seed, pork fat, cured ham;
//! * the **4 ingredients from Ahn et al.**: cayenne, yeast, tequila,
//!   sauerkraut;
//! * the **7 additives**: baking powder, monosodium glutamate, citric
//!   acid, cooking spray, gelatin, food coloring, liquid smoke — the
//!   last four with *no* flavor profile;
//! * **compound ingredients** with pooled profiles: half half
//!   (milk + cream), mayonnaise (oil + egg + lemon juice), and bear
//!   (black + polar + brown bear, the paper's bundling example);
//! * **synonyms**: bun → bread, lager → beer, curd → yogurt, plus the
//!   spelling variants whisky → whiskey, hing → asafoetida,
//!   chile → chili;
//! * the **removal** of generic/noisy entities (the paper removed 29),
//!   exercised here on a representative pair.

use crate::category::Category;
use crate::db::FlavorDb;
use crate::error::Result;
use crate::ids::{IngredientId, MoleculeId};

use Category as C;

/// Ingredient spec rows: (name, category, molecule names).
///
/// Molecule names are interned on first use; sharing a molecule name
/// between two ingredients is what creates flavor-pairing overlap.
const BASE: &[(&str, Category, &[&str])] = &[
    // Dairy — heavy mutual overlap via lactic molecules.
    (
        "milk",
        C::Dairy,
        &["lactone", "diacetyl", "butanoic acid", "delta-decalactone"],
    ),
    (
        "cream",
        C::Dairy,
        &["lactone", "diacetyl", "delta-decalactone", "vanillin-trace"],
    ),
    (
        "butter",
        C::Dairy,
        &["diacetyl", "butanoic acid", "delta-decalactone", "acetoin"],
    ),
    (
        "cheese",
        C::Dairy,
        &[
            "butanoic acid",
            "acetoin",
            "methyl ketone",
            "propionic acid",
        ],
    ),
    (
        "yogurt",
        C::Dairy,
        &["lactone", "acetaldehyde", "diacetyl", "lactic acid"],
    ),
    // Vegetables.
    (
        "tomato",
        C::Vegetable,
        &["hexanal", "geranial", "beta-ionone", "methyl salicylate"],
    ),
    (
        "onion",
        C::Vegetable,
        &["allyl sulfide", "propanethiol", "thiophene"],
    ),
    (
        "garlic",
        C::Vegetable,
        &["allyl sulfide", "diallyl disulfide", "allicin", "hexanal"],
    ),
    (
        "carrot",
        C::Vegetable,
        &["terpinolene", "beta-ionone", "caryophyllene"],
    ),
    (
        "bell pepper",
        C::Vegetable,
        &["pyrazine", "hexanal", "linalool"],
    ),
    (
        "cabbage",
        C::Vegetable,
        &["allyl isothiocyanate", "thiophene", "hexanal"],
    ),
    (
        "potato",
        C::Vegetable,
        &["methional", "pyrazine", "hexanal"],
    ),
    ("spinach", C::Vegetable, &["hexanal", "cis-3-hexenol"]),
    // Fruits — ester/terpene cluster.
    (
        "apple",
        C::Fruit,
        &["ethyl butanoate", "hexyl acetate", "hexanal", "farnesene"],
    ),
    (
        "lemon",
        C::Fruit,
        &["limonene", "citral", "geranial", "beta-pinene"],
    ),
    (
        "orange",
        C::Fruit,
        &["limonene", "citral", "valencene", "octanal"],
    ),
    (
        "banana",
        C::Fruit,
        &["isoamyl acetate", "eugenol-trace", "ethyl butanoate"],
    ),
    (
        "strawberry",
        C::Fruit,
        &["furaneol", "ethyl butanoate", "hexyl acetate"],
    ),
    (
        "coconut",
        C::Fruit,
        &["delta-octalactone", "delta-decalactone", "massoia lactone"],
    ),
    (
        "mango",
        C::Fruit,
        &["myrcene", "delta-octalactone", "ethyl butanoate"],
    ),
    // Spices.
    (
        "black pepper",
        C::Spice,
        &["piperine", "caryophyllene", "beta-pinene", "limonene"],
    ),
    (
        "cumin",
        C::Spice,
        &["cuminaldehyde", "beta-pinene", "terpinene"],
    ),
    (
        "coriander",
        C::Spice,
        &["linalool", "geranial", "camphor-trace"],
    ),
    (
        "turmeric",
        C::Spice,
        &["turmerone", "zingiberene", "curcumin"],
    ),
    (
        "cinnamon",
        C::Spice,
        &["cinnamaldehyde", "eugenol", "linalool"],
    ),
    (
        "clove",
        C::Spice,
        &["eugenol", "caryophyllene", "vanillin-trace"],
    ),
    (
        "cardamom",
        C::Spice,
        &["cineole", "terpinyl acetate", "limonene", "linalool"],
    ),
    (
        "ginger",
        C::Spice,
        &["zingiberene", "gingerol", "citral", "cineole"],
    ),
    ("chili", C::Spice, &["capsaicin", "hexanal", "pyrazine"]),
    (
        "asafoetida",
        C::Spice,
        &["propanethiol", "ferulic acid", "allyl sulfide"],
    ),
    ("saffron", C::Spice, &["safranal", "picrocrocin"]),
    (
        "vanilla",
        C::Spice,
        &["vanillin", "vanillin-trace", "guaiacol"],
    ),
    // Herbs — terpene cluster.
    (
        "basil",
        C::Herb,
        &[
            "linalool",
            "estragole",
            "eugenol",
            "cineole",
            "methyl salicylate",
        ],
    ),
    (
        "oregano",
        C::Herb,
        &["carvacrol", "thymol", "caryophyllene", "linalool"],
    ),
    ("thyme", C::Herb, &["thymol", "carvacrol", "linalool"]),
    ("mint", C::Herb, &["menthol", "menthone", "cineole"]),
    (
        "cilantro",
        C::Herb,
        &["cis-3-hexenol", "linalool", "decanal"],
    ),
    ("rosemary", C::Herb, &["cineole", "camphor", "beta-pinene"]),
    ("dill", C::Herb, &["carvone", "limonene", "phellandrene"]),
    // Meat — maillard/fatty cluster.
    (
        "chicken",
        C::Meat,
        &["2-methyl-3-furanthiol", "hexanal", "nonanal", "furfural"],
    ),
    (
        "beef",
        C::Meat,
        &["2-methyl-3-furanthiol", "methional", "pyrazine", "nonanal"],
    ),
    (
        "pork",
        C::Meat,
        &["nonanal", "hexanal", "furfural", "decanal"],
    ),
    (
        "lamb",
        C::Meat,
        &["4-methyloctanoic acid", "nonanal", "pyrazine"],
    ),
    (
        "bacon",
        C::Meat,
        &["guaiacol", "furfural", "nonanal", "syringol"],
    ),
    (
        "black bear",
        C::Meat,
        &["nonanal", "hexanal", "gamey ketone"],
    ),
    (
        "polar bear",
        C::Meat,
        &["nonanal", "trimethylamine", "gamey ketone"],
    ),
    (
        "brown bear",
        C::Meat,
        &["nonanal", "gamey ketone", "furfural"],
    ),
    // Fish & seafood.
    (
        "salmon",
        C::Fish,
        &["trimethylamine", "omega-aldehyde", "hexanal"],
    ),
    (
        "tuna",
        C::Fish,
        &["trimethylamine", "omega-aldehyde", "methional"],
    ),
    ("cod", C::Fish, &["trimethylamine", "hexanal"]),
    (
        "shrimp",
        C::Seafood,
        &["trimethylamine", "pyrazine", "nonanal"],
    ),
    (
        "oyster",
        C::Seafood,
        &["trimethylamine", "dimethyl sulfide", "octanal"],
    ),
    (
        "seaweed",
        C::Seafood,
        &["dimethyl sulfide", "bromophenol", "cis-3-hexenol"],
    ),
    // Cereals, maize, legumes, bakery.
    ("wheat", C::Cereal, &["hexanal", "furfural", "maltol"]),
    ("oats", C::Cereal, &["hexanal", "nonanal", "maltol"]),
    ("rice", C::Cereal, &["2-acetyl-1-pyrroline", "hexanal"]),
    (
        "corn",
        C::Maize,
        &["dimethyl sulfide", "2-acetyl-1-pyrroline", "maltol"],
    ),
    ("cornmeal", C::Maize, &["maltol", "furfural", "hexanal"]),
    ("lentil", C::Legume, &["hexanal", "methoxypyrazine"]),
    (
        "chickpea",
        C::Legume,
        &["hexanal", "methoxypyrazine", "nonanal"],
    ),
    ("black bean", C::Legume, &["methoxypyrazine", "furfural"]),
    (
        "soybean",
        C::Legume,
        &["hexanal", "methoxypyrazine", "maltol"],
    ),
    (
        "bread",
        C::Bakery,
        &["2-acetyl-1-pyrroline", "furfural", "maltol", "acetoin"],
    ),
    (
        "cake",
        C::Bakery,
        &["vanillin", "maltol", "diacetyl", "furfural"],
    ),
    ("cookie", C::Bakery, &["maltol", "vanillin", "furfural"]),
    // Nuts and seeds.
    (
        "almond",
        C::NutsAndSeeds,
        &["benzaldehyde", "hexanal", "nonanal"],
    ),
    (
        "peanut",
        C::NutsAndSeeds,
        &["pyrazine", "methylpyrazine", "hexanal"],
    ),
    (
        "sesame",
        C::NutsAndSeeds,
        &["pyrazine", "furfural", "guaiacol"],
    ),
    (
        "walnut",
        C::NutsAndSeeds,
        &["hexanal", "nonanal", "pyrazine"],
    ),
    // Beverages.
    (
        "coffee",
        C::Beverage,
        &["furfural", "guaiacol", "methylpyrazine", "pyrazine"],
    ),
    (
        "tea",
        C::Beverage,
        &["linalool", "geraniol", "beta-ionone", "hexanal"],
    ),
    (
        "beer",
        C::BeverageAlcoholic,
        &["isoamyl acetate", "diacetyl", "humulone", "ethyl acetate"],
    ),
    (
        "wine",
        C::BeverageAlcoholic,
        &[
            "ethyl acetate",
            "isoamyl acetate",
            "tannin note",
            "diacetyl",
        ],
    ),
    (
        "whiskey",
        C::BeverageAlcoholic,
        &[
            "guaiacol",
            "vanillin",
            "ethyl acetate",
            "syringol",
            "citral",
        ],
    ),
    (
        "rum",
        C::BeverageAlcoholic,
        &["ethyl acetate", "vanillin", "furfural"],
    ),
    // Plant, flower, fungus, essential oil, dish.
    (
        "olive",
        C::Plant,
        &["oleuropein", "hexanal", "cis-3-hexenol"],
    ),
    (
        "olive oil",
        C::Plant,
        &["oleuropein", "cis-3-hexenol", "decanal", "hexanal"],
    ),
    (
        "soy sauce",
        C::Dish,
        &["methional", "furfural", "guaiacol", "glutamate note"],
    ),
    (
        "rose",
        C::Flower,
        &["geraniol", "citronellol", "phenylethanol"],
    ),
    (
        "lavender",
        C::Flower,
        &["linalool", "linalyl acetate", "camphor"],
    ),
    (
        "mushroom",
        C::Fungus,
        &["1-octen-3-ol", "methional", "hexanal"],
    ),
    (
        "truffle",
        C::Fungus,
        &["dimethyl sulfide", "1-octen-3-ol", "methional"],
    ),
    (
        "peppermint oil",
        C::EssentialOil,
        &["menthol", "menthone", "cineole"],
    ),
    (
        "egg",
        C::Plant,
        &["methional", "hexanal", "dimethyl sulfide"],
    ),
    ("honey", C::Plant, &["phenylethanol", "furaneol", "maltol"]),
    ("sugar", C::Additive, &["caramel furanone", "maltol"]),
    ("salt", C::Additive, &[]),
];

/// The 13 ingredients the paper added to the FlavorDB list.
const ADDED_13: &[(&str, Category, &[&str])] = &[
    (
        "anise oil",
        C::EssentialOil,
        &["anethole", "estragole", "limonene"],
    ),
    (
        "apple juice",
        C::Beverage,
        &["ethyl butanoate", "hexyl acetate", "hexanal"],
    ),
    (
        "coconut milk",
        C::Dairy,
        &["delta-octalactone", "delta-decalactone", "lactone"],
    ),
    (
        "coconut oil",
        C::Plant,
        &["delta-octalactone", "massoia lactone", "decanal"],
    ),
    (
        "hops beer",
        C::BeverageAlcoholic,
        &["humulone", "myrcene", "linalool"],
    ),
    (
        "lemon juice",
        C::Beverage,
        &["limonene", "citral", "beta-pinene"],
    ),
    (
        "brown rice",
        C::Cereal,
        &["2-acetyl-1-pyrroline", "hexanal", "nonanal"],
    ),
    (
        "tomato juice",
        C::Beverage,
        &["hexanal", "geranial", "methyl salicylate"],
    ),
    (
        "tomato paste",
        C::Dish,
        &["hexanal", "beta-ionone", "furaneol"],
    ),
    (
        "tomato puree",
        C::Dish,
        &["hexanal", "beta-ionone", "geranial"],
    ),
    (
        "coriander seed",
        C::Spice,
        &["linalool", "geranial", "beta-pinene"],
    ),
    ("pork fat", C::Meat, &["nonanal", "decanal", "hexanal"]),
    (
        "cured ham",
        C::Meat,
        &["nonanal", "guaiacol", "furfural", "decanal"],
    ),
];

/// The 4 ingredients included from Ahn et al.'s data.
const AHN_4: &[(&str, Category, &[&str])] = &[
    ("cayenne", C::Spice, &["capsaicin", "hexanal", "citral"]),
    (
        "yeast",
        C::Fungus,
        &["acetoin", "furfural", "phenylethanol"],
    ),
    (
        "tequila",
        C::BeverageAlcoholic,
        &["ethyl acetate", "isoamyl acetate", "guaiacol"],
    ),
    (
        "sauerkraut",
        C::Vegetable,
        &["lactic acid", "allyl isothiocyanate", "acetaldehyde"],
    ),
];

/// The 7 manually-added additives; the last four get no flavor profile,
/// exactly as in the paper.
const ADDITIVES_7: &[(&str, &[&str])] = &[
    ("baking powder", &["carbon dioxide note"]),
    ("monosodium glutamate", &["glutamate note"]),
    ("citric acid", &["citral"]),
    ("cooking spray", &[]),
    ("gelatin", &[]),
    ("food coloring", &[]),
    ("liquid smoke", &[]),
];

/// Noisy/generic entities registered and then removed, exercising the
/// paper's deletion of 29 such entries.
const NOISY: &[&str] = &["food product", "generic meat"];

/// Perceptual descriptors for the named molecules (used by the
/// taste-enumeration extension). Molecules absent from this table get
/// no descriptors, exactly like the sparsely-annotated real FlavorDB.
const DESCRIPTORS: &[(&str, &[&str])] = &[
    ("diacetyl", &["buttery", "creamy"]),
    ("lactone", &["creamy", "sweet"]),
    ("delta-decalactone", &["creamy", "coconut"]),
    ("delta-octalactone", &["coconut", "sweet"]),
    ("butanoic acid", &["cheesy", "rancid"]),
    ("acetoin", &["buttery"]),
    ("lactic acid", &["sour"]),
    ("acetaldehyde", &["pungent", "fresh"]),
    ("vanillin", &["vanilla", "sweet"]),
    ("vanillin-trace", &["vanilla"]),
    ("maltol", &["caramel", "sweet"]),
    ("furaneol", &["caramel", "strawberry"]),
    ("caramel furanone", &["caramel", "sweet"]),
    ("furfural", &["bready", "almond"]),
    ("2-acetyl-1-pyrroline", &["popcorn", "bready"]),
    ("limonene", &["citrus"]),
    ("citral", &["citrus", "lemon"]),
    ("geranial", &["citrus", "rose"]),
    ("beta-pinene", &["piney", "resinous"]),
    ("linalool", &["floral", "citrus"]),
    ("geraniol", &["rose", "floral"]),
    ("citronellol", &["rose"]),
    ("phenylethanol", &["rose", "honey"]),
    ("eugenol", &["clove", "spicy"]),
    ("eugenol-trace", &["clove"]),
    ("cinnamaldehyde", &["cinnamon", "spicy"]),
    ("capsaicin", &["pungent", "hot"]),
    ("piperine", &["pungent", "woody"]),
    ("allyl sulfide", &["garlic", "sulfurous"]),
    ("diallyl disulfide", &["garlic", "sulfurous"]),
    ("allicin", &["garlic", "pungent"]),
    ("propanethiol", &["onion", "sulfurous"]),
    ("thiophene", &["sulfurous"]),
    ("allyl isothiocyanate", &["pungent", "mustard"]),
    ("dimethyl sulfide", &["sulfurous", "marine"]),
    ("trimethylamine", &["fishy"]),
    ("bromophenol", &["marine", "briny"]),
    ("hexanal", &["green", "grassy"]),
    ("cis-3-hexenol", &["green", "leafy"]),
    ("methional", &["potato", "savory"]),
    ("methoxypyrazine", &["green", "earthy"]),
    ("pyrazine", &["roasted", "nutty"]),
    ("methylpyrazine", &["roasted", "nutty"]),
    ("2-methyl-3-furanthiol", &["meaty", "savory"]),
    ("nonanal", &["fatty", "waxy"]),
    ("decanal", &["fatty", "citrus"]),
    ("octanal", &["citrus", "fatty"]),
    ("guaiacol", &["smoky", "woody"]),
    ("syringol", &["smoky"]),
    ("benzaldehyde", &["almond", "cherry"]),
    ("menthol", &["minty", "cooling"]),
    ("menthone", &["minty"]),
    ("cineole", &["eucalyptus", "fresh"]),
    ("carvone", &["caraway", "minty"]),
    ("thymol", &["herbal", "medicinal"]),
    ("carvacrol", &["herbal", "spicy"]),
    ("camphor", &["camphoraceous"]),
    ("caryophyllene", &["woody", "spicy"]),
    ("zingiberene", &["spicy", "ginger"]),
    ("gingerol", &["pungent", "ginger"]),
    ("cuminaldehyde", &["spicy", "earthy"]),
    ("safranal", &["saffron", "hay"]),
    ("ethyl butanoate", &["fruity", "apple"]),
    ("hexyl acetate", &["fruity", "apple"]),
    ("isoamyl acetate", &["banana", "fruity"]),
    ("ethyl acetate", &["fruity", "solvent"]),
    ("beta-ionone", &["violet", "woody"]),
    ("myrcene", &["herbal", "resinous"]),
    ("humulone", &["bitter", "hoppy"]),
    ("oleuropein", &["bitter", "olive"]),
    ("glutamate note", &["umami", "savory"]),
    ("1-octen-3-ol", &["mushroom", "earthy"]),
    ("anethole", &["anise", "sweet"]),
    ("estragole", &["anise", "herbal"]),
];

fn intern_profile(db: &mut FlavorDb, molecules: &[&str]) -> Vec<MoleculeId> {
    molecules
        .iter()
        .map(|m| match db.molecule_by_name(m) {
            Some(id) => id,
            None => {
                let descriptors = DESCRIPTORS
                    .iter()
                    .find(|(name, _)| name == m)
                    .map(|(_, d)| *d)
                    .unwrap_or(&[]);
                db.add_molecule(m, descriptors)
                    .expect("fresh molecule name interns")
            }
        })
        .collect()
}

/// Build the curated database. Deterministic, no randomness.
pub fn curated_db() -> FlavorDb {
    try_curated_db().expect("curated fixture is internally consistent")
}

fn try_curated_db() -> Result<FlavorDb> {
    let mut db = FlavorDb::new();

    for &(name, cat, mols) in BASE.iter().chain(ADDED_13).chain(AHN_4) {
        let profile = intern_profile(&mut db, mols);
        db.add_ingredient(name, cat, profile)?;
    }
    for &(name, mols) in ADDITIVES_7 {
        let profile = intern_profile(&mut db, mols);
        db.add_ingredient(name, Category::Additive, profile)?;
    }

    // Noisy entities: add then remove (ids stay stable for the rest).
    for &name in NOISY {
        db.add_ingredient(name, Category::Plant, vec![])?;
        db.remove_ingredient(name)?;
    }

    // Compound ingredients with pooled profiles.
    let milk = id(&db, "milk")?;
    let cream = id(&db, "cream")?;
    db.add_compound_ingredient("half half", Category::Dairy, &[milk, cream])?;

    let oil = id(&db, "olive oil")?;
    let egg = id(&db, "egg")?;
    let lemon_juice = id(&db, "lemon juice")?;
    db.add_compound_ingredient("mayonnaise", Category::Dish, &[oil, egg, lemon_juice])?;

    let bears = [
        id(&db, "black bear")?,
        id(&db, "polar bear")?,
        id(&db, "brown bear")?,
    ];
    db.add_compound_ingredient("bear", Category::Meat, &bears)?;

    // Synonyms: common names and spelling variants from §III.B.
    db.add_synonym("bun", "bread")?;
    db.add_synonym("lager", "beer")?;
    db.add_synonym("curd", "yogurt")?;
    db.add_synonym("whisky", "whiskey")?;
    db.add_synonym("hing", "asafoetida")?;
    db.add_synonym("chile", "chili")?;

    Ok(db)
}

fn id(db: &FlavorDb, name: &str) -> Result<IngredientId> {
    db.ingredient_by_name(name)
        .ok_or_else(|| crate::error::FlavorDbError::UnknownIngredient(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_consistently() {
        let db = curated_db();
        // 85 base + 13 added + 4 Ahn + 7 additives + 3 compounds, minus
        // nothing (noisy pair removed after adding).
        assert_eq!(db.n_ingredients(), BASE.len() + 13 + 4 + 7 + 3);
        assert!(db.n_molecules() > 80);
    }

    #[test]
    fn paper_named_ingredients_present() {
        let db = curated_db();
        for name in [
            "anise oil",
            "apple juice",
            "coconut milk",
            "coconut oil",
            "hops beer",
            "lemon juice",
            "brown rice",
            "tomato juice",
            "tomato paste",
            "tomato puree",
            "coriander seed",
            "pork fat",
            "cured ham", // 13
            "cayenne",
            "yeast",
            "tequila",
            "sauerkraut", // Ahn 4
            "baking powder",
            "monosodium glutamate",
            "citric acid",
            "cooking spray",
            "gelatin",
            "food coloring",
            "liquid smoke", // additives 7
        ] {
            assert!(db.ingredient_by_name(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn last_four_additives_have_no_profile() {
        let db = curated_db();
        for name in ["cooking spray", "gelatin", "food coloring", "liquid smoke"] {
            let ing = db.ingredient(db.ingredient_by_name(name).unwrap()).unwrap();
            assert!(ing.has_empty_profile(), "{name} should be profile-free");
            assert_eq!(ing.category, Category::Additive);
        }
        // The first three DO have profiles.
        for name in ["baking powder", "monosodium glutamate", "citric acid"] {
            let ing = db.ingredient(db.ingredient_by_name(name).unwrap()).unwrap();
            assert!(!ing.has_empty_profile(), "{name} should have a profile");
        }
    }

    #[test]
    fn compounds_pool_constituents() {
        let db = curated_db();
        let hh = db
            .ingredient(db.ingredient_by_name("half half").unwrap())
            .unwrap();
        assert!(hh.is_compound);
        let milk = db
            .ingredient(db.ingredient_by_name("milk").unwrap())
            .unwrap();
        let cream = db
            .ingredient(db.ingredient_by_name("cream").unwrap())
            .unwrap();
        // Pooled profile contains both constituents' molecules.
        for m in milk
            .profile
            .molecules()
            .iter()
            .chain(cream.profile.molecules())
        {
            assert!(hh.profile.contains(*m));
        }
        let bear = db
            .ingredient(db.ingredient_by_name("bear").unwrap())
            .unwrap();
        assert!(bear.is_compound);
        assert!(bear.profile.len() >= 4);
    }

    #[test]
    fn synonyms_resolve() {
        let db = curated_db();
        assert_eq!(db.ingredient_by_name("bun"), db.ingredient_by_name("bread"));
        assert_eq!(
            db.ingredient_by_name("lager"),
            db.ingredient_by_name("beer")
        );
        assert_eq!(
            db.ingredient_by_name("curd"),
            db.ingredient_by_name("yogurt")
        );
        assert_eq!(
            db.ingredient_by_name("whisky"),
            db.ingredient_by_name("whiskey")
        );
        assert_eq!(
            db.ingredient_by_name("hing"),
            db.ingredient_by_name("asafoetida")
        );
        assert_eq!(
            db.ingredient_by_name("chile"),
            db.ingredient_by_name("chili")
        );
    }

    #[test]
    fn noisy_entities_removed() {
        let db = curated_db();
        for name in NOISY {
            assert!(
                db.ingredient_by_name(name).is_none(),
                "{name} should be gone"
            );
        }
        // But their slots still exist (tombstoned).
        assert!(db.n_ingredient_slots() > db.n_ingredients());
    }

    #[test]
    fn dairy_cluster_shares_more_than_cross_category() {
        let db = curated_db();
        let milk = db.ingredient_by_name("milk").unwrap();
        let cream = db.ingredient_by_name("cream").unwrap();
        let onion = db.ingredient_by_name("onion").unwrap();
        let within = db.shared_molecules(milk, cream).unwrap();
        let across = db.shared_molecules(milk, onion).unwrap();
        assert!(within > across, "{within} vs {across}");
    }

    #[test]
    fn all_21_categories_populated_or_known() {
        let db = curated_db();
        let mut populated = 0;
        for c in Category::ALL {
            if !db.ingredients_in_category(c).is_empty() {
                populated += 1;
            }
        }
        assert_eq!(populated, 21, "every category should have an ingredient");
    }
}
