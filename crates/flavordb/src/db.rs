//! The flavor database: interned molecules, ingredients, synonyms, and
//! the curation operations the paper describes.

use std::collections::HashMap;

use crate::category::Category;
use crate::error::{FlavorDbError, Result};
use crate::ids::{IngredientId, MoleculeId};
use crate::ingredient::Ingredient;
use crate::molecule::Molecule;
use crate::profile::FlavorProfile;

/// The flavor molecule database.
///
/// Ids are dense and stable: removing an ingredient tombstones its slot
/// (the paper removed 29 noisy entities from the FlavorDB list without
/// renumbering anything downstream).
///
/// ```
/// use culinaria_flavordb::{Category, FlavorDb};
///
/// let mut db = FlavorDb::new();
/// let citral = db.add_molecule("citral", &["citrus"]).unwrap();
/// let limonene = db.add_molecule("limonene", &["citrus"]).unwrap();
/// let lemon = db
///     .add_ingredient("lemon", Category::Fruit, vec![citral, limonene])
///     .unwrap();
/// let ginger = db
///     .add_ingredient("ginger", Category::Spice, vec![citral])
///     .unwrap();
/// assert_eq!(db.shared_molecules(lemon, ginger).unwrap(), 1);
///
/// db.add_synonym("citron", "lemon").unwrap();
/// assert_eq!(db.ingredient_by_name("citron"), Some(lemon));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlavorDb {
    molecules: Vec<Molecule>,
    molecule_by_name: HashMap<String, MoleculeId>,
    /// `None` marks a removed (tombstoned) ingredient.
    ingredients: Vec<Option<Ingredient>>,
    ingredient_by_name: HashMap<String, IngredientId>,
    /// synonym → canonical ingredient id.
    synonyms: HashMap<String, IngredientId>,
}

impl FlavorDb {
    /// An empty database.
    pub fn new() -> Self {
        FlavorDb::default()
    }

    // ----- molecules -------------------------------------------------

    /// Register a molecule. Names are case-insensitive-unique.
    pub fn add_molecule(&mut self, name: &str, descriptors: &[&str]) -> Result<MoleculeId> {
        let key = name.to_lowercase();
        if self.molecule_by_name.contains_key(&key) {
            return Err(FlavorDbError::DuplicateMolecule(name.to_owned()));
        }
        let id = MoleculeId(self.molecules.len() as u32);
        self.molecules.push(Molecule {
            id,
            name: key.clone(),
            descriptors: descriptors.iter().map(|d| d.to_lowercase()).collect(),
        });
        self.molecule_by_name.insert(key, id);
        Ok(id)
    }

    /// Register `n` anonymous molecules (the synthetic generator names
    /// them `mol-<k>`). Returns the contiguous id range.
    pub fn add_anonymous_molecules(&mut self, n: usize) -> std::ops::Range<u32> {
        let start = self.molecules.len() as u32;
        for k in 0..n {
            let id = MoleculeId(start + k as u32);
            let name = format!("mol-{}", id.0);
            self.molecules.push(Molecule {
                id,
                name: name.clone(),
                descriptors: Vec::new(),
            });
            self.molecule_by_name.insert(name, id);
        }
        start..start + n as u32
    }

    /// Number of molecules.
    pub fn n_molecules(&self) -> usize {
        self.molecules.len()
    }

    /// Look up a molecule by id.
    pub fn molecule(&self, id: MoleculeId) -> Result<&Molecule> {
        self.molecules
            .get(id.index())
            .ok_or(FlavorDbError::UnknownMolecule(id.0))
    }

    /// Look up a molecule id by (case-insensitive) name.
    pub fn molecule_by_name(&self, name: &str) -> Option<MoleculeId> {
        self.molecule_by_name.get(&name.to_lowercase()).copied()
    }

    /// Iterate over all molecules.
    pub fn molecules(&self) -> impl Iterator<Item = &Molecule> {
        self.molecules.iter()
    }

    // ----- ingredients -----------------------------------------------

    fn validate_profile(&self, molecules: &[MoleculeId]) -> Result<()> {
        for &m in molecules {
            if m.index() >= self.molecules.len() {
                return Err(FlavorDbError::UnknownMolecule(m.0));
            }
        }
        Ok(())
    }

    fn insert_ingredient(
        &mut self,
        name: &str,
        category: Category,
        profile: FlavorProfile,
        is_compound: bool,
    ) -> Result<IngredientId> {
        let key = name.to_lowercase();
        if self.ingredient_by_name.contains_key(&key) || self.synonyms.contains_key(&key) {
            return Err(FlavorDbError::DuplicateIngredient(name.to_owned()));
        }
        let id = IngredientId(self.ingredients.len() as u32);
        self.ingredients.push(Some(Ingredient {
            id,
            name: key.clone(),
            category,
            profile,
            is_compound,
        }));
        self.ingredient_by_name.insert(key, id);
        Ok(id)
    }

    /// Raw insertion used by snapshot decoding: explicit profile and
    /// compound flag, bypassing constituent resolution.
    pub(crate) fn add_ingredient_raw(
        &mut self,
        name: &str,
        category: Category,
        profile: FlavorProfile,
        is_compound: bool,
    ) -> Result<IngredientId> {
        self.insert_ingredient(name, category, profile, is_compound)
    }

    /// Raw synonym insertion used by snapshot decoding (no canonical
    /// liveness check; the encoder only writes valid links).
    pub(crate) fn add_synonym_raw(&mut self, synonym: String, id: IngredientId) {
        self.synonyms.insert(synonym, id);
    }

    /// Register a basic ingredient with an explicit flavor profile.
    pub fn add_ingredient(
        &mut self,
        name: &str,
        category: Category,
        molecules: Vec<MoleculeId>,
    ) -> Result<IngredientId> {
        self.validate_profile(&molecules)?;
        self.insert_ingredient(name, category, FlavorProfile::new(molecules), false)
    }

    /// Register a compound ingredient whose profile is the pooled union
    /// of its constituents (§III.B: mayonnaise = oil + egg + lemon
    /// juice). Constituents must already exist and be non-empty.
    pub fn add_compound_ingredient(
        &mut self,
        name: &str,
        category: Category,
        constituents: &[IngredientId],
    ) -> Result<IngredientId> {
        if constituents.is_empty() {
            return Err(FlavorDbError::InvalidCompound(name.to_owned()));
        }
        let mut profiles = Vec::with_capacity(constituents.len());
        for &c in constituents {
            profiles.push(&self.ingredient(c)?.profile);
        }
        let pooled = FlavorProfile::pooled(profiles);
        self.insert_ingredient(name, category, pooled, true)
    }

    /// Total slots including tombstones (the id space).
    pub fn n_ingredient_slots(&self) -> usize {
        self.ingredients.len()
    }

    /// Number of live (non-removed) ingredients.
    pub fn n_ingredients(&self) -> usize {
        self.ingredients.iter().filter(|i| i.is_some()).count()
    }

    /// Look up a live ingredient by id.
    pub fn ingredient(&self, id: IngredientId) -> Result<&Ingredient> {
        self.ingredients
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .ok_or_else(|| FlavorDbError::UnknownIngredient(id.to_string()))
    }

    /// Resolve a name or registered synonym to a live ingredient id.
    pub fn ingredient_by_name(&self, name: &str) -> Option<IngredientId> {
        let key = name.to_lowercase();
        let id = self
            .ingredient_by_name
            .get(&key)
            .or_else(|| self.synonyms.get(&key))
            .copied()?;
        // Tombstoned entries do not resolve.
        self.ingredients[id.index()].as_ref().map(|i| i.id)
    }

    /// Iterate over live ingredients.
    pub fn ingredients(&self) -> impl Iterator<Item = &Ingredient> {
        self.ingredients.iter().filter_map(|slot| slot.as_ref())
    }

    /// Live ingredient ids.
    pub fn ingredient_ids(&self) -> impl Iterator<Item = IngredientId> + '_ {
        self.ingredients().map(|i| i.id)
    }

    // ----- curation ---------------------------------------------------

    /// Remove an ingredient by name (the paper dropped 29 generic/noisy
    /// entities). The slot is tombstoned; ids of other ingredients are
    /// unaffected. Synonyms pointing at it stop resolving.
    pub fn remove_ingredient(&mut self, name: &str) -> Result<IngredientId> {
        let key = name.to_lowercase();
        let id = self
            .ingredient_by_name
            .get(&key)
            .copied()
            .ok_or_else(|| FlavorDbError::UnknownIngredient(name.to_owned()))?;
        match self.ingredients[id.index()].take() {
            Some(_) => {
                self.ingredient_by_name.remove(&key);
                Ok(id)
            }
            None => Err(FlavorDbError::UnknownIngredient(name.to_owned())),
        }
    }

    /// Register `synonym` for the existing ingredient `canonical`
    /// (bun → bread, lager → beer, curd → yogurt).
    pub fn add_synonym(&mut self, synonym: &str, canonical: &str) -> Result<()> {
        let skey = synonym.to_lowercase();
        if self.ingredient_by_name.contains_key(&skey) {
            return Err(FlavorDbError::SynonymShadowsCanonical(synonym.to_owned()));
        }
        let id = self
            .ingredient_by_name(canonical)
            .ok_or_else(|| FlavorDbError::UnknownIngredient(canonical.to_owned()))?;
        self.synonyms.insert(skey, id);
        Ok(())
    }

    /// All registered synonyms as `(synonym, canonical-id)` pairs.
    pub fn synonyms(&self) -> impl Iterator<Item = (&str, IngredientId)> {
        self.synonyms.iter().map(|(s, &id)| (s.as_str(), id))
    }

    // ----- pairing primitives ----------------------------------------

    /// Number of flavor molecules shared by two ingredients.
    pub fn shared_molecules(&self, a: IngredientId, b: IngredientId) -> Result<usize> {
        let pa = &self.ingredient(a)?.profile;
        let pb = &self.ingredient(b)?.profile;
        Ok(pa.shared_count(pb))
    }

    /// Ids of live ingredients in a category.
    pub fn ingredients_in_category(&self, category: Category) -> Vec<IngredientId> {
        self.ingredients()
            .filter(|i| i.category == category)
            .map(|i| i.id)
            .collect()
    }

    /// A copy of the database with every live ingredient's profile
    /// replaced by `f(ingredient)`. Ids, names, categories, synonyms
    /// and tombstones are preserved.
    ///
    /// This powers robustness analyses ("how robust are the patterns to
    /// changes in flavor profiles?"): perturb profiles, re-run the
    /// pairing pipeline, compare.
    pub fn map_profiles(&self, mut f: impl FnMut(&Ingredient) -> FlavorProfile) -> FlavorDb {
        let mut out = self.clone();
        for slot in &mut out.ingredients {
            if let Some(ing) = slot.as_mut() {
                ing.profile = f(ing);
            }
        }
        out
    }

    /// Mean profile size over live ingredients (0 when none).
    pub fn mean_profile_size(&self) -> f64 {
        let mut n = 0usize;
        let mut total = 0usize;
        for ing in self.ingredients() {
            n += 1;
            total += ing.profile.len();
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_basics() -> (FlavorDb, IngredientId, IngredientId, IngredientId) {
        let mut db = FlavorDb::new();
        let m: Vec<MoleculeId> = (0..10)
            .map(|k| db.add_molecule(&format!("mol{k}"), &[]).unwrap())
            .collect();
        let milk = db
            .add_ingredient("milk", Category::Dairy, vec![m[0], m[1], m[2]])
            .unwrap();
        let cream = db
            .add_ingredient("cream", Category::Dairy, vec![m[1], m[2], m[3]])
            .unwrap();
        let lemon = db
            .add_ingredient("lemon juice", Category::Fruit, vec![m[7], m[8]])
            .unwrap();
        (db, milk, cream, lemon)
    }

    #[test]
    fn add_and_lookup() {
        let (db, milk, ..) = db_with_basics();
        assert_eq!(db.n_molecules(), 10);
        assert_eq!(db.n_ingredients(), 3);
        assert_eq!(db.ingredient_by_name("Milk"), Some(milk));
        assert_eq!(db.ingredient(milk).unwrap().category, Category::Dairy);
        assert!(db.ingredient_by_name("nope").is_none());
        assert_eq!(db.molecule_by_name("MOL3"), Some(MoleculeId(3)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut db, ..) = db_with_basics();
        assert!(matches!(
            db.add_ingredient("milk", Category::Dairy, vec![]),
            Err(FlavorDbError::DuplicateIngredient(_))
        ));
        assert!(matches!(
            db.add_molecule("mol0", &[]),
            Err(FlavorDbError::DuplicateMolecule(_))
        ));
    }

    #[test]
    fn profile_validation() {
        let (mut db, ..) = db_with_basics();
        let err = db
            .add_ingredient("ghost", Category::Plant, vec![MoleculeId(99)])
            .unwrap_err();
        assert_eq!(err, FlavorDbError::UnknownMolecule(99));
    }

    #[test]
    fn compound_pools_profiles() {
        let (mut db, milk, cream, _) = db_with_basics();
        // "half half" = milk + cream, exactly the paper's example.
        let hh = db
            .add_compound_ingredient("half half", Category::Dairy, &[milk, cream])
            .unwrap();
        let ing = db.ingredient(hh).unwrap();
        assert!(ing.is_compound);
        assert_eq!(ing.profile.len(), 4); // m0..m3 pooled
        assert!(matches!(
            db.add_compound_ingredient("nothing", Category::Dish, &[]),
            Err(FlavorDbError::InvalidCompound(_))
        ));
    }

    #[test]
    fn shared_molecules_counts() {
        let (db, milk, cream, lemon) = db_with_basics();
        assert_eq!(db.shared_molecules(milk, cream).unwrap(), 2);
        assert_eq!(db.shared_molecules(milk, lemon).unwrap(), 0);
    }

    #[test]
    fn synonym_resolution() {
        let (mut db, milk, ..) = db_with_basics();
        db.add_synonym("doodh", "milk").unwrap();
        assert_eq!(db.ingredient_by_name("doodh"), Some(milk));
        // Synonyms may not shadow canonical names.
        assert!(matches!(
            db.add_synonym("cream", "milk"),
            Err(FlavorDbError::SynonymShadowsCanonical(_))
        ));
        // Unknown canonical rejected.
        assert!(db.add_synonym("x", "unknown-thing").is_err());
        // A new ingredient may not take a name already used by a synonym.
        assert!(db.add_ingredient("doodh", Category::Dairy, vec![]).is_err());
    }

    #[test]
    fn removal_tombstones_and_preserves_ids() {
        let (mut db, milk, cream, _) = db_with_basics();
        let removed = db.remove_ingredient("milk").unwrap();
        assert_eq!(removed, milk);
        assert_eq!(db.n_ingredients(), 2);
        assert_eq!(db.n_ingredient_slots(), 3);
        assert!(db.ingredient(milk).is_err());
        assert!(db.ingredient_by_name("milk").is_none());
        // Other ids unaffected.
        assert_eq!(db.ingredient(cream).unwrap().name, "cream");
        // Double removal errors.
        assert!(db.remove_ingredient("milk").is_err());
    }

    #[test]
    fn synonym_to_removed_ingredient_stops_resolving() {
        let (mut db, ..) = db_with_basics();
        db.add_synonym("doodh", "milk").unwrap();
        db.remove_ingredient("milk").unwrap();
        assert!(db.ingredient_by_name("doodh").is_none());
    }

    #[test]
    fn category_listing() {
        let (db, milk, cream, lemon) = db_with_basics();
        let dairy = db.ingredients_in_category(Category::Dairy);
        assert_eq!(dairy, vec![milk, cream]);
        assert_eq!(db.ingredients_in_category(Category::Fruit), vec![lemon]);
        assert!(db.ingredients_in_category(Category::Spice).is_empty());
    }

    #[test]
    fn anonymous_molecules_bulk() {
        let mut db = FlavorDb::new();
        let range = db.add_anonymous_molecules(100);
        assert_eq!(range, 0..100);
        assert_eq!(db.n_molecules(), 100);
        assert_eq!(db.molecule_by_name("mol-42"), Some(MoleculeId(42)));
    }

    #[test]
    fn map_profiles_transforms_in_place() {
        let (db, milk, cream, lemon) = db_with_basics();
        let emptied = db.map_profiles(|_| FlavorProfile::empty());
        assert_eq!(emptied.n_ingredients(), db.n_ingredients());
        for id in [milk, cream, lemon] {
            assert!(emptied.ingredient(id).unwrap().profile.is_empty());
            // Names/categories preserved.
            assert_eq!(
                emptied.ingredient(id).unwrap().name,
                db.ingredient(id).unwrap().name
            );
        }
        // Original untouched.
        assert!(!db.ingredient(milk).unwrap().profile.is_empty());

        // Identity map preserves everything.
        let same = db.map_profiles(|ing| ing.profile.clone());
        for (a, b) in db.ingredients().zip(same.ingredients()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mean_profile_size() {
        let (db, ..) = db_with_basics();
        // (3 + 3 + 2) / 3
        assert!((db.mean_profile_size() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(FlavorDb::new().mean_profile_size(), 0.0);
    }
}
