//! Binary snapshots of a [`FlavorDb`].
//!
//! The database is rebuilt from generators in milliseconds, but the
//! paper's framing is a *published dataset*; snapshots give downstream
//! users a stable artifact. Format `CFDB1` (all integers little-endian):
//!
//! ```text
//! magic "CFDB1"
//! u32 n_molecules
//!   per molecule: str name, u16 n_descriptors, str × n
//! u32 n_ingredient_slots
//!   per slot: u8 tag (0 = tombstone, 1 = live)
//!     live: str name, u8 category, u8 is_compound,
//!           u32 profile_len, u32 × len (molecule ids)
//! u32 n_synonyms
//!   per synonym: str synonym, u32 ingredient id
//! ```
//!
//! `str` = u32 byte length + UTF-8 bytes.

// User-reachable serialization/ingestion surface: panicking on bad
// data is forbidden here — return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::category::Category;
use crate::db::FlavorDb;
use crate::error::{FlavorDbError, Result};
use crate::ids::{IngredientId, MoleculeId};
use crate::profile::FlavorProfile;

const MAGIC: &[u8; 5] = b"CFDB1";

fn put_str(buf: &mut BytesMut, s: &str) -> Result<()> {
    let len = u32::try_from(s.len()).map_err(|_| {
        FlavorDbError::Snapshot(format!(
            "string of {} bytes exceeds the u32 format limit",
            s.len()
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn put_count(buf: &mut BytesMut, n: usize, what: &str) -> Result<()> {
    let n = u32::try_from(n)
        .map_err(|_| FlavorDbError::Snapshot(format!("{what} {n} exceeds the u32 format limit")))?;
    buf.put_u32_le(n);
    Ok(())
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(FlavorDbError::Snapshot("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(FlavorDbError::Snapshot("truncated string body".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| FlavorDbError::Snapshot("invalid utf-8".into()))
}

/// Encode a database to its binary snapshot.
///
/// # Errors
///
/// Returns [`FlavorDbError::Snapshot`] when a value does not fit the
/// format's fixed-width fields (a string or count beyond `u32::MAX`, a
/// molecule with more than `u16::MAX` descriptors) — the writer checks
/// every conversion instead of silently truncating and emitting a
/// snapshot that decodes to different data.
pub fn to_snapshot(db: &FlavorDb) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);

    put_count(&mut buf, db.n_molecules(), "molecule count")?;
    for m in db.molecules() {
        put_str(&mut buf, &m.name)?;
        let nd = u16::try_from(m.descriptors.len()).map_err(|_| {
            FlavorDbError::Snapshot(format!(
                "molecule '{}' has {} descriptors, exceeding the u16 format limit",
                m.name,
                m.descriptors.len()
            ))
        })?;
        buf.put_u16_le(nd);
        for d in &m.descriptors {
            put_str(&mut buf, d)?;
        }
    }

    put_count(&mut buf, db.n_ingredient_slots(), "ingredient slot count")?;
    for slot in 0..db.n_ingredient_slots() {
        match db.ingredient(IngredientId(slot as u32)) {
            Ok(ing) => {
                buf.put_u8(1);
                put_str(&mut buf, &ing.name)?;
                buf.put_u8(ing.category.index() as u8);
                buf.put_u8(u8::from(ing.is_compound));
                put_count(&mut buf, ing.profile.len(), "profile length")?;
                for m in ing.profile.molecules() {
                    buf.put_u32_le(m.0);
                }
            }
            Err(_) => buf.put_u8(0),
        }
    }

    let synonyms: Vec<(&str, IngredientId)> = db.synonyms().collect();
    put_count(&mut buf, synonyms.len(), "synonym count")?;
    for (syn, id) in synonyms {
        put_str(&mut buf, syn)?;
        buf.put_u32_le(id.0);
    }
    Ok(buf.freeze())
}

/// Decode a binary snapshot back into a database.
pub fn from_snapshot(mut buf: Bytes) -> Result<FlavorDb> {
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(FlavorDbError::Snapshot("bad magic".into()));
    }
    let mut db = FlavorDb::new();

    let need = |buf: &Bytes, n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(FlavorDbError::Snapshot(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };

    need(&buf, 4, "molecule count")?;
    let n_molecules = buf.get_u32_le() as usize;
    for _ in 0..n_molecules {
        let name = get_str(&mut buf)?;
        need(&buf, 2, "descriptor count")?;
        let nd = buf.get_u16_le() as usize;
        let mut descriptors = Vec::with_capacity(nd);
        for _ in 0..nd {
            descriptors.push(get_str(&mut buf)?);
        }
        let refs: Vec<&str> = descriptors.iter().map(String::as_str).collect();
        db.add_molecule(&name, &refs)
            .map_err(|e| FlavorDbError::Snapshot(format!("molecule replay: {e}")))?;
    }

    need(&buf, 4, "ingredient count")?;
    let n_slots = buf.get_u32_le() as usize;
    for slot in 0..n_slots {
        need(&buf, 1, "slot tag")?;
        match buf.get_u8() {
            0 => {
                // Recreate the tombstone to keep the id space identical.
                let placeholder = format!("__tombstone_{slot}");
                db.add_ingredient_raw(&placeholder, Category::Plant, FlavorProfile::empty(), false)
                    .map_err(|e| FlavorDbError::Snapshot(format!("tombstone replay: {e}")))?;
                db.remove_ingredient(&placeholder)
                    .map_err(|e| FlavorDbError::Snapshot(format!("tombstone replay: {e}")))?;
            }
            1 => {
                let name = get_str(&mut buf)?;
                need(&buf, 2, "category/compound")?;
                let cat = Category::from_index(buf.get_u8() as usize)
                    .ok_or_else(|| FlavorDbError::Snapshot("bad category index".into()))?;
                let is_compound = buf.get_u8() != 0;
                need(&buf, 4, "profile length")?;
                let plen = buf.get_u32_le() as usize;
                need(&buf, plen * 4, "profile body")?;
                let mut molecules = Vec::with_capacity(plen);
                for _ in 0..plen {
                    let raw = buf.get_u32_le();
                    if raw as usize >= n_molecules {
                        return Err(FlavorDbError::Snapshot(format!(
                            "profile references molecule {raw} out of {n_molecules}"
                        )));
                    }
                    molecules.push(MoleculeId(raw));
                }
                db.add_ingredient_raw(&name, cat, FlavorProfile::new(molecules), is_compound)
                    .map_err(|e| FlavorDbError::Snapshot(format!("ingredient replay: {e}")))?;
            }
            other => {
                return Err(FlavorDbError::Snapshot(format!("bad slot tag {other}")));
            }
        }
    }

    need(&buf, 4, "synonym count")?;
    let n_syn = buf.get_u32_le() as usize;
    for _ in 0..n_syn {
        let syn = get_str(&mut buf)?;
        need(&buf, 4, "synonym target")?;
        let id = IngredientId(buf.get_u32_le());
        if id.index() >= n_slots {
            return Err(FlavorDbError::Snapshot(
                "synonym target out of range".into(),
            ));
        }
        db.add_synonym_raw(syn, id);
    }

    if buf.has_remaining() {
        return Err(FlavorDbError::Snapshot(format!(
            "{} trailing bytes after snapshot",
            buf.remaining()
        )));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curated::curated_db;
    use crate::generator::{generate_flavor_db, GeneratorConfig};

    fn assert_dbs_equal(a: &FlavorDb, b: &FlavorDb) {
        assert_eq!(a.n_molecules(), b.n_molecules());
        assert_eq!(a.n_ingredient_slots(), b.n_ingredient_slots());
        assert_eq!(a.n_ingredients(), b.n_ingredients());
        for (x, y) in a.molecules().zip(b.molecules()) {
            assert_eq!(x, y);
        }
        for slot in 0..a.n_ingredient_slots() {
            let id = IngredientId(slot as u32);
            match (a.ingredient(id), b.ingredient(id)) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                _ => panic!("slot {slot} liveness differs"),
            }
        }
        let mut sa: Vec<_> = a.synonyms().collect();
        let mut sb: Vec<_> = b.synonyms().collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn curated_roundtrip() {
        let db = curated_db();
        let snap = to_snapshot(&db).unwrap();
        let back = from_snapshot(snap).unwrap();
        assert_dbs_equal(&db, &back);
        // Synonym resolution survives.
        assert_eq!(back.ingredient_by_name("bun"), db.ingredient_by_name("bun"));
    }

    #[test]
    fn generated_roundtrip() {
        let db = generate_flavor_db(&GeneratorConfig::tiny(5));
        let back = from_snapshot(to_snapshot(&db).unwrap()).unwrap();
        assert_dbs_equal(&db, &back);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_snapshot(Bytes::from_static(b"NOPE!")).unwrap_err();
        assert!(matches!(err, FlavorDbError::Snapshot(_)));
        let err = from_snapshot(Bytes::from_static(b"")).unwrap_err();
        assert!(matches!(err, FlavorDbError::Snapshot(_)));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let db = curated_db();
        let snap = to_snapshot(&db).unwrap();
        // Chop the snapshot at several points; decoding must error, not
        // panic.
        for cut in [5, 9, 20, snap.len() / 2, snap.len() - 3] {
            let partial = snap.slice(0..cut);
            assert!(
                from_snapshot(partial).is_err(),
                "cut at {cut} should fail cleanly"
            );
        }
    }

    #[test]
    fn corrupt_category_rejected() {
        let db = curated_db();
        let snap = to_snapshot(&db).unwrap().to_vec();
        // Find the first live-slot category byte and corrupt it. Layout:
        // we can't easily index it, so corrupt every byte in a window and
        // require no panics (errors allowed, success allowed when the
        // byte was not load-bearing).
        for i in 0..snap.len().min(200) {
            let mut c = snap.clone();
            c[i] ^= 0xFF;
            let _ = from_snapshot(Bytes::from(c)); // must not panic
        }
    }
}
