//! Flavor profiles: sorted sets of molecule ids.
//!
//! The food-pairing score is built from pairwise profile intersections,
//! so the representation is a sorted, deduplicated `Vec<MoleculeId>`
//! giving O(min(|A|, |B|)) merge-style intersection without hashing.

use crate::ids::MoleculeId;

/// The flavor profile of an ingredient: the set of its flavor molecules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlavorProfile {
    /// Sorted, deduplicated molecule ids.
    molecules: Vec<MoleculeId>,
}

impl FlavorProfile {
    /// An empty profile (additives like food coloring have one).
    pub fn empty() -> Self {
        FlavorProfile::default()
    }

    /// Build from arbitrary ids; sorts and deduplicates.
    pub fn new(mut molecules: Vec<MoleculeId>) -> Self {
        molecules.sort_unstable();
        molecules.dedup();
        FlavorProfile { molecules }
    }

    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.molecules.len()
    }

    /// True if no molecules.
    pub fn is_empty(&self) -> bool {
        self.molecules.is_empty()
    }

    /// Sorted molecule ids.
    pub fn molecules(&self) -> &[MoleculeId] {
        &self.molecules
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: MoleculeId) -> bool {
        self.molecules.binary_search(&id).is_ok()
    }

    /// Size of the intersection with `other` (sorted-merge walk).
    pub fn shared_count(&self, other: &FlavorProfile) -> usize {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut i = 0;
        let mut j = 0;
        let mut shared = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// The intersection as a new profile.
    pub fn intersection(&self, other: &FlavorProfile) -> FlavorProfile {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let mut i = 0;
        let mut j = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        FlavorProfile { molecules: out }
    }

    /// The union as a new profile — this is how compound-ingredient
    /// profiles are pooled from constituents.
    pub fn union(&self, other: &FlavorProfile) -> FlavorProfile {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let mut i = 0;
        let mut j = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        FlavorProfile { molecules: out }
    }

    /// Pool many profiles into one (union fold).
    pub fn pooled<'a>(profiles: impl IntoIterator<Item = &'a FlavorProfile>) -> FlavorProfile {
        let mut all: Vec<MoleculeId> = Vec::new();
        for p in profiles {
            all.extend_from_slice(&p.molecules);
        }
        FlavorProfile::new(all)
    }

    /// Jaccard similarity |A∩B| / |A∪B|; 0 when both are empty.
    pub fn jaccard(&self, other: &FlavorProfile) -> f64 {
        let inter = self.shared_count(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl FromIterator<MoleculeId> for FlavorProfile {
    fn from_iter<T: IntoIterator<Item = MoleculeId>>(iter: T) -> Self {
        FlavorProfile::new(iter.into_iter().collect())
    }
}

impl FromIterator<u32> for FlavorProfile {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        FlavorProfile::new(iter.into_iter().map(MoleculeId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ids: &[u32]) -> FlavorProfile {
        ids.iter().copied().collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let p = profile(&[5, 1, 3, 1, 5]);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.molecules(),
            &[MoleculeId(1), MoleculeId(3), MoleculeId(5)]
        );
    }

    #[test]
    fn contains_binary_search() {
        let p = profile(&[2, 4, 6]);
        assert!(p.contains(MoleculeId(4)));
        assert!(!p.contains(MoleculeId(5)));
    }

    #[test]
    fn shared_count_cases() {
        assert_eq!(profile(&[1, 2, 3]).shared_count(&profile(&[2, 3, 4])), 2);
        assert_eq!(profile(&[1, 2]).shared_count(&profile(&[3, 4])), 0);
        assert_eq!(profile(&[]).shared_count(&profile(&[1])), 0);
        let p = profile(&[1, 2, 3]);
        assert_eq!(p.shared_count(&p), 3);
    }

    #[test]
    fn intersection_and_union() {
        let a = profile(&[1, 2, 3, 7]);
        let b = profile(&[2, 3, 9]);
        assert_eq!(a.intersection(&b), profile(&[2, 3]));
        assert_eq!(a.union(&b), profile(&[1, 2, 3, 7, 9]));
        // |A∩B| + |A∪B| = |A| + |B|.
        assert_eq!(
            a.intersection(&b).len() + a.union(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn pooled_unions_all() {
        let parts = [profile(&[1, 2]), profile(&[2, 3]), profile(&[9])];
        let pooled = FlavorProfile::pooled(parts.iter());
        assert_eq!(pooled, profile(&[1, 2, 3, 9]));
    }

    #[test]
    fn jaccard_values() {
        let a = profile(&[1, 2, 3]);
        let b = profile(&[2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(FlavorProfile::empty().jaccard(&FlavorProfile::empty()), 0.0);
    }

    #[test]
    fn empty_profile() {
        let e = FlavorProfile::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.union(&profile(&[1])), profile(&[1]));
    }
}
