//! Flavor profiles: sorted sets of molecule ids.
//!
//! The food-pairing score is built from pairwise profile intersections,
//! so the representation is a sorted, deduplicated `Vec<MoleculeId>`
//! giving O(min(|A|, |B|)) merge-style intersection without hashing.
//!
//! For cuisine-scale work the sorted-merge walk is still the hot loop:
//! an overlap matrix over an n-ingredient pool needs n²/2 intersections
//! over profiles of hundreds of molecules each. [`MoleculeUniverse`]
//! remaps the molecules that actually occur in a pool to dense bit
//! positions, and [`BitProfile`] packs a profile into `u64` words over
//! that universe, turning each intersection into a handful of
//! word-ANDs + popcounts.

use crate::ids::MoleculeId;

/// The flavor profile of an ingredient: the set of its flavor molecules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlavorProfile {
    /// Sorted, deduplicated molecule ids.
    molecules: Vec<MoleculeId>,
}

impl FlavorProfile {
    /// An empty profile (additives like food coloring have one).
    pub fn empty() -> Self {
        FlavorProfile::default()
    }

    /// Build from arbitrary ids; sorts and deduplicates.
    pub fn new(mut molecules: Vec<MoleculeId>) -> Self {
        molecules.sort_unstable();
        molecules.dedup();
        FlavorProfile { molecules }
    }

    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.molecules.len()
    }

    /// True if no molecules.
    pub fn is_empty(&self) -> bool {
        self.molecules.is_empty()
    }

    /// Sorted molecule ids.
    pub fn molecules(&self) -> &[MoleculeId] {
        &self.molecules
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: MoleculeId) -> bool {
        self.molecules.binary_search(&id).is_ok()
    }

    /// Size of the intersection with `other` (sorted-merge walk).
    pub fn shared_count(&self, other: &FlavorProfile) -> usize {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut i = 0;
        let mut j = 0;
        let mut shared = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// The intersection as a new profile.
    pub fn intersection(&self, other: &FlavorProfile) -> FlavorProfile {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let mut i = 0;
        let mut j = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        FlavorProfile { molecules: out }
    }

    /// The union as a new profile — this is how compound-ingredient
    /// profiles are pooled from constituents.
    pub fn union(&self, other: &FlavorProfile) -> FlavorProfile {
        let (a, b) = (&self.molecules, &other.molecules);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let mut i = 0;
        let mut j = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        FlavorProfile { molecules: out }
    }

    /// Pool many profiles into one (union fold).
    pub fn pooled<'a>(profiles: impl IntoIterator<Item = &'a FlavorProfile>) -> FlavorProfile {
        let mut all: Vec<MoleculeId> = Vec::new();
        for p in profiles {
            all.extend_from_slice(&p.molecules);
        }
        FlavorProfile::new(all)
    }

    /// Jaccard similarity |A∩B| / |A∪B|; 0 when both are empty.
    pub fn jaccard(&self, other: &FlavorProfile) -> f64 {
        let inter = self.shared_count(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// A dense remap of the molecules occurring in some ingredient pool.
///
/// FlavorDB molecule ids are global and sparse relative to any one
/// cuisine: a pool of ~100 ingredients typically touches a small
/// fraction of the molecule table. The universe collects the distinct
/// molecules of the pool's profiles (sorted, so the mapping is
/// deterministic) and assigns each a bit position `0..len`, sizing the
/// [`BitProfile`] words to the pool instead of the whole database.
#[derive(Debug, Clone, Default)]
pub struct MoleculeUniverse {
    /// Sorted distinct molecule ids; position = bit index.
    molecules: Vec<MoleculeId>,
}

impl MoleculeUniverse {
    /// Collect the universe of every molecule in `profiles`.
    pub fn build<'a>(profiles: impl IntoIterator<Item = &'a FlavorProfile>) -> MoleculeUniverse {
        MoleculeUniverse::build_from_slices(profiles.into_iter().map(|p| p.molecules()))
    }

    /// Collect the universe from raw sorted-id slices — the borrowed
    /// twin of [`MoleculeUniverse::build`], used when profiles live in
    /// a zero-copy artifact instead of owned [`FlavorProfile`]s. The
    /// result is identical for the same id multisets.
    pub fn build_from_slices<'a>(
        profiles: impl IntoIterator<Item = &'a [MoleculeId]>,
    ) -> MoleculeUniverse {
        let mut molecules: Vec<MoleculeId> = Vec::new();
        for p in profiles {
            molecules.extend_from_slice(p);
        }
        molecules.sort_unstable();
        molecules.dedup();
        MoleculeUniverse { molecules }
    }

    /// Number of distinct molecules (= number of bit positions).
    pub fn len(&self) -> usize {
        self.molecules.len()
    }

    /// True when no molecules were collected.
    pub fn is_empty(&self) -> bool {
        self.molecules.is_empty()
    }

    /// `u64` words needed per [`BitProfile`].
    pub fn words(&self) -> usize {
        self.molecules.len().div_ceil(64)
    }

    /// Bit position of a molecule, if it is in the universe.
    pub fn bit_of(&self, id: MoleculeId) -> Option<usize> {
        self.molecules.binary_search(&id).ok()
    }

    /// Pack a profile into bit words over this universe. Molecules
    /// outside the universe are dropped — callers build the universe
    /// from the same pool they pack, so nothing is lost in practice.
    pub fn pack(&self, profile: &FlavorProfile) -> BitProfile {
        self.pack_ids(&profile.molecules)
    }

    /// Pack a raw id slice — the borrowed twin of
    /// [`MoleculeUniverse::pack`], bit-identical for the same ids.
    pub fn pack_ids(&self, molecules: &[MoleculeId]) -> BitProfile {
        let mut words = vec![0u64; self.words()];
        for &m in molecules {
            if let Some(bit) = self.bit_of(m) {
                words[bit / 64] |= 1u64 << (bit % 64);
            }
        }
        BitProfile { words }
    }
}

/// A flavor profile packed as a bitset over a [`MoleculeUniverse`].
///
/// Two profiles packed over the *same* universe intersect in
/// O(words) word-ANDs + popcounts; comparing profiles from different
/// universes is a logic error (lengths differ, and bit positions mean
/// different molecules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitProfile {
    words: Vec<u64>,
}

impl BitProfile {
    /// Number of molecules set.
    pub fn count_ones(&self) -> usize {
        crate::kernel::popcount(&self.words) as usize
    }

    /// The packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Size of the intersection: lane-widened word-AND + popcount
    /// (see [`crate::kernel`]).
    ///
    /// # Panics
    /// Debug-asserts both profiles come from the same universe (equal
    /// word counts).
    #[inline]
    pub fn shared_count(&self, other: &BitProfile) -> usize {
        debug_assert_eq!(
            self.words.len(),
            other.words.len(),
            "bit profiles from different universes"
        );
        crate::kernel::and_popcount(&self.words, &other.words) as usize
    }
}

impl FromIterator<MoleculeId> for FlavorProfile {
    fn from_iter<T: IntoIterator<Item = MoleculeId>>(iter: T) -> Self {
        FlavorProfile::new(iter.into_iter().collect())
    }
}

impl FromIterator<u32> for FlavorProfile {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        FlavorProfile::new(iter.into_iter().map(MoleculeId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ids: &[u32]) -> FlavorProfile {
        ids.iter().copied().collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let p = profile(&[5, 1, 3, 1, 5]);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.molecules(),
            &[MoleculeId(1), MoleculeId(3), MoleculeId(5)]
        );
    }

    #[test]
    fn contains_binary_search() {
        let p = profile(&[2, 4, 6]);
        assert!(p.contains(MoleculeId(4)));
        assert!(!p.contains(MoleculeId(5)));
    }

    #[test]
    fn shared_count_cases() {
        assert_eq!(profile(&[1, 2, 3]).shared_count(&profile(&[2, 3, 4])), 2);
        assert_eq!(profile(&[1, 2]).shared_count(&profile(&[3, 4])), 0);
        assert_eq!(profile(&[]).shared_count(&profile(&[1])), 0);
        let p = profile(&[1, 2, 3]);
        assert_eq!(p.shared_count(&p), 3);
    }

    #[test]
    fn intersection_and_union() {
        let a = profile(&[1, 2, 3, 7]);
        let b = profile(&[2, 3, 9]);
        assert_eq!(a.intersection(&b), profile(&[2, 3]));
        assert_eq!(a.union(&b), profile(&[1, 2, 3, 7, 9]));
        // |A∩B| + |A∪B| = |A| + |B|.
        assert_eq!(
            a.intersection(&b).len() + a.union(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn pooled_unions_all() {
        let parts = [profile(&[1, 2]), profile(&[2, 3]), profile(&[9])];
        let pooled = FlavorProfile::pooled(parts.iter());
        assert_eq!(pooled, profile(&[1, 2, 3, 9]));
    }

    #[test]
    fn jaccard_values() {
        let a = profile(&[1, 2, 3]);
        let b = profile(&[2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(FlavorProfile::empty().jaccard(&FlavorProfile::empty()), 0.0);
    }

    #[test]
    fn empty_profile() {
        let e = FlavorProfile::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.union(&profile(&[1])), profile(&[1]));
    }

    #[test]
    fn universe_collects_sorted_distinct() {
        let ps = [profile(&[9, 1]), profile(&[1, 70]), profile(&[200])];
        let u = MoleculeUniverse::build(ps.iter());
        assert_eq!(u.len(), 4);
        assert_eq!(u.words(), 1);
        assert_eq!(u.bit_of(MoleculeId(1)), Some(0));
        assert_eq!(u.bit_of(MoleculeId(200)), Some(3));
        assert_eq!(u.bit_of(MoleculeId(5)), None);
        assert!(MoleculeUniverse::default().is_empty());
    }

    #[test]
    fn bit_shared_count_matches_sorted_merge() {
        // Spread ids across several words (ids up to 300 → ≥ 5 words).
        let a = profile(&[0, 63, 64, 65, 127, 128, 250, 300]);
        let b = profile(&[1, 63, 65, 128, 129, 300]);
        let c = profile(&[2, 4, 6]);
        let u = MoleculeUniverse::build([&a, &b, &c]);
        let (ba, bb, bc) = (u.pack(&a), u.pack(&b), u.pack(&c));
        assert_eq!(ba.shared_count(&bb), a.shared_count(&b));
        assert_eq!(ba.shared_count(&bc), a.shared_count(&c));
        assert_eq!(bb.shared_count(&bc), b.shared_count(&c));
        assert_eq!(ba.count_ones(), a.len());
        assert_eq!(ba.shared_count(&ba), a.len());
    }

    #[test]
    fn pack_drops_out_of_universe_molecules() {
        let base = profile(&[1, 2, 3]);
        let u = MoleculeUniverse::build([&base]);
        let packed = u.pack(&profile(&[2, 3, 99]));
        assert_eq!(packed.count_ones(), 2);
        assert_eq!(packed.shared_count(&u.pack(&base)), 2);
    }

    #[test]
    fn slice_twins_match_owned_paths() {
        let ps = [profile(&[9, 1]), profile(&[1, 70]), profile(&[200])];
        let owned = MoleculeUniverse::build(ps.iter());
        let borrowed = MoleculeUniverse::build_from_slices(ps.iter().map(FlavorProfile::molecules));
        assert_eq!(owned.molecules, borrowed.molecules);
        for p in &ps {
            assert_eq!(owned.pack(p), borrowed.pack_ids(p.molecules()));
        }
    }

    #[test]
    fn empty_universe_and_profiles() {
        let u = MoleculeUniverse::build(std::iter::empty::<&FlavorProfile>());
        assert_eq!(u.words(), 0);
        let e = u.pack(&FlavorProfile::empty());
        assert_eq!(e.count_ones(), 0);
        assert_eq!(e.shared_count(&e), 0);
    }
}
