//! Seeded synthetic generator for a FlavorDB-scale ingredient universe.
//!
//! The real FlavorDB (840 usable natural ingredients, ~25k molecules,
//! profile sizes from a handful to several hundred) is an online
//! resource we cannot access; this generator produces a universe with
//! the same *pairing-relevant geometry*:
//!
//! * heterogeneous profile sizes (lognormal — a few molecule-rich
//!   ingredients, many sparse ones);
//! * **within-category correlation**: each of the 21 categories owns a
//!   cluster of molecules, and an ingredient draws a configurable
//!   fraction of its profile from its own cluster, the rest from a
//!   shared common pool — so dairy pairs strongly with dairy, herbs
//!   with herbs, exactly the structure the food-pairing hypothesis
//!   feeds on;
//! * a realistic category mix (vegetables, fruits and spices dominate).
//!
//! Everything is driven by a single `seed`; identical configs produce
//! identical databases.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::category::Category;
use crate::db::FlavorDb;
use crate::ids::MoleculeId;

/// Configuration for [`generate_flavor_db`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Master seed; every derived choice is deterministic in it.
    pub seed: u64,
    /// Total molecule universe size (FlavorDB order: ~2000 distinct
    /// flavor molecules appear across common ingredients).
    pub n_molecules: usize,
    /// Number of ingredients to generate.
    pub n_ingredients: usize,
    /// Mean flavor-profile size.
    pub mean_profile_size: f64,
    /// Lognormal sigma of profile sizes (0 ⇒ all profiles equal).
    pub profile_sigma: f64,
    /// Fraction of each profile drawn from the ingredient's own category
    /// cluster (the rest comes from the shared pool). Higher ⇒ stronger
    /// within-category flavor similarity.
    pub category_affinity: f64,
    /// Fraction of the molecule universe reserved as the shared pool.
    pub shared_pool_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 2018,
            n_molecules: 2000,
            n_ingredients: 840,
            mean_profile_size: 28.0,
            profile_sigma: 0.8,
            category_affinity: 0.6,
            shared_pool_fraction: 0.3,
        }
    }
}

impl GeneratorConfig {
    /// A miniature config for fast tests.
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            n_molecules: 150,
            n_ingredients: 60,
            mean_profile_size: 10.0,
            profile_sigma: 0.5,
            category_affinity: 0.6,
            shared_pool_fraction: 0.3,
        }
    }
}

/// Relative weights of the 21 categories in the generated universe,
/// mirroring the composition FlavorDB reports (vegetables, fruits,
/// spices and herbs dominate; essential oils and flowers are rare).
/// Indexed by [`Category::index`].
const CATEGORY_WEIGHTS: [f64; 21] = [
    14.0, // Vegetable
    5.0,  // Dairy
    3.0,  // Legume
    1.0,  // Maize
    3.0,  // Cereal
    8.0,  // Meat
    5.0,  // NutsAndSeeds
    6.0,  // Plant
    4.0,  // Fish
    3.0,  // Seafood
    9.0,  // Spice
    3.0,  // Bakery
    4.0,  // BeverageAlcoholic
    4.0,  // Beverage
    1.0,  // EssentialOil
    1.0,  // Flower
    12.0, // Fruit
    2.0,  // Fungus
    6.0,  // Herb
    3.0,  // Additive
    3.0,  // Dish
];

/// Standard normal via Box–Muller (rand's distribution crate is not in
/// the approved dependency set).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Lognormal profile-size sample with the configured mean preserved.
fn sample_profile_size<R: Rng + ?Sized>(cfg: &GeneratorConfig, rng: &mut R) -> usize {
    if cfg.profile_sigma <= 0.0 {
        return cfg.mean_profile_size.round().max(1.0) as usize;
    }
    // E[lognormal(μ, σ)] = exp(μ + σ²/2) ⇒ μ = ln(mean) − σ²/2.
    let mu = cfg.mean_profile_size.ln() - cfg.profile_sigma * cfg.profile_sigma / 2.0;
    let z = sample_standard_normal(rng);
    let size = (mu + cfg.profile_sigma * z).exp();
    (size.round() as usize).clamp(1, cfg.n_molecules)
}

/// Generate a synthetic flavor database.
pub fn generate_flavor_db(cfg: &GeneratorConfig) -> FlavorDb {
    assert!(
        cfg.n_molecules >= 42,
        "need at least 2 molecules per cluster"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.category_affinity),
        "category_affinity must lie in [0, 1]"
    );
    assert!(
        (0.0..1.0).contains(&cfg.shared_pool_fraction),
        "shared_pool_fraction must lie in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = FlavorDb::new();
    db.add_anonymous_molecules(cfg.n_molecules);

    // Partition the universe: first `shared` ids form the common pool,
    // the remainder is split evenly into 21 category clusters.
    let shared = ((cfg.n_molecules as f64) * cfg.shared_pool_fraction) as usize;
    let cluster_size = (cfg.n_molecules - shared) / 21;
    let cluster_range = |cat: Category| -> std::ops::Range<usize> {
        let start = shared + cat.index() * cluster_size;
        start..start + cluster_size
    };

    let category_sampler = culinaria_stats::WeightedAliasSampler::new(&CATEGORY_WEIGHTS)
        .expect("static weights are valid");

    for k in 0..cfg.n_ingredients {
        let cat =
            Category::from_index(category_sampler.sample(&mut rng)).expect("sampler indexes 0..21");
        let size = sample_profile_size(cfg, &mut rng);
        let n_within = ((size as f64) * cfg.category_affinity).round() as usize;
        let n_within = n_within.min(size);
        let n_shared = size - n_within;

        let mut profile: Vec<MoleculeId> = Vec::with_capacity(size);
        let cr = cluster_range(cat);
        for idx in
            culinaria_stats::sampling::sample_without_replacement(cr.len(), n_within, &mut rng)
        {
            profile.push(MoleculeId((cr.start + idx) as u32));
        }
        if shared > 0 {
            for idx in
                culinaria_stats::sampling::sample_without_replacement(shared, n_shared, &mut rng)
            {
                profile.push(MoleculeId(idx as u32));
            }
        }
        let name = format!(
            "syn-{:03}-{}",
            k,
            cat.name().to_lowercase().replace(' ', "-")
        );
        db.add_ingredient(&name, cat, profile)
            .expect("generated names are unique");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::tiny(7);
        let a = generate_flavor_db(&cfg);
        let b = generate_flavor_db(&cfg);
        assert_eq!(a.n_ingredients(), b.n_ingredients());
        for (x, y) in a.ingredients().zip(b.ingredients()) {
            assert_eq!(x, y);
        }
        // Different seed → different universe.
        let c = generate_flavor_db(&GeneratorConfig::tiny(8));
        let same = a
            .ingredients()
            .zip(c.ingredients())
            .all(|(x, y)| x.profile == y.profile);
        assert!(!same);
    }

    #[test]
    fn respects_scale_parameters() {
        let cfg = GeneratorConfig {
            seed: 1,
            n_molecules: 500,
            n_ingredients: 200,
            mean_profile_size: 20.0,
            profile_sigma: 0.6,
            category_affinity: 0.6,
            shared_pool_fraction: 0.3,
        };
        let db = generate_flavor_db(&cfg);
        assert_eq!(db.n_ingredients(), 200);
        assert_eq!(db.n_molecules(), 500);
        let mean = db.mean_profile_size();
        assert!(
            (mean - 20.0).abs() < 5.0,
            "mean profile size {mean}, expected ≈ 20"
        );
    }

    #[test]
    fn profiles_are_heterogeneous() {
        let db = generate_flavor_db(&GeneratorConfig::default());
        let sizes: Vec<usize> = db.ingredients().map(|i| i.profile.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max >= min * 4, "profile sizes too uniform: {min}..{max}");
    }

    #[test]
    fn within_category_similarity_exceeds_cross() {
        let db = generate_flavor_db(&GeneratorConfig::default());
        // Average shared count for same-category vs cross-category pairs
        // over a deterministic subsample.
        let ings: Vec<_> = db.ingredients().collect();
        let mut same = (0usize, 0usize);
        let mut cross = (0usize, 0usize);
        for (i, a) in ings.iter().enumerate().step_by(7) {
            for b in ings.iter().skip(i + 1).step_by(11) {
                let shared = a.profile.shared_count(&b.profile);
                if a.category == b.category {
                    same.0 += shared;
                    same.1 += 1;
                } else {
                    cross.0 += shared;
                    cross.1 += 1;
                }
            }
        }
        assert!(same.1 > 10 && cross.1 > 10, "subsample too small");
        let mean_same = same.0 as f64 / same.1 as f64;
        let mean_cross = cross.0 as f64 / cross.1 as f64;
        assert!(
            mean_same > mean_cross * 1.5,
            "same {mean_same} vs cross {mean_cross}"
        );
    }

    #[test]
    fn all_categories_appear_at_scale() {
        let db = generate_flavor_db(&GeneratorConfig::default());
        for cat in Category::ALL {
            assert!(
                !db.ingredients_in_category(cat).is_empty(),
                "category {cat} empty at 840 ingredients"
            );
        }
    }

    #[test]
    #[should_panic(expected = "category_affinity")]
    fn invalid_affinity_panics() {
        let cfg = GeneratorConfig {
            category_affinity: 1.5,
            ..GeneratorConfig::tiny(1)
        };
        generate_flavor_db(&cfg);
    }
}
