//! Lane-widened AND+popcount primitives shared by every bitset hot
//! path in the workspace.
//!
//! All three kernels in the pipeline — the Fig 4 pair sweep, the
//! overlap-matrix build, and the k-tuple prefix walk — bottom out in
//! one of four word-vector operations:
//!
//! * [`and_popcount`] — `Σ popcount(a[i] & b[i])` (pair intersections,
//!   prefix-walk leaves);
//! * [`popcount`] — `Σ popcount(a[i])` (profile sizes, `k == 1` sums);
//! * [`and_store_popcount`] — `dst = a & b` plus the popcount of the
//!   result (interior prefix-walk nodes that need the mask *and* its
//!   size for pruning);
//! * [`copy_popcount`] — `dst = src` plus its popcount (prefix-walk
//!   seeds).
//!
//! Each is implemented three times:
//!
//! 1. [`scalar`] — the frozen one-word-at-a-time reference walk, kept
//!    as the parity oracle for tests and the `bench_kernel` microbench;
//! 2. a portable 4-lane unrolled path (`chunks_exact(4)` with four
//!    independent accumulators, scalar tail) that breaks the popcount
//!    dependency chain so the compiler can keep four counts in flight;
//! 3. on `x86_64`, the same 4-lane body compiled with
//!    `#[target_feature(enable = "popcnt")]` so each lane's
//!    `count_ones` lowers to a single `POPCNT` instruction instead of
//!    the baseline SWAR sequence (the workspace builds for baseline
//!    x86-64, so the default codegen cannot assume `POPCNT`).
//!
//! The public entry points dispatch at runtime via
//! `is_x86_feature_detected!` (the result is cached by `std`, so the
//! check is a load-and-branch, amortized to nothing over a
//! multi-kiloword sweep), and fall back to [`scalar`] below
//! [`SCALAR_BELOW_WORDS`] words, where the 4-lane setup never reaches
//! its chunked loop and is pure overhead (`bench_kernel` measured the
//! widened path at 0.72× scalar on 1-word operands; the un-thresholded
//! [`widened`] module stays available so the crossover remains
//! measurable). All variants are bit-exact with [`scalar`] for every
//! input length, including ragged tails and zero-length slices;
//! `crates/flavordb/tests/properties.rs` and the unit tests below pin
//! that equivalence at the tail boundaries 0, 1, 3, 4, 5, 7 and 8
//! words.
//!
//! When `a` and `b` have different lengths, all operations truncate to
//! the shorter slice (mirroring `Iterator::zip`); `and_store_popcount`
//! and `copy_popcount` additionally truncate to `dst`.

/// One-word-at-a-time reference implementations.
///
/// These are the semantics the widened paths must reproduce bit for
/// bit; tests and `bench_kernel` call them directly.
pub mod scalar {
    /// `Σ popcount(a[i] & b[i])` over the common prefix of `a` and `b`.
    #[inline]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum()
    }

    /// `Σ popcount(a[i])`.
    #[inline]
    pub fn popcount(a: &[u64]) -> u64 {
        a.iter().map(|x| u64::from(x.count_ones())).sum()
    }

    /// `dst[i] = a[i] & b[i]`, returning the popcount of the result.
    #[inline]
    pub fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut ones = 0u64;
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            let w = x & y;
            *d = w;
            ones += u64::from(w.count_ones());
        }
        ones
    }

    /// `dst[i] = src[i]`, returning the popcount of the copied prefix.
    #[inline]
    pub fn copy_popcount(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut ones = 0u64;
        for (d, s) in dst.iter_mut().zip(src) {
            *d = *s;
            ones += u64::from(s.count_ones());
        }
        ones
    }
}

/// The 4-lane unrolled bodies, generic over inlining context.
///
/// Marked `#[inline(always)]` so the same source compiles once under
/// baseline codegen (the portable fallback) and once inside a
/// `#[target_feature(enable = "popcnt")]` wrapper on `x86_64` — the
/// wrapper's feature set propagates into the inlined body, turning
/// every `count_ones` into a hardware `POPCNT`.
mod lanes {
    #[inline(always)]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        // Four independent accumulators: popcount has a multi-cycle
        // latency, and a single running sum would serialize on it.
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        for (x, y) in (&mut ca).zip(&mut cb) {
            s0 += u64::from((x[0] & y[0]).count_ones());
            s1 += u64::from((x[1] & y[1]).count_ones());
            s2 += u64::from((x[2] & y[2]).count_ones());
            s3 += u64::from((x[3] & y[3]).count_ones());
        }
        let mut tail = 0u64;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += u64::from((x & y).count_ones());
        }
        (s0 + s1) + (s2 + s3) + tail
    }

    #[inline(always)]
    pub fn popcount(a: &[u64]) -> u64 {
        let mut chunks = a.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        for x in &mut chunks {
            s0 += u64::from(x[0].count_ones());
            s1 += u64::from(x[1].count_ones());
            s2 += u64::from(x[2].count_ones());
            s3 += u64::from(x[3].count_ones());
        }
        let mut tail = 0u64;
        for x in chunks.remainder() {
            tail += u64::from(x.count_ones());
        }
        (s0 + s1) + (s2 + s3) + tail
    }

    #[inline(always)]
    pub fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let n = dst.len().min(a.len()).min(b.len());
        let (dst, a, b) = (&mut dst[..n], &a[..n], &b[..n]);
        let mut cd = dst.chunks_exact_mut(4);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        for ((d, x), y) in (&mut cd).zip(&mut ca).zip(&mut cb) {
            let (w0, w1, w2, w3) = (x[0] & y[0], x[1] & y[1], x[2] & y[2], x[3] & y[3]);
            d[0] = w0;
            d[1] = w1;
            d[2] = w2;
            d[3] = w3;
            s0 += u64::from(w0.count_ones());
            s1 += u64::from(w1.count_ones());
            s2 += u64::from(w2.count_ones());
            s3 += u64::from(w3.count_ones());
        }
        let mut tail = 0u64;
        for ((d, x), y) in cd
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            let w = x & y;
            *d = w;
            tail += u64::from(w.count_ones());
        }
        (s0 + s1) + (s2 + s3) + tail
    }

    #[inline(always)]
    pub fn copy_popcount(dst: &mut [u64], src: &[u64]) -> u64 {
        let n = dst.len().min(src.len());
        let (dst, src) = (&mut dst[..n], &src[..n]);
        dst.copy_from_slice(src);
        popcount(src)
    }
}

/// The `POPCNT`-enabled clones of the lane bodies.
///
/// Safety: each function is only reachable through the dispatchers
/// below, which gate on `is_x86_feature_detected!("popcnt")`.
#[cfg(target_arch = "x86_64")]
mod popcnt {
    /// # Safety
    /// Caller must have verified the `popcnt` CPU feature.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        super::lanes::and_popcount(a, b)
    }

    /// # Safety
    /// Caller must have verified the `popcnt` CPU feature.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn popcount(a: &[u64]) -> u64 {
        super::lanes::popcount(a)
    }

    /// # Safety
    /// Caller must have verified the `popcnt` CPU feature.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        super::lanes::and_store_popcount(dst, a, b)
    }

    /// # Safety
    /// Caller must have verified the `popcnt` CPU feature.
    #[target_feature(enable = "popcnt")]
    pub unsafe fn copy_popcount(dst: &mut [u64], src: &[u64]) -> u64 {
        super::lanes::copy_popcount(dst, src)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn have_popcnt() -> bool {
    // `std` caches the cpuid probe; after the first call this is a
    // relaxed atomic load.
    std::arch::is_x86_feature_detected!("popcnt")
}

/// Operand lengths (in words) below which the public entry points take
/// the [`scalar`] walk instead of the 4-lane path.
///
/// One-word operands pay the lane setup for a loop that never runs
/// (64-bit operands measured 0.86× scalar on the widened path), but
/// from two words up the widened walk already wins — `bench_kernel`
/// sweeps the crossover region word by word and records the measured
/// crossover in `BENCH_kernel.json`; this cutoff matches it.
pub const SCALAR_BELOW_WORDS: usize = 2;

/// The dispatched lane-widened paths *without* the short-input scalar
/// cutoff.
///
/// Semantically identical to the public entry points; only the
/// small-operand performance differs. `bench_kernel` times these
/// against [`scalar`] to locate the crossover that justifies
/// [`SCALAR_BELOW_WORDS`].
pub mod widened {
    /// `Σ popcount(a[i] & b[i])` over the common prefix, always widened.
    #[inline]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if super::have_popcnt() {
            // SAFETY: `popcnt` support was just verified.
            return unsafe { super::popcnt::and_popcount(a, b) };
        }
        super::lanes::and_popcount(a, b)
    }

    /// `Σ popcount(a[i])`, always widened.
    #[inline]
    pub fn popcount(a: &[u64]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if super::have_popcnt() {
            // SAFETY: `popcnt` support was just verified.
            return unsafe { super::popcnt::popcount(a) };
        }
        super::lanes::popcount(a)
    }

    /// `dst = a & b` plus popcount of the result, always widened.
    #[inline]
    pub fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if super::have_popcnt() {
            // SAFETY: `popcnt` support was just verified.
            return unsafe { super::popcnt::and_store_popcount(dst, a, b) };
        }
        super::lanes::and_store_popcount(dst, a, b)
    }

    /// `dst = src` plus popcount of the copy, always widened.
    #[inline]
    pub fn copy_popcount(dst: &mut [u64], src: &[u64]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if super::have_popcnt() {
            // SAFETY: `popcnt` support was just verified.
            return unsafe { super::popcnt::copy_popcount(dst, src) };
        }
        super::lanes::copy_popcount(dst, src)
    }
}

/// `Σ popcount(a[i] & b[i])` over the common prefix: scalar below
/// [`SCALAR_BELOW_WORDS`] words, lane-widened above.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    if a.len().min(b.len()) < SCALAR_BELOW_WORDS {
        return scalar::and_popcount(a, b);
    }
    widened::and_popcount(a, b)
}

/// `Σ popcount(a[i])`: scalar below [`SCALAR_BELOW_WORDS`] words,
/// lane-widened above.
#[inline]
pub fn popcount(a: &[u64]) -> u64 {
    if a.len() < SCALAR_BELOW_WORDS {
        return scalar::popcount(a);
    }
    widened::popcount(a)
}

/// `dst = a & b`, returning the popcount of the result: scalar below
/// [`SCALAR_BELOW_WORDS`] words, lane-widened above.
///
/// Truncates to the shortest of the three slices.
#[inline]
pub fn and_store_popcount(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    if dst.len().min(a.len()).min(b.len()) < SCALAR_BELOW_WORDS {
        return scalar::and_store_popcount(dst, a, b);
    }
    widened::and_store_popcount(dst, a, b)
}

/// `dst = src` copy, returning the popcount of the copied prefix
/// (truncated to the shorter slice): scalar below
/// [`SCALAR_BELOW_WORDS`] words, lane-widened above.
#[inline]
pub fn copy_popcount(dst: &mut [u64], src: &[u64]) -> u64 {
    if dst.len().min(src.len()) < SCALAR_BELOW_WORDS {
        return scalar::copy_popcount(dst, src);
    }
    widened::copy_popcount(dst, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random words (splitmix64) so the tests
    /// exercise dense, sparse, and mixed words without an RNG dep.
    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// The tail boundaries the issue calls out: empty input, pure
    /// tails (1, 3), exact lane multiples (4, 8), and lane+tail mixes
    /// (5, 7).
    const TAIL_LENGTHS: [usize; 7] = [0, 1, 3, 4, 5, 7, 8];

    #[test]
    fn widened_matches_scalar_at_tail_boundaries() {
        for &n in &TAIL_LENGTHS {
            let a = words(1 + n as u64, n);
            let b = words(1000 + n as u64, n);
            assert_eq!(and_popcount(&a, &b), scalar::and_popcount(&a, &b), "n={n}");
            assert_eq!(popcount(&a), scalar::popcount(&a), "n={n}");

            let mut d1 = vec![0u64; n];
            let mut d2 = vec![0u64; n];
            assert_eq!(
                and_store_popcount(&mut d1, &a, &b),
                scalar::and_store_popcount(&mut d2, &a, &b),
                "n={n}"
            );
            assert_eq!(d1, d2, "n={n}");

            let mut c1 = vec![0u64; n];
            let mut c2 = vec![0u64; n];
            assert_eq!(
                copy_popcount(&mut c1, &a),
                scalar::copy_popcount(&mut c2, &a),
                "n={n}"
            );
            assert_eq!(c1, c2, "n={n}");
        }
    }

    #[test]
    fn portable_lanes_match_scalar_without_dispatch() {
        // Pin the portable path itself (the dispatcher may take the
        // popcnt branch on the test machine).
        for n in 0..=70 {
            let a = words(7 + n as u64, n);
            let b = words(99 + n as u64, n);
            assert_eq!(
                lanes::and_popcount(&a, &b),
                scalar::and_popcount(&a, &b),
                "n={n}"
            );
            assert_eq!(lanes::popcount(&a), scalar::popcount(&a), "n={n}");
            let mut d1 = vec![0u64; n];
            let mut d2 = vec![0u64; n];
            assert_eq!(
                lanes::and_store_popcount(&mut d1, &a, &b),
                scalar::and_store_popcount(&mut d2, &a, &b),
                "n={n}"
            );
            assert_eq!(d1, d2, "n={n}");
        }
    }

    #[test]
    fn unthresholded_widened_matches_scalar_below_cutoff() {
        // The public entry points take the scalar branch below
        // SCALAR_BELOW_WORDS, so pin the raw widened path there
        // explicitly — it must stay bit-exact even where it is slow.
        for n in 0..=(2 * SCALAR_BELOW_WORDS) {
            let a = words(31 + n as u64, n);
            let b = words(400 + n as u64, n);
            assert_eq!(
                widened::and_popcount(&a, &b),
                scalar::and_popcount(&a, &b),
                "n={n}"
            );
            assert_eq!(widened::popcount(&a), scalar::popcount(&a), "n={n}");
            let mut d1 = vec![0u64; n];
            let mut d2 = vec![0u64; n];
            assert_eq!(
                widened::and_store_popcount(&mut d1, &a, &b),
                scalar::and_store_popcount(&mut d2, &a, &b),
                "n={n}"
            );
            assert_eq!(d1, d2, "n={n}");
            let mut c1 = vec![0u64; n];
            let mut c2 = vec![0u64; n];
            assert_eq!(
                widened::copy_popcount(&mut c1, &a),
                scalar::copy_popcount(&mut c2, &a),
                "n={n}"
            );
            assert_eq!(c1, c2, "n={n}");
        }
    }

    #[test]
    fn mismatched_lengths_truncate_like_zip() {
        let a = words(5, 11);
        let b = words(6, 6);
        assert_eq!(and_popcount(&a, &b), scalar::and_popcount(&a, &b));
        assert_eq!(and_popcount(&b, &a), scalar::and_popcount(&b, &a));
        let mut d1 = vec![u64::MAX; 4];
        let mut d2 = vec![u64::MAX; 4];
        // dst shorter than both sources: only dst.len() words written.
        assert_eq!(
            and_store_popcount(&mut d1, &a, &b),
            scalar::and_store_popcount(&mut d2, &a, &b)
        );
        assert_eq!(d1, d2);
        let mut c = vec![u64::MAX; 3];
        let ones = copy_popcount(&mut c, &a);
        assert_eq!(c, &a[..3]);
        assert_eq!(ones, scalar::popcount(&a[..3]));
    }

    #[test]
    fn saturated_and_empty_words() {
        let ones = vec![u64::MAX; 9];
        let zeros = vec![0u64; 9];
        assert_eq!(and_popcount(&ones, &ones), 9 * 64);
        assert_eq!(and_popcount(&ones, &zeros), 0);
        assert_eq!(popcount(&ones), 9 * 64);
        assert_eq!(popcount(&zeros), 0);
    }
}
