#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Shared plumbing for the zero-copy artifact formats (CFDB2/CRDB2).
//!
//! Both artifacts share one physical grammar: an 8-byte magic, a
//! little-endian `u32` version, a `u32` section count, a table of
//! 24-byte section descriptors (`kind`, zero pad, byte `offset`, byte
//! `len`), and then the section payloads, each starting on an 8-byte
//! boundary. The encoding is *canonical*: sections appear in strictly
//! increasing kind order, every kind the format defines is present
//! (possibly zero-length), each section starts exactly at the previous
//! section's padded end, and the buffer ends exactly at the padded end
//! of the last section — so a given logical content has exactly one
//! byte representation, and truncated or trailing-garbage buffers are
//! rejected structurally.
//!
//! Payload numbers are little-endian. Readers reinterpret aligned
//! section bytes as `&[u64]`/`&[u32]` in place, which is why
//! [`open requirements`](Sections::parse) include a little-endian host
//! and an 8-byte-aligned base pointer ([`AlignedBytes`] provides one
//! for buffers loaded from disk).

use std::fmt;

/// Size of one section-table entry in bytes.
pub const SECTION_ENTRY_BYTES: usize = 24;

/// Size of the fixed header (magic + version + section count) in bytes.
pub const HEADER_BYTES: usize = 16;

/// Maximum number of section kinds any artifact defines (CFDB2 uses
/// 12); bounds the fixed-size section map so parsing stays
/// allocation-free.
pub const MAX_SECTION_KINDS: usize = 16;

/// Errors raised while writing or opening a zero-copy artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The buffer is shorter than a structurally required range.
    Truncated {
        /// Bytes needed to satisfy the read.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic bytes are not this artifact's magic.
    BadMagic,
    /// The version field is not the supported version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        expect: u32,
    },
    /// The buffer's base pointer is not 8-byte aligned (borrowed
    /// `&[u64]` views would be unsound).
    Misaligned,
    /// The host is big-endian; in-place reinterpretation of the
    /// little-endian payload would read scrambled numbers.
    BigEndianHost,
    /// A structural invariant failed; the message names it.
    Corrupt(String),
    /// A count or blob exceeds the format's `u32` field width.
    TooLarge(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { need, have } => {
                write!(f, "artifact truncated: need {need} bytes, have {have}")
            }
            ArtifactError::BadMagic => write!(f, "bad artifact magic"),
            ArtifactError::BadVersion { found, expect } => {
                write!(
                    f,
                    "unsupported artifact version {found} (expected {expect})"
                )
            }
            ArtifactError::Misaligned => {
                write!(f, "artifact buffer is not 8-byte aligned")
            }
            ArtifactError::BigEndianHost => {
                write!(f, "zero-copy artifacts require a little-endian host")
            }
            ArtifactError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            ArtifactError::TooLarge(msg) => write!(f, "artifact too large: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// An owned byte buffer whose base address is guaranteed 8-byte
/// aligned, for holding artifacts loaded from disk.
///
/// `Vec<u8>` makes no alignment promise, so a file read into one can
/// land on any address and fail [`Sections::parse`]'s alignment check.
/// `AlignedBytes` backs the bytes with a `Vec<u64>` instead.
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copy `bytes` into a fresh 8-byte-aligned buffer.
    pub fn from_slice(bytes: &[u8]) -> AlignedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: `words` owns `words.len() * 8` initialized bytes and
        // u64 has no invalid byte patterns, so viewing its storage as
        // a byte slice for the copy is sound.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        if let Some(prefix) = dst.get_mut(..bytes.len()) {
            prefix.copy_from_slice(bytes);
        }
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }

    /// Copy a `Vec<u8>` into a fresh 8-byte-aligned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> AlignedBytes {
        AlignedBytes::from_slice(&bytes)
    }

    /// Read a whole file into an aligned buffer.
    pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<AlignedBytes> {
        Ok(AlignedBytes::from_vec(std::fs::read(path)?))
    }

    /// The buffer contents (base pointer 8-byte aligned).
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialized bytes
        // (`len <= words.len() * 8` by construction).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Round `n` up to the next multiple of 8.
pub fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Reinterpret section bytes as a `&[u64]` without copying.
///
/// Errors unless the slice is 8-byte aligned with a length that is a
/// multiple of 8 — both hold for any section of a buffer that passed
/// [`Sections::parse`], because section offsets are 8-aligned and the
/// caller sizes sections in whole words.
pub fn cast_u64s(bytes: &[u8]) -> Result<&[u64], ArtifactError> {
    if bytes.is_empty() {
        return Ok(&[]);
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>()) {
        return Err(ArtifactError::Misaligned);
    }
    if !bytes.len().is_multiple_of(8) {
        return Err(ArtifactError::Corrupt(format!(
            "u64 section length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    // SAFETY: the pointer is aligned for u64, the length covers
    // `len / 8` whole u64s inside one allocation, and u64 tolerates
    // any byte pattern. Endianness was checked at open.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

/// Reinterpret section bytes as a `&[u32]` without copying.
///
/// Same contract as [`cast_u64s`] with 4-byte granularity.
pub fn cast_u32s(bytes: &[u8]) -> Result<&[u32], ArtifactError> {
    if bytes.is_empty() {
        return Ok(&[]);
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>()) {
        return Err(ArtifactError::Misaligned);
    }
    if !bytes.len().is_multiple_of(4) {
        return Err(ArtifactError::Corrupt(format!(
            "u32 section length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    // SAFETY: aligned, whole u32s within one allocation, no invalid
    // patterns for u32.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Read a little-endian `u32` at `off`, or 0 when out of range.
///
/// Accessor-path helper: ranges are validated once at open, so the
/// fallback never fires on a validated buffer but keeps the accessors
/// structurally panic-free.
#[inline]
pub fn u32_at(bytes: &[u8], off: usize) -> u32 {
    bytes
        .get(off..off + 4)
        .and_then(|b| b.try_into().ok())
        .map_or(0, u32::from_le_bytes)
}

/// Read a little-endian `u64` at `off`, or 0 when out of range.
#[inline]
pub fn u64_at(bytes: &[u8], off: usize) -> u64 {
    bytes
        .get(off..off + 8)
        .and_then(|b| b.try_into().ok())
        .map_or(0, u64::from_le_bytes)
}

/// The parsed section table of an artifact buffer: byte spans per
/// section kind, all bounds-checked against the buffer.
#[derive(Debug, Clone, Copy)]
pub struct Sections<'a> {
    buf: &'a [u8],
    spans: [(usize, usize); MAX_SECTION_KINDS],
}

impl<'a> Sections<'a> {
    /// Parse and validate the header and section table.
    ///
    /// Checks, in order: little-endian host, 8-aligned base pointer,
    /// buffer long enough for the header, magic, version, section
    /// count equal to `n_kinds` with kinds exactly `1..=n_kinds` in
    /// order, zero pads, offsets forming the canonical packed chain
    /// (first at the end of the table, each at the padded end of its
    /// predecessor, buffer ending at the padded end of the last).
    pub fn parse(
        buf: &'a [u8],
        magic: &[u8; 8],
        version: u32,
        n_kinds: usize,
    ) -> Result<Sections<'a>, ArtifactError> {
        if cfg!(target_endian = "big") {
            return Err(ArtifactError::BigEndianHost);
        }
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return Err(ArtifactError::Misaligned);
        }
        if buf.len() < HEADER_BYTES {
            return Err(ArtifactError::Truncated {
                need: HEADER_BYTES,
                have: buf.len(),
            });
        }
        if &buf[..8] != magic {
            return Err(ArtifactError::BadMagic);
        }
        let found_version = u32_at(buf, 8);
        if found_version != version {
            return Err(ArtifactError::BadVersion {
                found: found_version,
                expect: version,
            });
        }
        let n_sections = u32_at(buf, 12) as usize;
        if n_sections != n_kinds || n_kinds > MAX_SECTION_KINDS {
            return Err(ArtifactError::Corrupt(format!(
                "expected {n_kinds} sections, header declares {n_sections}"
            )));
        }
        let table_end = HEADER_BYTES + n_kinds * SECTION_ENTRY_BYTES;
        if buf.len() < table_end {
            return Err(ArtifactError::Truncated {
                need: table_end,
                have: buf.len(),
            });
        }

        let mut spans = [(0usize, 0usize); MAX_SECTION_KINDS];
        let mut cursor = table_end; // HEADER_BYTES and 24-byte entries are both 8-aligned.
        for i in 0..n_kinds {
            let entry = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
            let kind = u32_at(buf, entry) as usize;
            let pad = u32_at(buf, entry + 4);
            let offset = u64_at(buf, entry + 8);
            let len = u64_at(buf, entry + 16);
            if kind != i + 1 {
                return Err(ArtifactError::Corrupt(format!(
                    "section {i} has kind {kind}, expected {}",
                    i + 1
                )));
            }
            if pad != 0 {
                return Err(ArtifactError::Corrupt(format!(
                    "section kind {kind} has nonzero pad field"
                )));
            }
            let offset = usize::try_from(offset).map_err(|_| ArtifactError::Truncated {
                need: usize::MAX,
                have: buf.len(),
            })?;
            let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated {
                need: usize::MAX,
                have: buf.len(),
            })?;
            if offset != cursor {
                return Err(ArtifactError::Corrupt(format!(
                    "section kind {kind} starts at {offset}, canonical layout requires {cursor}"
                )));
            }
            let end = offset.checked_add(len).ok_or(ArtifactError::Truncated {
                need: usize::MAX,
                have: buf.len(),
            })?;
            if end > buf.len() {
                return Err(ArtifactError::Truncated {
                    need: end,
                    have: buf.len(),
                });
            }
            spans[kind - 1] = (offset, len);
            cursor = align8(end);
        }
        if buf.len() < cursor {
            return Err(ArtifactError::Truncated {
                need: cursor,
                have: buf.len(),
            });
        }
        if buf.len() > cursor {
            return Err(ArtifactError::Corrupt(format!(
                "buffer has {} bytes, canonical layout ends at {cursor}",
                buf.len()
            )));
        }
        Ok(Sections { buf, spans })
    }

    /// The bytes of section `kind` (1-based, as in the table).
    pub fn bytes(&self, kind: usize) -> &'a [u8] {
        let (off, len) = self
            .spans
            .get(kind.wrapping_sub(1))
            .copied()
            .unwrap_or((0, 0));
        self.buf.get(off..off + len).unwrap_or(&[])
    }
}

/// Serializer for the canonical section grammar: collect section
/// payloads in kind order, then [`finish`](ArtifactWriter::finish)
/// into one buffer with the header, table, and 8-byte padding.
#[derive(Debug)]
pub struct ArtifactWriter {
    magic: [u8; 8],
    version: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// Start an artifact with the given magic and version.
    pub fn new(magic: [u8; 8], version: u32) -> ArtifactWriter {
        ArtifactWriter {
            magic,
            version,
            sections: Vec::new(),
        }
    }

    /// Append the payload for the next section kind. Kinds must be
    /// added in increasing order starting at 1; [`finish`] checks.
    ///
    /// [`finish`]: ArtifactWriter::finish
    pub fn section(&mut self, kind: u32, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    /// Assemble the final buffer.
    pub fn finish(self) -> Result<Vec<u8>, ArtifactError> {
        let n = self.sections.len();
        if n > MAX_SECTION_KINDS {
            return Err(ArtifactError::TooLarge(format!(
                "{n} sections exceed the {MAX_SECTION_KINDS}-kind grammar"
            )));
        }
        for (i, (kind, _)) in self.sections.iter().enumerate() {
            if *kind as usize != i + 1 {
                return Err(ArtifactError::Corrupt(format!(
                    "section kinds must be 1..={n} in order; slot {i} holds kind {kind}"
                )));
            }
        }
        let table_end = HEADER_BYTES + n * SECTION_ENTRY_BYTES;
        let mut total = table_end;
        for (_, payload) in &self.sections {
            total = align8(total + payload.len());
        }

        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.magic);
        out.extend_from_slice(&self.version.to_le_bytes());
        let n32 = u32::try_from(n)
            .map_err(|_| ArtifactError::TooLarge("section count exceeds u32".to_string()))?;
        out.extend_from_slice(&n32.to_le_bytes());
        let mut cursor = table_end;
        for (kind, payload) in &self.sections {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(cursor as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            cursor = align8(cursor + payload.len());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
            out.resize(align8(out.len()), 0);
        }
        Ok(out)
    }
}

/// Interns strings into one blob, deduplicating repeats; spans are
/// `(offset, length)` pairs in bytes.
///
/// Interning order is the caller's insertion order, so a builder that
/// interns in a deterministic order produces a byte-identical blob on
/// every run.
#[derive(Debug, Default)]
pub struct StringTable {
    blob: Vec<u8>,
    seen: std::collections::HashMap<String, (u32, u32)>,
}

impl StringTable {
    /// A fresh, empty table.
    pub fn new() -> StringTable {
        StringTable::default()
    }

    /// Intern `s`, returning its `(offset, length)` span.
    pub fn intern(&mut self, s: &str) -> Result<(u32, u32), ArtifactError> {
        if let Some(&span) = self.seen.get(s) {
            return Ok(span);
        }
        let off = u32::try_from(self.blob.len())
            .map_err(|_| ArtifactError::TooLarge("string blob exceeds u32 offsets".to_string()))?;
        let len = u32::try_from(s.len())
            .map_err(|_| ArtifactError::TooLarge(format!("string of {} bytes", s.len())))?;
        self.blob.extend_from_slice(s.as_bytes());
        self.seen.insert(s.to_owned(), (off, len));
        Ok((off, len))
    }

    /// Consume the table, returning the blob.
    pub fn into_blob(self) -> Vec<u8> {
        self.blob
    }
}

/// Resolve a `(offset, length)` span inside a validated string blob,
/// checking bounds and char boundaries. Returns `None` on any
/// violation (open-time validation turns that into an error; accessor
/// paths treat it as absent).
#[inline]
pub fn str_span(blob: &str, off: u32, len: u32) -> Option<&str> {
    let start = off as usize;
    let end = start.checked_add(len as usize)?;
    blob.get(start..end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<u8> {
        let mut w = ArtifactWriter::new(*b"TEST\x00\x00\x00\x00", 1);
        w.section(1, vec![1, 2, 3]);
        w.section(2, (0u32..4).flat_map(u32::to_le_bytes).collect());
        w.finish().expect("assembles")
    }

    #[test]
    fn writer_reader_roundtrip() {
        let buf = AlignedBytes::from_vec(tiny());
        let s = Sections::parse(buf.as_slice(), b"TEST\x00\x00\x00\x00", 1, 2).expect("parses");
        assert_eq!(s.bytes(1), &[1, 2, 3]);
        let nums = cast_u32s(s.bytes(2)).expect("aligned");
        assert_eq!(nums, &[0, 1, 2, 3]);
    }

    #[test]
    fn every_truncation_prefix_errors() {
        let full = tiny();
        for cut in 0..full.len() {
            let prefix = AlignedBytes::from_slice(&full[..cut]);
            assert!(
                Sections::parse(prefix.as_slice(), b"TEST\x00\x00\x00\x00", 1, 2).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn wrong_magic_version_and_trailing_bytes() {
        let full = tiny();
        let aligned = AlignedBytes::from_slice(&full);
        assert!(matches!(
            Sections::parse(aligned.as_slice(), b"OTHR\x00\x00\x00\x00", 1, 2),
            Err(ArtifactError::BadMagic)
        ));
        assert!(matches!(
            Sections::parse(aligned.as_slice(), b"TEST\x00\x00\x00\x00", 9, 2),
            Err(ArtifactError::BadVersion {
                found: 1,
                expect: 9
            })
        ));
        let mut trailing = full.clone();
        trailing.extend_from_slice(&[0u8; 8]);
        let trailing = AlignedBytes::from_vec(trailing);
        assert!(Sections::parse(trailing.as_slice(), b"TEST\x00\x00\x00\x00", 1, 2).is_err());
    }

    #[test]
    fn misaligned_base_pointer_is_rejected() {
        let full = tiny();
        let mut shifted = vec![0u8; full.len() + 1];
        shifted[1..].copy_from_slice(&full);
        // An odd offset into an aligned allocation is misaligned.
        let backing = AlignedBytes::from_vec(shifted);
        let view = &backing.as_slice()[1..];
        assert!(matches!(
            Sections::parse(view, b"TEST\x00\x00\x00\x00", 1, 2),
            Err(ArtifactError::Misaligned)
        ));
    }

    #[test]
    fn string_table_interns_deterministically() {
        let mut t = StringTable::new();
        let a = t.intern("basil").expect("fits");
        let b = t.intern("garlic").expect("fits");
        let a2 = t.intern("basil").expect("fits");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let blob = t.into_blob();
        assert_eq!(&blob, b"basilgarlic");
    }

    #[test]
    fn casts_check_alignment_and_granularity() {
        let buf = AlignedBytes::from_slice(&[0u8; 16]);
        assert!(cast_u64s(buf.as_slice()).is_ok());
        assert!(cast_u64s(&buf.as_slice()[4..]).is_err());
        assert!(cast_u64s(&buf.as_slice()[..12]).is_err());
        assert!(cast_u32s(&buf.as_slice()[..12]).is_ok());
        assert_eq!(cast_u64s(&[]).expect("empty ok"), &[] as &[u64]);
    }
}
