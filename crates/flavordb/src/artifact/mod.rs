#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! CFDB2: the zero-copy flavor-database artifact.
//!
//! CFDB1 ([`crate::io`]) is a *parse-on-load* snapshot: every open
//! re-allocates the molecule table, every profile vector, and every
//! name `String`. CFDB2 is the *serve* format the ROADMAP's query
//! service needs: one 8-byte-aligned little-endian buffer whose
//! sections are already in the shapes the hot paths consume —
//!
//! * packed **bit planes** (one per ingredient slot, sized to the full
//!   molecule universe, bit position = global molecule id) borrowable
//!   as `&[u64]` straight into [`crate::kernel`];
//! * sorted **profile id** runs borrowable as `&[MoleculeId]`
//!   (`repr(transparent)` over `u32`);
//! * all names interned into one UTF-8 **string blob**, referenced by
//!   `(offset, length)` spans;
//! * sorted **name** and **synonym** indexes for binary-search lookup
//!   without a hash map;
//! * optional precomputed **overlap triangles** (labelled pools with
//!   their pairwise shared-molecule counts), so a cuisine analysis can
//!   skip the O(n²·words) AND+popcount sweep entirely.
//!
//! [`open`] validates bounds, alignment, counts, sort orders, and
//! bit-plane/profile agreement once, then [`BorrowedFlavorDb`]
//! accessors are straight pointer arithmetic: no copies, no
//! allocation, no panics. See `DESIGN.md` §12 for the byte-level
//! layout and the validation ledger.

pub mod layout;

use crate::category::Category;
use crate::db::FlavorDb;
use crate::error::FlavorDbError;
use crate::ids::{IngredientId, MoleculeId};
use crate::profile::FlavorProfile;

use layout::{
    cast_u32s, cast_u64s, str_span, u32_at, u64_at, ArtifactWriter, Sections, StringTable,
};
pub use layout::{AlignedBytes, ArtifactError};

/// Magic bytes opening every CFDB2 buffer.
pub const CFDB2_MAGIC: [u8; 8] = *b"CFDB2\x00\x00\x00";
/// Format version this module writes and reads.
pub const CFDB2_VERSION: u32 = 2;

const K_META: u32 = 1;
const K_STRINGS: u32 = 2;
const K_MOLECULES: u32 = 3;
const K_DESC_SPANS: u32 = 4;
const K_INGREDIENTS: u32 = 5;
const K_PROFILE_IDS: u32 = 6;
const K_BIT_PLANES: u32 = 7;
const K_SYNONYMS: u32 = 8;
const K_NAME_INDEX: u32 = 9;
const K_OVERLAP_INDEX: u32 = 10;
const K_OVERLAP_POOL: u32 = 11;
const K_OVERLAP_TRI: u32 = 12;
const N_KINDS: usize = 12;

const META_BYTES: usize = 40;
const MOL_REC: usize = 16;
const SPAN_REC: usize = 8;
const ING_REC: usize = 24;
const SYN_REC: usize = 12;
const OVL_REC: usize = 24;

/// Ingredient-record flag bit: the slot holds a live ingredient.
const FLAG_LIVE: u32 = 1;
/// Ingredient-record flag bit: the ingredient is a compound.
const FLAG_COMPOUND: u32 = 2;

fn count_u32(n: usize, what: &str) -> Result<u32, ArtifactError> {
    u32::try_from(n).map_err(|_| ArtifactError::TooLarge(format!("{what} count {n} exceeds u32")))
}

fn push_u32s(out: &mut Vec<u8>, values: &[u32]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializes a [`FlavorDb`] (plus optional precomputed overlap
/// triangles) into a canonical CFDB2 buffer.
///
/// The builder is deterministic: the same database and overlap set
/// produce a byte-identical buffer on every run (synonyms, the name
/// index, and overlap sections are sorted; strings are interned in a
/// fixed traversal order).
#[derive(Debug)]
pub struct FlavorArtifactBuilder<'a> {
    db: &'a FlavorDb,
    overlaps: Vec<(String, Vec<IngredientId>, Vec<u32>)>,
}

impl<'a> FlavorArtifactBuilder<'a> {
    /// Start a builder over an owned database.
    pub fn new(db: &'a FlavorDb) -> FlavorArtifactBuilder<'a> {
        FlavorArtifactBuilder {
            db,
            overlaps: Vec::new(),
        }
    }

    /// Attach a precomputed overlap triangle under `label` (typically
    /// a region code): `pool` is the strictly sorted ingredient pool
    /// and `tri` its upper-triangle pairwise shared-molecule counts in
    /// the same row-major order `OverlapCache` uses
    /// (`tri.len() == pool.len()·(pool.len()−1)/2`).
    pub fn add_overlap(
        &mut self,
        label: &str,
        pool: &[IngredientId],
        tri: &[u32],
    ) -> Result<(), ArtifactError> {
        if label.is_empty() {
            return Err(ArtifactError::Corrupt(
                "overlap label must not be empty".to_string(),
            ));
        }
        if self.overlaps.iter().any(|(l, _, _)| l == label) {
            return Err(ArtifactError::Corrupt(format!(
                "duplicate overlap label '{label}'"
            )));
        }
        if !pool.windows(2).all(|w| w[0] < w[1]) {
            return Err(ArtifactError::Corrupt(format!(
                "overlap '{label}' pool is not strictly sorted"
            )));
        }
        for &id in pool {
            if self.db.ingredient(id).is_err() {
                return Err(ArtifactError::Corrupt(format!(
                    "overlap '{label}' references dead ingredient {id}"
                )));
            }
        }
        let expect = pool.len() * pool.len().saturating_sub(1) / 2;
        if tri.len() != expect {
            return Err(ArtifactError::Corrupt(format!(
                "overlap '{label}' has {} counts for a {}-pool (need {expect})",
                tri.len(),
                pool.len()
            )));
        }
        self.overlaps
            .push((label.to_owned(), pool.to_vec(), tri.to_vec()));
        Ok(())
    }

    /// Serialize into a canonical CFDB2 buffer.
    pub fn build(&self) -> Result<Vec<u8>, ArtifactError> {
        let db = self.db;
        let n_molecules = db.n_molecules();
        let n_slots = db.n_ingredient_slots();
        let universe_words = n_molecules.div_ceil(64);

        let mut strings = StringTable::new();

        // Molecules + descriptor spans, in id order.
        let mut molecules_sec = Vec::with_capacity(n_molecules * MOL_REC);
        let mut desc_spans_sec = Vec::new();
        let mut n_desc_spans = 0u32;
        for m in db.molecules() {
            let (name_off, name_len) = strings.intern(&m.name)?;
            let desc_start = n_desc_spans;
            for d in &m.descriptors {
                let (off, len) = strings.intern(d)?;
                push_u32s(&mut desc_spans_sec, &[off, len]);
                n_desc_spans = n_desc_spans
                    .checked_add(1)
                    .ok_or_else(|| ArtifactError::TooLarge("descriptor spans".to_string()))?;
            }
            let count = count_u32(m.descriptors.len(), "molecule descriptor")?;
            push_u32s(&mut molecules_sec, &[name_off, name_len, desc_start, count]);
        }

        // Ingredient slots, profile ids, and full-universe bit planes,
        // in slot order (dead slots are all-zero records/planes).
        let mut ingredients_sec = Vec::with_capacity(n_slots * ING_REC);
        let mut profile_ids_sec = Vec::new();
        let mut planes_sec = Vec::with_capacity(n_slots * universe_words * 8);
        let mut n_profile_ids = 0u32;
        let mut n_live = 0usize;
        for slot in 0..n_slots {
            let slot_u32 = count_u32(slot, "ingredient slot")?;
            match db.ingredient(IngredientId(slot_u32)) {
                Ok(ing) => {
                    n_live += 1;
                    let (name_off, name_len) = strings.intern(&ing.name)?;
                    let prof_start = n_profile_ids;
                    let mut plane = vec![0u64; universe_words];
                    for &m in ing.profile.molecules() {
                        push_u32s(&mut profile_ids_sec, &[m.0]);
                        let bit = m.index();
                        if let Some(word) = plane.get_mut(bit / 64) {
                            *word |= 1u64 << (bit % 64);
                        }
                    }
                    n_profile_ids =
                        count_u32(n_profile_ids as usize + ing.profile.len(), "profile id")?;
                    let flags = FLAG_LIVE | if ing.is_compound { FLAG_COMPOUND } else { 0 };
                    let category = count_u32(ing.category.index(), "category")?;
                    push_u32s(
                        &mut ingredients_sec,
                        &[
                            name_off,
                            name_len,
                            prof_start,
                            n_profile_ids - prof_start,
                            flags,
                            category,
                        ],
                    );
                    for w in plane {
                        planes_sec.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Err(_) => {
                    push_u32s(&mut ingredients_sec, &[0, 0, n_profile_ids, 0, 0, 0]);
                    planes_sec.extend_from_slice(&vec![0u8; universe_words * 8]);
                }
            }
        }

        // Synonyms sorted by name (HashMap iteration order is not
        // deterministic; the sort also enables binary-search lookup).
        let mut synonyms: Vec<(&str, IngredientId)> = db.synonyms().collect();
        synonyms.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut synonyms_sec = Vec::with_capacity(synonyms.len() * SYN_REC);
        for (name, target) in &synonyms {
            let (off, len) = strings.intern(name)?;
            push_u32s(&mut synonyms_sec, &[off, len, target.0]);
        }

        // Live slots sorted by canonical name.
        let mut by_name: Vec<IngredientId> = db.ingredient_ids().collect();
        by_name.sort_unstable_by(|&a, &b| {
            let an = db.ingredient(a).map(|i| i.name.as_str()).unwrap_or("");
            let bn = db.ingredient(b).map(|i| i.name.as_str()).unwrap_or("");
            an.cmp(bn)
        });
        let mut name_index_sec = Vec::with_capacity(by_name.len() * 4);
        for id in &by_name {
            push_u32s(&mut name_index_sec, &[id.0]);
        }

        // Overlap sections sorted by label; pools and triangles tile
        // their flat arrays in index order.
        let mut overlaps: Vec<&(String, Vec<IngredientId>, Vec<u32>)> =
            self.overlaps.iter().collect();
        overlaps.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut overlap_index_sec = Vec::with_capacity(overlaps.len() * OVL_REC);
        let mut overlap_pool_sec = Vec::new();
        let mut overlap_tri_sec = Vec::new();
        let mut pool_cursor = 0u32;
        let mut tri_cursor = 0u32;
        for (label, pool, tri) in overlaps.iter().copied() {
            let (off, len) = strings.intern(label)?;
            let pool_len = count_u32(pool.len(), "overlap pool")?;
            let tri_len = count_u32(tri.len(), "overlap triangle")?;
            push_u32s(
                &mut overlap_index_sec,
                &[off, len, pool_cursor, pool_len, tri_cursor, tri_len],
            );
            for id in pool {
                push_u32s(&mut overlap_pool_sec, &[id.0]);
            }
            push_u32s(&mut overlap_tri_sec, tri);
            pool_cursor = count_u32(pool_cursor as usize + pool.len(), "overlap pool")?;
            tri_cursor = count_u32(tri_cursor as usize + tri.len(), "overlap triangle")?;
        }

        let mut meta = Vec::with_capacity(META_BYTES);
        push_u32s(
            &mut meta,
            &[
                count_u32(n_molecules, "molecule")?,
                count_u32(n_slots, "ingredient slot")?,
                count_u32(n_live, "live ingredient")?,
                count_u32(synonyms.len(), "synonym")?,
                n_desc_spans,
                n_profile_ids,
                count_u32(universe_words, "universe word")?,
                count_u32(self.overlaps.len(), "overlap")?,
            ],
        );
        meta.extend_from_slice(&0u64.to_le_bytes());

        let mut w = ArtifactWriter::new(CFDB2_MAGIC, CFDB2_VERSION);
        w.section(K_META, meta);
        w.section(K_STRINGS, strings.into_blob());
        w.section(K_MOLECULES, molecules_sec);
        w.section(K_DESC_SPANS, desc_spans_sec);
        w.section(K_INGREDIENTS, ingredients_sec);
        w.section(K_PROFILE_IDS, profile_ids_sec);
        w.section(K_BIT_PLANES, planes_sec);
        w.section(K_SYNONYMS, synonyms_sec);
        w.section(K_NAME_INDEX, name_index_sec);
        w.section(K_OVERLAP_INDEX, overlap_index_sec);
        w.section(K_OVERLAP_POOL, overlap_pool_sec);
        w.section(K_OVERLAP_TRI, overlap_tri_sec);
        w.finish()
    }
}

/// A validated zero-copy view over a CFDB2 buffer.
///
/// Construction ([`open`]) is the only place that can fail; every
/// accessor afterwards is bounds-safe pointer arithmetic returning
/// borrows into the underlying buffer.
#[derive(Debug, Clone, Copy)]
pub struct BorrowedFlavorDb<'a> {
    strings: &'a str,
    molecules: &'a [u8],
    desc_spans: &'a [u8],
    ingredients: &'a [u8],
    profile_ids: &'a [MoleculeId],
    planes: &'a [u64],
    synonyms: &'a [u8],
    name_index: &'a [u32],
    overlap_index: &'a [u8],
    overlap_pool: &'a [IngredientId],
    overlap_tri: &'a [u32],
    n_molecules: usize,
    n_slots: usize,
    n_live: usize,
    universe_words: usize,
}

/// Reinterpret a validated `&[u32]` as ids (`repr(transparent)`).
fn as_molecule_ids(ids: &[u32]) -> &[MoleculeId] {
    // SAFETY: MoleculeId is repr(transparent) over u32, so the slices
    // have identical layout.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<MoleculeId>(), ids.len()) }
}

/// Reinterpret a validated `&[u32]` as ids (`repr(transparent)`).
fn as_ingredient_ids(ids: &[u32]) -> &[IngredientId] {
    // SAFETY: IngredientId is repr(transparent) over u32, so the
    // slices have identical layout.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<IngredientId>(), ids.len()) }
}

/// Validate a CFDB2 buffer and return its zero-copy view.
///
/// The buffer must start on an 8-byte boundary ([`AlignedBytes`]
/// guarantees that for file loads) on a little-endian host. Every
/// structural invariant the accessors rely on is checked here once;
/// see `DESIGN.md` §12 for the full ledger.
pub fn open(buf: &[u8]) -> Result<BorrowedFlavorDb<'_>, ArtifactError> {
    let sections = Sections::parse(buf, &CFDB2_MAGIC, CFDB2_VERSION, N_KINDS)?;
    let meta = sections.bytes(K_META as usize);
    if meta.len() != META_BYTES {
        return Err(ArtifactError::Corrupt(format!(
            "META section is {} bytes, expected {META_BYTES}",
            meta.len()
        )));
    }
    let n_molecules = u32_at(meta, 0) as usize;
    let n_slots = u32_at(meta, 4) as usize;
    let n_live = u32_at(meta, 8) as usize;
    let n_synonyms = u32_at(meta, 12) as usize;
    let n_desc_spans = u32_at(meta, 16) as usize;
    let n_profile_ids = u32_at(meta, 20) as usize;
    let universe_words = u32_at(meta, 24) as usize;
    let n_overlaps = u32_at(meta, 28) as usize;
    if u64_at(meta, 32) != 0 {
        return Err(ArtifactError::Corrupt(
            "META reserved field set".to_string(),
        ));
    }
    if universe_words != n_molecules.div_ceil(64) {
        return Err(ArtifactError::Corrupt(format!(
            "universe_words {universe_words} does not match {n_molecules} molecules"
        )));
    }

    let check_len = |kind: u32, per: usize, n: usize, what: &str| -> Result<&[u8], ArtifactError> {
        let bytes = sections.bytes(kind as usize);
        let need = per
            .checked_mul(n)
            .ok_or_else(|| ArtifactError::TooLarge(format!("{what} section size overflows")))?;
        if bytes.len() != need {
            return Err(ArtifactError::Corrupt(format!(
                "{what} section is {} bytes, counts require {need}",
                bytes.len()
            )));
        }
        Ok(bytes)
    };

    let strings = std::str::from_utf8(sections.bytes(K_STRINGS as usize))
        .map_err(|e| ArtifactError::Corrupt(format!("string blob is not UTF-8: {e}")))?;
    let molecules = check_len(K_MOLECULES, MOL_REC, n_molecules, "MOLECULES")?;
    let desc_spans = check_len(K_DESC_SPANS, SPAN_REC, n_desc_spans, "DESC_SPANS")?;
    let ingredients = check_len(K_INGREDIENTS, ING_REC, n_slots, "INGREDIENTS")?;
    let profile_bytes = check_len(K_PROFILE_IDS, 4, n_profile_ids, "PROFILE_IDS")?;
    let planes_bytes = check_len(K_BIT_PLANES, 8 * universe_words, n_slots, "BIT_PLANES")?;
    let synonyms = check_len(K_SYNONYMS, SYN_REC, n_synonyms, "SYNONYMS")?;
    let name_index_bytes = check_len(K_NAME_INDEX, 4, n_live, "NAME_INDEX")?;
    let overlap_index = check_len(K_OVERLAP_INDEX, OVL_REC, n_overlaps, "OVERLAP_INDEX")?;

    let profile_ids = as_molecule_ids(cast_u32s(profile_bytes)?);
    let planes = cast_u64s(planes_bytes)?;
    let name_index = cast_u32s(name_index_bytes)?;
    let overlap_pool = as_ingredient_ids(cast_u32s(sections.bytes(K_OVERLAP_POOL as usize))?);
    let overlap_tri = cast_u32s(sections.bytes(K_OVERLAP_TRI as usize))?;

    // Molecule records: valid name spans, canonical descriptor tiling.
    let mut desc_cursor = 0usize;
    for i in 0..n_molecules {
        let rec = i * MOL_REC;
        let name = str_span(strings, u32_at(molecules, rec), u32_at(molecules, rec + 4))
            .ok_or_else(|| ArtifactError::Corrupt(format!("molecule {i} name span invalid")))?;
        if name.is_empty() {
            return Err(ArtifactError::Corrupt(format!(
                "molecule {i} has empty name"
            )));
        }
        let desc_start = u32_at(molecules, rec + 8) as usize;
        let desc_count = u32_at(molecules, rec + 12) as usize;
        if desc_start != desc_cursor {
            return Err(ArtifactError::Corrupt(format!(
                "molecule {i} descriptor run starts at {desc_start}, canonical is {desc_cursor}"
            )));
        }
        desc_cursor += desc_count;
        if desc_cursor > n_desc_spans {
            return Err(ArtifactError::Corrupt(format!(
                "molecule {i} descriptor run overruns DESC_SPANS"
            )));
        }
    }
    if desc_cursor != n_desc_spans {
        return Err(ArtifactError::Corrupt(format!(
            "DESC_SPANS has {n_desc_spans} spans, molecules reference {desc_cursor}"
        )));
    }
    for i in 0..n_desc_spans {
        let rec = i * SPAN_REC;
        str_span(
            strings,
            u32_at(desc_spans, rec),
            u32_at(desc_spans, rec + 4),
        )
        .ok_or_else(|| ArtifactError::Corrupt(format!("descriptor span {i} invalid")))?;
    }

    // Ingredient slots: canonical profile tiling, sorted in-range
    // profiles, and bit planes that agree with them exactly.
    let mut prof_cursor = 0usize;
    let mut live_seen = 0usize;
    for slot in 0..n_slots {
        let rec = slot * ING_REC;
        let name_off = u32_at(ingredients, rec);
        let name_len = u32_at(ingredients, rec + 4);
        let prof_start = u32_at(ingredients, rec + 8) as usize;
        let prof_len = u32_at(ingredients, rec + 12) as usize;
        let flags = u32_at(ingredients, rec + 16);
        let category = u32_at(ingredients, rec + 20) as usize;
        if flags & !(FLAG_LIVE | FLAG_COMPOUND) != 0 {
            return Err(ArtifactError::Corrupt(format!(
                "ingredient slot {slot} has unknown flags {flags:#x}"
            )));
        }
        if prof_start != prof_cursor {
            return Err(ArtifactError::Corrupt(format!(
                "ingredient slot {slot} profile starts at {prof_start}, canonical is {prof_cursor}"
            )));
        }
        prof_cursor += prof_len;
        if prof_cursor > n_profile_ids {
            return Err(ArtifactError::Corrupt(format!(
                "ingredient slot {slot} profile overruns PROFILE_IDS"
            )));
        }
        let plane = planes
            .get(slot * universe_words..(slot + 1) * universe_words)
            .unwrap_or(&[]);
        if flags & FLAG_LIVE != 0 {
            live_seen += 1;
            if category >= Category::ALL.len() {
                return Err(ArtifactError::Corrupt(format!(
                    "ingredient slot {slot} has category {category} (>= 21)"
                )));
            }
            let name = str_span(strings, name_off, name_len).ok_or_else(|| {
                ArtifactError::Corrupt(format!("ingredient slot {slot} name span invalid"))
            })?;
            if name.is_empty() {
                return Err(ArtifactError::Corrupt(format!(
                    "ingredient slot {slot} has empty name"
                )));
            }
            let profile = profile_ids
                .get(prof_start..prof_start + prof_len)
                .unwrap_or(&[]);
            let mut prev: Option<MoleculeId> = None;
            for &m in profile {
                if m.index() >= n_molecules {
                    return Err(ArtifactError::Corrupt(format!(
                        "ingredient slot {slot} references molecule {} (>= {n_molecules})",
                        m.0
                    )));
                }
                if prev.is_some_and(|p| p >= m) {
                    return Err(ArtifactError::Corrupt(format!(
                        "ingredient slot {slot} profile is not strictly sorted"
                    )));
                }
                prev = Some(m);
                let bit = m.index();
                let word = plane.get(bit / 64).copied().unwrap_or(0);
                if word >> (bit % 64) & 1 == 0 {
                    return Err(ArtifactError::Corrupt(format!(
                        "ingredient slot {slot} bit plane is missing molecule {}",
                        m.0
                    )));
                }
            }
            // Popcount equality + every profile bit present ⇒ the
            // plane is exactly the profile (catches any stray bit).
            if crate::kernel::popcount(plane) as usize != prof_len {
                return Err(ArtifactError::Corrupt(format!(
                    "ingredient slot {slot} bit plane popcount disagrees with profile length"
                )));
            }
        } else {
            if name_off != 0 || name_len != 0 || prof_len != 0 || flags != 0 || category != 0 {
                return Err(ArtifactError::Corrupt(format!(
                    "dead ingredient slot {slot} has nonzero fields"
                )));
            }
            if crate::kernel::popcount(plane) != 0 {
                return Err(ArtifactError::Corrupt(format!(
                    "dead ingredient slot {slot} has bits in its plane"
                )));
            }
        }
    }
    if prof_cursor != n_profile_ids {
        return Err(ArtifactError::Corrupt(format!(
            "PROFILE_IDS has {n_profile_ids} ids, ingredients reference {prof_cursor}"
        )));
    }
    if live_seen != n_live {
        return Err(ArtifactError::Corrupt(format!(
            "META declares {n_live} live ingredients, slots hold {live_seen}"
        )));
    }

    let view = BorrowedFlavorDb {
        strings,
        molecules,
        desc_spans,
        ingredients,
        profile_ids,
        planes,
        synonyms,
        name_index,
        overlap_index,
        overlap_pool,
        overlap_tri,
        n_molecules,
        n_slots,
        n_live,
        universe_words,
    };

    // Synonyms: valid spans, strictly name-sorted, in-range targets.
    let mut prev_name: Option<&str> = None;
    for i in 0..n_synonyms {
        let rec = i * SYN_REC;
        let name = str_span(strings, u32_at(synonyms, rec), u32_at(synonyms, rec + 4))
            .ok_or_else(|| ArtifactError::Corrupt(format!("synonym {i} name span invalid")))?;
        if prev_name.is_some_and(|p| p >= name) {
            return Err(ArtifactError::Corrupt(format!(
                "synonyms are not strictly sorted at entry {i}"
            )));
        }
        prev_name = Some(name);
        let target = u32_at(synonyms, rec + 8) as usize;
        if target >= n_slots {
            return Err(ArtifactError::Corrupt(format!(
                "synonym {i} targets slot {target} (>= {n_slots})"
            )));
        }
    }

    // Name index: live slots, strictly sorted by canonical name.
    let mut prev_name: Option<&str> = None;
    for (i, &slot) in name_index.iter().enumerate() {
        let slot = slot as usize;
        if slot >= n_slots || !view.is_live(IngredientId(slot as u32)) {
            return Err(ArtifactError::Corrupt(format!(
                "name index entry {i} references slot {slot}, which is not live"
            )));
        }
        let name = view.slot_name(slot);
        if prev_name.is_some_and(|p| p >= name) {
            return Err(ArtifactError::Corrupt(format!(
                "name index is not strictly sorted at entry {i}"
            )));
        }
        prev_name = Some(name);
    }

    // Overlap sections: strictly label-sorted, canonical pool/triangle
    // tiling, live sorted pools, exact triangle sizes.
    let mut prev_label: Option<&str> = None;
    let mut pool_cursor = 0usize;
    let mut tri_cursor = 0usize;
    for i in 0..n_overlaps {
        let rec = i * OVL_REC;
        let label = str_span(
            strings,
            u32_at(overlap_index, rec),
            u32_at(overlap_index, rec + 4),
        )
        .ok_or_else(|| ArtifactError::Corrupt(format!("overlap {i} label span invalid")))?;
        if label.is_empty() {
            return Err(ArtifactError::Corrupt(format!(
                "overlap {i} has empty label"
            )));
        }
        if prev_label.is_some_and(|p| p >= label) {
            return Err(ArtifactError::Corrupt(format!(
                "overlap labels are not strictly sorted at entry {i}"
            )));
        }
        prev_label = Some(label);
        let pool_start = u32_at(overlap_index, rec + 8) as usize;
        let pool_len = u32_at(overlap_index, rec + 12) as usize;
        let tri_start = u32_at(overlap_index, rec + 16) as usize;
        let tri_len = u32_at(overlap_index, rec + 20) as usize;
        if pool_start != pool_cursor || tri_start != tri_cursor {
            return Err(ArtifactError::Corrupt(format!(
                "overlap '{label}' spans are not canonically tiled"
            )));
        }
        pool_cursor += pool_len;
        tri_cursor += tri_len;
        if pool_cursor > overlap_pool.len() || tri_cursor > overlap_tri.len() {
            return Err(ArtifactError::Corrupt(format!(
                "overlap '{label}' overruns its flat arrays"
            )));
        }
        if tri_len != pool_len * pool_len.saturating_sub(1) / 2 {
            return Err(ArtifactError::Corrupt(format!(
                "overlap '{label}' triangle size {tri_len} mismatches pool of {pool_len}"
            )));
        }
        let pool = overlap_pool
            .get(pool_start..pool_start + pool_len)
            .unwrap_or(&[]);
        let mut prev: Option<IngredientId> = None;
        for &id in pool {
            if id.index() >= n_slots || !view.is_live(id) {
                return Err(ArtifactError::Corrupt(format!(
                    "overlap '{label}' pool references slot {}, which is not live",
                    id.0
                )));
            }
            if prev.is_some_and(|p| p >= id) {
                return Err(ArtifactError::Corrupt(format!(
                    "overlap '{label}' pool is not strictly sorted"
                )));
            }
            prev = Some(id);
        }
    }
    if pool_cursor != overlap_pool.len() || tri_cursor != overlap_tri.len() {
        return Err(ArtifactError::Corrupt(format!(
            "overlap flat arrays hold {} pool ids / {} counts, index references {pool_cursor} / {tri_cursor}",
            overlap_pool.len(),
            overlap_tri.len()
        )));
    }

    Ok(view)
}

impl<'a> BorrowedFlavorDb<'a> {
    /// Number of molecules.
    pub fn n_molecules(&self) -> usize {
        self.n_molecules
    }

    /// Number of ingredient slots (live + tombstoned).
    pub fn n_ingredient_slots(&self) -> usize {
        self.n_slots
    }

    /// Number of live ingredients.
    pub fn n_ingredients(&self) -> usize {
        self.n_live
    }

    /// `u64` words per bit plane (`n_molecules / 64`, rounded up).
    pub fn universe_words(&self) -> usize {
        self.universe_words
    }

    /// Name of a molecule, if the id is in range.
    pub fn molecule_name(&self, id: MoleculeId) -> Option<&'a str> {
        if id.index() >= self.n_molecules {
            return None;
        }
        let rec = id.index() * MOL_REC;
        str_span(
            self.strings,
            u32_at(self.molecules, rec),
            u32_at(self.molecules, rec + 4),
        )
    }

    /// Descriptors of a molecule (empty when the id is out of range).
    pub fn molecule_descriptors(&self, id: MoleculeId) -> impl Iterator<Item = &'a str> + '_ {
        let (start, count) = if id.index() < self.n_molecules {
            let rec = id.index() * MOL_REC;
            (
                u32_at(self.molecules, rec + 8) as usize,
                u32_at(self.molecules, rec + 12) as usize,
            )
        } else {
            (0, 0)
        };
        (start..start + count).filter_map(move |i| {
            let rec = i * SPAN_REC;
            str_span(
                self.strings,
                u32_at(self.desc_spans, rec),
                u32_at(self.desc_spans, rec + 4),
            )
        })
    }

    fn slot_flags(&self, slot: usize) -> u32 {
        u32_at(self.ingredients, slot * ING_REC + 16)
    }

    fn slot_name(&self, slot: usize) -> &'a str {
        let rec = slot * ING_REC;
        str_span(
            self.strings,
            u32_at(self.ingredients, rec),
            u32_at(self.ingredients, rec + 4),
        )
        .unwrap_or("")
    }

    /// True when the slot holds a live ingredient.
    pub fn is_live(&self, id: IngredientId) -> bool {
        id.index() < self.n_slots && self.slot_flags(id.index()) & FLAG_LIVE != 0
    }

    /// Canonical name of a live ingredient.
    pub fn ingredient_name(&self, id: IngredientId) -> Option<&'a str> {
        self.is_live(id).then(|| self.slot_name(id.index()))
    }

    /// Category of a live ingredient.
    pub fn category(&self, id: IngredientId) -> Option<Category> {
        if !self.is_live(id) {
            return None;
        }
        Category::from_index(u32_at(self.ingredients, id.index() * ING_REC + 20) as usize)
    }

    /// True when a live ingredient is a compound.
    pub fn is_compound(&self, id: IngredientId) -> Option<bool> {
        self.is_live(id)
            .then(|| self.slot_flags(id.index()) & FLAG_COMPOUND != 0)
    }

    /// Sorted molecule ids of a live ingredient's profile, borrowed
    /// from the buffer.
    pub fn profile(&self, id: IngredientId) -> Option<&'a [MoleculeId]> {
        if !self.is_live(id) {
            return None;
        }
        let rec = id.index() * ING_REC;
        let start = u32_at(self.ingredients, rec + 8) as usize;
        let len = u32_at(self.ingredients, rec + 12) as usize;
        self.profile_ids.get(start..start + len)
    }

    /// The full-universe bit plane of a slot (zeros for dead slots),
    /// borrowed from the buffer. Bit position = global molecule id.
    pub fn plane(&self, id: IngredientId) -> Option<&'a [u64]> {
        if id.index() >= self.n_slots {
            return None;
        }
        self.planes
            .get(id.index() * self.universe_words..(id.index() + 1) * self.universe_words)
    }

    /// Shared-molecule count of two live ingredients: one AND+popcount
    /// sweep over their borrowed planes.
    pub fn shared_count(&self, a: IngredientId, b: IngredientId) -> Option<u64> {
        if !self.is_live(a) || !self.is_live(b) {
            return None;
        }
        Some(crate::kernel::and_popcount(self.plane(a)?, self.plane(b)?))
    }

    /// Resolve a (case-insensitive) name — canonical first, then
    /// synonyms — by binary search over the sorted indexes.
    pub fn ingredient_by_name(&self, name: &str) -> Option<IngredientId> {
        let key = name.to_lowercase();
        if let Ok(i) = self
            .name_index
            .binary_search_by(|&slot| self.slot_name(slot as usize).cmp(key.as_str()))
        {
            return self.name_index.get(i).map(|&slot| IngredientId(slot));
        }
        let n_syn = self.synonyms.len() / SYN_REC;
        let mut lo = 0usize;
        let mut hi = n_syn;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = mid * SYN_REC;
            let syn = str_span(
                self.strings,
                u32_at(self.synonyms, rec),
                u32_at(self.synonyms, rec + 4),
            )
            .unwrap_or("");
            match syn.cmp(key.as_str()) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let target = IngredientId(u32_at(self.synonyms, rec + 8));
                    // Dead targets don't resolve (mirrors FlavorDb).
                    return self.is_live(target).then_some(target);
                }
            }
        }
        None
    }

    /// All registered synonyms as `(name, target)`, in name order.
    pub fn synonyms(&self) -> impl Iterator<Item = (&'a str, IngredientId)> + '_ {
        (0..self.synonyms.len() / SYN_REC).filter_map(move |i| {
            let rec = i * SYN_REC;
            let name = str_span(
                self.strings,
                u32_at(self.synonyms, rec),
                u32_at(self.synonyms, rec + 4),
            )?;
            Some((name, IngredientId(u32_at(self.synonyms, rec + 8))))
        })
    }

    /// Ids of all live ingredients, in slot order.
    pub fn live_ids(&self) -> impl Iterator<Item = IngredientId> + '_ {
        (0..self.n_slots)
            .map(|s| IngredientId(s as u32))
            .filter(|&id| self.is_live(id))
    }

    /// Number of precomputed overlap sections.
    pub fn n_overlaps(&self) -> usize {
        self.overlap_index.len() / OVL_REC
    }

    /// The labels of the precomputed overlap sections, sorted.
    pub fn overlap_labels(&self) -> impl Iterator<Item = &'a str> + '_ {
        (0..self.n_overlaps()).filter_map(move |i| {
            let rec = i * OVL_REC;
            str_span(
                self.strings,
                u32_at(self.overlap_index, rec),
                u32_at(self.overlap_index, rec + 4),
            )
        })
    }

    /// The precomputed overlap section under `label`: the sorted
    /// ingredient pool and its upper-triangle pairwise counts, both
    /// borrowed from the buffer.
    pub fn overlap(&self, label: &str) -> Option<(&'a [IngredientId], &'a [u32])> {
        let n = self.n_overlaps();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = mid * OVL_REC;
            let l = str_span(
                self.strings,
                u32_at(self.overlap_index, rec),
                u32_at(self.overlap_index, rec + 4),
            )
            .unwrap_or("");
            match l.cmp(label) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let pool_start = u32_at(self.overlap_index, rec + 8) as usize;
                    let pool_len = u32_at(self.overlap_index, rec + 12) as usize;
                    let tri_start = u32_at(self.overlap_index, rec + 16) as usize;
                    let tri_len = u32_at(self.overlap_index, rec + 20) as usize;
                    let pool = self.overlap_pool.get(pool_start..pool_start + pool_len)?;
                    let tri = self.overlap_tri.get(tri_start..tri_start + tri_len)?;
                    return Some((pool, tri));
                }
            }
        }
        None
    }

    /// Rebuild an owned [`FlavorDb`] equal to the one the artifact was
    /// built from (the CFDB1 migration path in reverse): replays
    /// molecules in id order, ingredients in slot order (tombstoning
    /// dead slots the way [`crate::io::from_snapshot`] does), then
    /// synonyms.
    pub fn to_flavor_db(&self) -> Result<FlavorDb, FlavorDbError> {
        let mut db = FlavorDb::new();
        for i in 0..self.n_molecules {
            let id = MoleculeId(i as u32);
            let name = self
                .molecule_name(id)
                .ok_or_else(|| FlavorDbError::Snapshot(format!("molecule {i} unreadable")))?;
            let descriptors: Vec<&str> = self.molecule_descriptors(id).collect();
            db.add_molecule(name, &descriptors)
                .map_err(|e| FlavorDbError::Snapshot(format!("molecule replay: {e}")))?;
        }
        for slot in 0..self.n_slots {
            let id = IngredientId(slot as u32);
            if self.is_live(id) {
                let name = self
                    .ingredient_name(id)
                    .ok_or_else(|| FlavorDbError::Snapshot(format!("slot {slot} unreadable")))?;
                let category = self.category(id).ok_or_else(|| {
                    FlavorDbError::Snapshot(format!("slot {slot} category unreadable"))
                })?;
                let profile = self.profile(id).unwrap_or(&[]);
                let is_compound = self.is_compound(id).unwrap_or(false);
                db.add_ingredient_raw(
                    name,
                    category,
                    FlavorProfile::new(profile.to_vec()),
                    is_compound,
                )
                .map_err(|e| FlavorDbError::Snapshot(format!("ingredient replay: {e}")))?;
            } else {
                // Recreate the tombstone to keep the id space identical.
                let placeholder = format!("__tombstone_{slot}");
                db.add_ingredient_raw(&placeholder, Category::Plant, FlavorProfile::empty(), false)
                    .map_err(|e| FlavorDbError::Snapshot(format!("tombstone replay: {e}")))?;
                db.remove_ingredient(&placeholder)
                    .map_err(|e| FlavorDbError::Snapshot(format!("tombstone replay: {e}")))?;
            }
        }
        for (name, target) in self.synonyms() {
            db.add_synonym_raw(name.to_owned(), target);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curated;

    fn curated_db() -> FlavorDb {
        curated::curated_db()
    }

    fn build(db: &FlavorDb) -> Vec<u8> {
        FlavorArtifactBuilder::new(db).build().expect("builds")
    }

    #[test]
    fn borrowed_view_matches_owned_db() {
        let db = curated_db();
        let buf = AlignedBytes::from_vec(build(&db));
        let view = open(buf.as_slice()).expect("opens");

        assert_eq!(view.n_molecules(), db.n_molecules());
        assert_eq!(view.n_ingredient_slots(), db.n_ingredient_slots());
        assert_eq!(view.n_ingredients(), db.n_ingredients());

        for ing in db.ingredients() {
            assert_eq!(view.ingredient_name(ing.id), Some(ing.name.as_str()));
            assert_eq!(view.category(ing.id), Some(ing.category));
            assert_eq!(view.is_compound(ing.id), Some(ing.is_compound));
            assert_eq!(view.profile(ing.id), Some(ing.profile.molecules()));
            assert_eq!(view.ingredient_by_name(&ing.name), Some(ing.id));
        }
        for (syn, target) in db.synonyms() {
            // Dead targets don't resolve in either representation.
            assert_eq!(
                view.ingredient_by_name(syn),
                db.ingredient_by_name(syn),
                "synonym {syn}"
            );
            assert!(view.synonyms().any(|(n, t)| n == syn && t == target));
        }
        assert_eq!(view.ingredient_by_name("no-such-ingredient"), None);

        for m in db.molecules() {
            assert_eq!(view.molecule_name(m.id), Some(m.name.as_str()));
            let descs: Vec<&str> = view.molecule_descriptors(m.id).collect();
            assert_eq!(descs.len(), m.descriptors.len());
            for (a, b) in descs.iter().zip(&m.descriptors) {
                assert_eq!(*a, b.as_str());
            }
        }
    }

    #[test]
    fn planes_reproduce_shared_counts() {
        let db = curated_db();
        let buf = AlignedBytes::from_vec(build(&db));
        let view = open(buf.as_slice()).expect("opens");
        let ids: Vec<IngredientId> = db.ingredient_ids().collect();
        for &a in ids.iter().take(12) {
            for &b in ids.iter().take(12) {
                let owned = db.shared_molecules(a, b).expect("live pair");
                assert_eq!(view.shared_count(a, b), Some(owned as u64), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let mut db = curated_db();
        // Exercise the tombstone path.
        db.remove_ingredient("tomato").expect("tomato exists");
        let first = build(&db);
        let buf = AlignedBytes::from_vec(first.clone());
        let view = open(buf.as_slice()).expect("opens");
        let rebuilt = view.to_flavor_db().expect("rebuilds");
        assert_eq!(build(&rebuilt), first);
        assert!(!rebuilt
            .ingredient_ids()
            .any(|id| rebuilt.ingredient(id).expect("live").name == "tomato"));
    }

    #[test]
    fn overlap_sections_roundtrip() {
        let db = curated_db();
        let ids: Vec<IngredientId> = db.ingredient_ids().take(4).collect();
        let tri = vec![1u32, 2, 3, 4, 5, 6];
        let mut b = FlavorArtifactBuilder::new(&db);
        b.add_overlap("NorthAmerican", &ids, &tri).expect("valid");
        b.add_overlap("Italian", &ids[..2], &[9]).expect("valid");
        let buf = AlignedBytes::from_vec(b.build().expect("builds"));
        let view = open(buf.as_slice()).expect("opens");
        assert_eq!(view.n_overlaps(), 2);
        let (pool, t) = view.overlap("NorthAmerican").expect("present");
        assert_eq!(pool, &ids[..]);
        assert_eq!(t, &tri[..]);
        let (pool, t) = view.overlap("Italian").expect("present");
        assert_eq!(pool, &ids[..2]);
        assert_eq!(t, &[9]);
        assert!(view.overlap("Thai").is_none());
        let labels: Vec<&str> = view.overlap_labels().collect();
        assert_eq!(labels, ["Italian", "NorthAmerican"]);
    }

    #[test]
    fn overlap_builder_rejects_bad_sections() {
        let db = curated_db();
        let ids: Vec<IngredientId> = db.ingredient_ids().take(3).collect();
        let mut b = FlavorArtifactBuilder::new(&db);
        assert!(b.add_overlap("x", &ids, &[1, 2]).is_err(), "wrong tri size");
        let unsorted = vec![ids[1], ids[0], ids[2]];
        assert!(b.add_overlap("x", &unsorted, &[1, 2, 3]).is_err());
        b.add_overlap("x", &ids, &[1, 2, 3]).expect("valid");
        assert!(b.add_overlap("x", &ids, &[1, 2, 3]).is_err(), "dup label");
    }

    #[test]
    fn truncation_sweep_rejects_every_prefix() {
        let db = curated_db();
        let full = build(&db);
        for cut in 0..full.len() {
            let prefix = AlignedBytes::from_slice(&full[..cut]);
            assert!(open(prefix.as_slice()).is_err(), "prefix {cut} must fail");
        }
    }

    #[test]
    fn wrong_magic_and_version_error_distinctly() {
        let db = curated_db();
        let full = build(&db);
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        let bad_magic = AlignedBytes::from_vec(bad_magic);
        assert!(matches!(
            open(bad_magic.as_slice()),
            Err(ArtifactError::BadMagic)
        ));
        let mut bad_version = full.clone();
        bad_version[8] = 99;
        let bad_version = AlignedBytes::from_vec(bad_version);
        assert!(matches!(
            open(bad_version.as_slice()),
            Err(ArtifactError::BadVersion {
                found: 99,
                expect: CFDB2_VERSION
            })
        ));
    }

    #[test]
    fn misaligned_buffer_is_rejected() {
        let db = curated_db();
        let full = build(&db);
        let mut shifted = vec![0u8; full.len() + 4];
        shifted[4..].copy_from_slice(&full);
        let backing = AlignedBytes::from_vec(shifted);
        assert!(matches!(
            open(&backing.as_slice()[4..]),
            Err(ArtifactError::Misaligned)
        ));
    }
}
