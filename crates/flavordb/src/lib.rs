#![warn(missing_docs)]

//! # culinaria-flavordb
//!
//! A from-scratch reimplementation of the FlavorDB substrate the paper
//! depends on (Garg et al., *FlavorDB: a database of flavor molecules*,
//! NAR 2018): natural ingredients carrying *flavor profiles* — sets of
//! flavor molecules — organized into the paper's 21 categories, plus the
//! curation machinery the paper describes:
//!
//! * entity removal (29 generic/noisy entities were dropped);
//! * synonym registration (bun → bread, lager → beer, curd → yogurt);
//! * *compound ingredients* whose profile is the pooled union of their
//!   constituents (mayonnaise = oil + egg + lemon juice, "half half" =
//!   milk + cream, bear = black/polar/brown bear);
//! * additives with empty flavor profiles (cooking spray, gelatin, food
//!   coloring, liquid smoke).
//!
//! Since the real FlavorDB web resource is unavailable offline, two
//! sources of data are provided:
//!
//! * [`curated`] — a hand-written fixture embedding every ingredient the
//!   paper names explicitly, used by tests and examples;
//! * [`generator`] — a seeded synthetic generator producing an
//!   ingredient universe at FlavorDB scale (hundreds of ingredients,
//!   thousands of molecules) with realistic profile-size heterogeneity
//!   and within-category profile correlation. `culinaria-datagen` builds
//!   the paper-scale world on top of it.
//!
//! All hot paths use dense interned ids ([`MoleculeId`],
//! [`IngredientId`]) and sorted-slice profiles so profile intersection
//! is O(min(|A|, |B|)).

pub mod artifact;
pub mod category;
pub mod curated;
pub mod db;
pub mod error;
pub mod generator;
pub mod ids;
pub mod ingredient;
pub mod io;
pub mod kernel;
pub mod molecule;
pub mod profile;

pub use artifact::{AlignedBytes, ArtifactError, BorrowedFlavorDb, FlavorArtifactBuilder};
pub use category::Category;
pub use db::FlavorDb;
pub use error::{FlavorDbError, Result};
pub use ids::{IngredientId, MoleculeId};
pub use ingredient::Ingredient;
pub use molecule::Molecule;
pub use profile::{BitProfile, FlavorProfile, MoleculeUniverse};
