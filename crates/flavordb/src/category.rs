//! The paper's 21 ingredient categories.

use std::fmt;
use std::str::FromStr;

/// Ingredient category (§III.B of the paper lists exactly these 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Vegetables (onion, carrot, …).
    Vegetable,
    /// Dairy products (milk, cream, cheese, …).
    Dairy,
    /// Legumes (lentil, chickpea, …).
    Legume,
    /// Maize products.
    Maize,
    /// Cereals and grains.
    Cereal,
    /// Meats.
    Meat,
    /// Nuts and seeds.
    NutsAndSeeds,
    /// Generic plant-derived items not in a finer category.
    Plant,
    /// Fish.
    Fish,
    /// Non-fish seafood.
    Seafood,
    /// Spices.
    Spice,
    /// Bakery items.
    Bakery,
    /// Alcoholic beverages.
    BeverageAlcoholic,
    /// Non-alcoholic beverages.
    Beverage,
    /// Essential oils.
    EssentialOil,
    /// Edible flowers.
    Flower,
    /// Fruits.
    Fruit,
    /// Fungi (mushrooms, truffles, yeast, …).
    Fungus,
    /// Herbs.
    Herb,
    /// Food additives (baking powder, MSG, …).
    Additive,
    /// Ready-made dishes used as ingredients (compound entities).
    Dish,
}

impl Category {
    /// All 21 categories, in the paper's listing order.
    pub const ALL: [Category; 21] = [
        Category::Vegetable,
        Category::Dairy,
        Category::Legume,
        Category::Maize,
        Category::Cereal,
        Category::Meat,
        Category::NutsAndSeeds,
        Category::Plant,
        Category::Fish,
        Category::Seafood,
        Category::Spice,
        Category::Bakery,
        Category::BeverageAlcoholic,
        Category::Beverage,
        Category::EssentialOil,
        Category::Flower,
        Category::Fruit,
        Category::Fungus,
        Category::Herb,
        Category::Additive,
        Category::Dish,
    ];

    /// Stable display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Category::Vegetable => "Vegetable",
            Category::Dairy => "Dairy",
            Category::Legume => "Legume",
            Category::Maize => "Maize",
            Category::Cereal => "Cereal",
            Category::Meat => "Meat",
            Category::NutsAndSeeds => "Nuts and Seeds",
            Category::Plant => "Plant",
            Category::Fish => "Fish",
            Category::Seafood => "Seafood",
            Category::Spice => "Spice",
            Category::Bakery => "Bakery",
            Category::BeverageAlcoholic => "Beverage Alcoholic",
            Category::Beverage => "Beverage",
            Category::EssentialOil => "Essential Oil",
            Category::Flower => "Flower",
            Category::Fruit => "Fruit",
            Category::Fungus => "Fungus",
            Category::Herb => "Herb",
            Category::Additive => "Additive",
            Category::Dish => "Dish",
        }
    }

    /// Dense index in `0..21`, usable for flat per-category arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Category::index`]. `None` when out of range.
    pub fn from_index(idx: usize) -> Option<Category> {
        Category::ALL.get(idx).copied()
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Category {
    type Err = String;

    /// Parse a display name (case-insensitive; spaces tolerated).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_lowercase();
        Category::ALL
            .iter()
            .find(|c| c.name().to_lowercase() == norm)
            .copied()
            .ok_or_else(|| format!("unknown category '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_21_categories() {
        assert_eq!(Category::ALL.len(), 21);
        // All distinct.
        let mut names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn index_roundtrip() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Category::from_index(i), Some(*c));
        }
        assert_eq!(Category::from_index(21), None);
    }

    #[test]
    fn parse_roundtrip() {
        for c in Category::ALL {
            assert_eq!(c.name().parse::<Category>().unwrap(), c);
        }
        assert_eq!("spice".parse::<Category>().unwrap(), Category::Spice);
        assert_eq!(
            " nuts and seeds ".parse::<Category>().unwrap(),
            Category::NutsAndSeeds
        );
        assert!("Plutonium".parse::<Category>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Category::EssentialOil.to_string(), "Essential Oil");
    }
}
