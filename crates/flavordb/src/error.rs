//! Error type for database construction and curation.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FlavorDbError>;

/// Errors raised by [`crate::FlavorDb`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlavorDbError {
    /// An ingredient with this name (or a synonym colliding with it)
    /// already exists.
    DuplicateIngredient(String),
    /// A molecule with this name already exists.
    DuplicateMolecule(String),
    /// No ingredient with this name or id.
    UnknownIngredient(String),
    /// No molecule with this id.
    UnknownMolecule(u32),
    /// A compound ingredient referenced itself or had no constituents.
    InvalidCompound(String),
    /// A synonym would shadow an existing canonical name.
    SynonymShadowsCanonical(String),
    /// Snapshot decoding failed.
    Snapshot(String),
}

impl fmt::Display for FlavorDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlavorDbError::DuplicateIngredient(n) => write!(f, "duplicate ingredient '{n}'"),
            FlavorDbError::DuplicateMolecule(n) => write!(f, "duplicate molecule '{n}'"),
            FlavorDbError::UnknownIngredient(n) => write!(f, "unknown ingredient '{n}'"),
            FlavorDbError::UnknownMolecule(id) => write!(f, "unknown molecule id {id}"),
            FlavorDbError::InvalidCompound(n) => write!(f, "invalid compound ingredient '{n}'"),
            FlavorDbError::SynonymShadowsCanonical(n) => {
                write!(f, "synonym '{n}' shadows a canonical ingredient name")
            }
            FlavorDbError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for FlavorDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(FlavorDbError::DuplicateIngredient("basil".into())
            .to_string()
            .contains("basil"));
        assert!(FlavorDbError::UnknownMolecule(9).to_string().contains('9'));
    }
}
