//! Property-based tests of flavor-profile algebra and snapshot
//! round-trips.

use proptest::prelude::*;

use culinaria_flavordb::generator::{generate_flavor_db, GeneratorConfig};
use culinaria_flavordb::{io, Category, FlavorDb, FlavorProfile, MoleculeId};

fn arb_profile() -> impl Strategy<Value = FlavorProfile> {
    proptest::collection::vec(0u32..300, 0..60)
        .prop_map(|ids| ids.into_iter().collect::<FlavorProfile>())
}

/// Profiles over a wider id range, so packed universes span many words
/// (up to 10) and exercise the widened kernel's lanes and tails.
fn arb_wide_profile() -> impl Strategy<Value = FlavorProfile> {
    proptest::collection::vec(0u32..600, 0..80)
        .prop_map(|ids| ids.into_iter().collect::<FlavorProfile>())
}

proptest! {
    #[test]
    fn profile_set_algebra(a in arb_profile(), b in arb_profile()) {
        let inter = a.intersection(&b);
        let union = a.union(&b);
        // |A∩B| + |A∪B| = |A| + |B|.
        prop_assert_eq!(inter.len() + union.len(), a.len() + b.len());
        // Intersection ⊆ both, both ⊆ union.
        for &m in inter.molecules() {
            prop_assert!(a.contains(m) && b.contains(m));
        }
        for &m in a.molecules().iter().chain(b.molecules()) {
            prop_assert!(union.contains(m));
        }
        // shared_count agrees with materialized intersection.
        prop_assert_eq!(a.shared_count(&b), inter.len());
        prop_assert_eq!(b.shared_count(&a), inter.len());
    }

    #[test]
    fn bitset_shared_count_matches_sorted_merge(
        a in arb_wide_profile(),
        b in arb_wide_profile(),
        extra in proptest::collection::vec(arb_wide_profile(), 0..4),
    ) {
        use culinaria_flavordb::MoleculeUniverse;
        // The universe may be built from any superset of the two
        // profiles (in production: a whole cuisine's ingredient pool);
        // the lane-widened packed AND+popcount must agree with the
        // frozen sorted-merge walk at any universe width (ids up to
        // 600 → up to 10 words, crossing the 4-word lane boundary).
        let universe = MoleculeUniverse::build([&a, &b].into_iter().chain(extra.iter()));
        let pa = universe.pack(&a);
        let pb = universe.pack(&b);
        prop_assert_eq!(pa.shared_count(&pb), a.shared_count(&b));
        prop_assert_eq!(pb.shared_count(&pa), a.shared_count(&b));
        prop_assert_eq!(pa.count_ones(), a.len());
        prop_assert_eq!(pb.count_ones(), b.len());
    }

    #[test]
    fn widened_kernel_matches_scalar_reference(
        a in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 0..24),
        b in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 0..24),
    ) {
        use culinaria_flavordb::kernel;
        // The dispatched lane-widened primitives against the scalar
        // reference walk, on arbitrary words and ragged lengths.
        prop_assert_eq!(kernel::and_popcount(&a, &b), kernel::scalar::and_popcount(&a, &b));
        prop_assert_eq!(kernel::popcount(&a), kernel::scalar::popcount(&a));
        let n = a.len().min(b.len());
        let mut d1 = vec![0u64; n];
        let mut d2 = vec![0u64; n];
        prop_assert_eq!(
            kernel::and_store_popcount(&mut d1, &a, &b),
            kernel::scalar::and_store_popcount(&mut d2, &a, &b)
        );
        prop_assert_eq!(d1, d2);
        let mut c1 = vec![0u64; a.len()];
        let mut c2 = vec![0u64; a.len()];
        prop_assert_eq!(
            kernel::copy_popcount(&mut c1, &a),
            kernel::scalar::copy_popcount(&mut c2, &a)
        );
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn profile_jaccard_bounds(a in arb_profile(), b in arb_profile()) {
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        if !a.is_empty() {
            prop_assert_eq!(a.jaccard(&a), 1.0);
        }
        prop_assert!((a.jaccard(&b) - b.jaccard(&a)).abs() < 1e-15);
    }

    #[test]
    fn pooled_is_union_fold(profiles in proptest::collection::vec(arb_profile(), 0..8)) {
        let pooled = FlavorProfile::pooled(profiles.iter());
        let mut expected = FlavorProfile::empty();
        for p in &profiles {
            expected = expected.union(p);
        }
        prop_assert_eq!(pooled, expected);
    }

    #[test]
    fn profiles_sorted_dedup_invariant(ids in proptest::collection::vec(0u32..100, 0..80)) {
        let p: FlavorProfile = ids.iter().copied().collect();
        let mols = p.molecules();
        for w in mols.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly sorted: {mols:?}");
        }
        for &id in &ids {
            prop_assert!(p.contains(MoleculeId(id)));
        }
    }

    #[test]
    fn snapshot_roundtrips_random_dbs(
        seed in 0u64..10_000,
        n_ing in 5usize..40,
        remove_k in 0usize..5,
    ) {
        let cfg = GeneratorConfig {
            seed,
            n_molecules: 120,
            n_ingredients: n_ing,
            mean_profile_size: 8.0,
            profile_sigma: 0.5,
            category_affinity: 0.5,
            shared_pool_fraction: 0.3,
        };
        let mut db = generate_flavor_db(&cfg);
        // Tombstone a few ingredients to stress slot preservation.
        let names: Vec<String> = db.ingredients().take(remove_k).map(|i| i.name.clone()).collect();
        for name in &names {
            db.remove_ingredient(name).expect("exists");
        }
        let back = io::from_snapshot(io::to_snapshot(&db).expect("encodes")).expect("roundtrip decodes");
        prop_assert_eq!(back.n_ingredients(), db.n_ingredients());
        prop_assert_eq!(back.n_ingredient_slots(), db.n_ingredient_slots());
        for (x, y) in db.ingredients().zip(back.ingredients()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn shared_molecules_symmetric_in_generated_db(seed in 0u64..500) {
        let db = generate_flavor_db(&GeneratorConfig::tiny(seed));
        let ids: Vec<_> = db.ingredient_ids().take(12).collect();
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(
                    db.shared_molecules(a, b).expect("live ids"),
                    db.shared_molecules(b, a).expect("live ids")
                );
            }
            let self_shared = db.shared_molecules(a, a).expect("live id");
            prop_assert_eq!(self_shared, db.ingredient(a).expect("live").profile.len());
        }
    }

    #[test]
    fn compound_profile_superset_of_constituents(seed in 0u64..200) {
        let mut db = generate_flavor_db(&GeneratorConfig::tiny(seed));
        let parts: Vec<_> = db.ingredient_ids().take(3).collect();
        let compound = db
            .add_compound_ingredient("test compound", Category::Dish, &parts)
            .expect("constituents exist");
        let cp = db.ingredient(compound).expect("live").profile.clone();
        for &part in &parts {
            let pp = &db.ingredient(part).expect("live").profile;
            for &m in pp.molecules() {
                prop_assert!(cp.contains(m));
            }
        }
    }
}

#[test]
fn curated_db_is_internally_consistent() {
    use culinaria_flavordb::curated::curated_db;
    let db = curated_db();
    // Every live ingredient's profile references valid molecules.
    for ing in db.ingredients() {
        for &m in ing.profile.molecules() {
            assert!(
                db.molecule(m).is_ok(),
                "{}: dangling molecule {m}",
                ing.name
            );
        }
    }
    // Every synonym resolves to a live ingredient.
    let syns: Vec<(String, _)> = db.synonyms().map(|(s, id)| (s.to_owned(), id)).collect();
    for (syn, _) in syns {
        assert!(
            db.ingredient_by_name(&syn).is_some(),
            "synonym {syn} does not resolve"
        );
    }
}

#[test]
fn regenerating_same_config_is_identical_via_snapshot_bytes() {
    let cfg = GeneratorConfig::tiny(77);
    let a = generate_flavor_db(&cfg);
    let b = generate_flavor_db(&cfg);
    assert_eq!(io::to_snapshot(&a).unwrap(), io::to_snapshot(&b).unwrap());
}

#[test]
fn snapshot_decoding_rejects_mutations_without_panicking() {
    let db: FlavorDb = generate_flavor_db(&GeneratorConfig::tiny(3));
    let snap = io::to_snapshot(&db).unwrap().to_vec();
    // Flip each byte of the first kilobyte: decode must never panic.
    for i in 0..snap.len().min(1024) {
        let mut c = snap.clone();
        c[i] ^= 0x5A;
        let _ = io::from_snapshot(bytes::Bytes::from(c));
    }
}

#[test]
fn every_truncation_prefix_is_rejected() {
    let db = generate_flavor_db(&GeneratorConfig::tiny(11));
    let snap = io::to_snapshot(&db).unwrap();
    // Decoding consumes the snapshot exactly, so every strict prefix
    // must end mid-field and fail cleanly — no cut length may panic or
    // decode to a database.
    for cut in 0..snap.len() {
        assert!(
            io::from_snapshot(snap.slice(0..cut)).is_err(),
            "cut at {cut} of {} decoded",
            snap.len()
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let db = generate_flavor_db(&GeneratorConfig::tiny(11));
    let mut snap = io::to_snapshot(&db).unwrap().to_vec();
    snap.push(0);
    let err = io::from_snapshot(bytes::Bytes::from(snap)).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn absurd_counts_error_instead_of_allocating() {
    // A five-byte header claiming u32::MAX molecules must fail on the
    // missing body, not attempt a giant allocation.
    let mut snap = b"CFDB1".to_vec();
    snap.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(io::from_snapshot(bytes::Bytes::from(snap)).is_err());
    // Same for a profile length far beyond the remaining bytes.
    let db = generate_flavor_db(&GeneratorConfig::tiny(4));
    let good = io::to_snapshot(&db).unwrap().to_vec();
    for i in 0..good.len().saturating_sub(4) {
        let mut c = good.clone();
        c[i..i + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = io::from_snapshot(bytes::Bytes::from(c)); // must not panic or OOM
    }
}

proptest! {
    #[test]
    fn snapshot_byte_flips_never_panic(
        seed in 0u64..50,
        flips in proptest::collection::vec((0usize..4096, 1u8..=255), 1..4),
    ) {
        let db = generate_flavor_db(&GeneratorConfig::tiny(seed));
        let mut snap = io::to_snapshot(&db).unwrap().to_vec();
        for (pos, mask) in flips {
            let pos = pos % snap.len();
            snap[pos] ^= mask;
        }
        // A flip inside a string body can still decode to a (different)
        // valid snapshot; the contract is only that decoding never
        // panics or over-allocates.
        let _ = io::from_snapshot(bytes::Bytes::from(snap));
    }
}
