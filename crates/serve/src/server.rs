//! The long-lived query server: per-region shards over one artifact
//! (or owned) world, deterministic request batching, response caching,
//! and the per-connection reader/batcher loop.
//!
//! # Batching determinism
//!
//! A batch is answered in three strictly ordered phases:
//!
//! 1. a serial cache-lookup pass in request order (so hit/miss
//!    counters and LRU promotions are schedule-independent),
//! 2. the misses fanned over `culinaria_stats::pool`, whose results
//!    come back **in task order** regardless of thread count, and
//! 3. a serial fill + cache-store pass, again in request order.
//!
//! Each request's computation depends only on immutable shard state
//! (lazily initialized through `OnceLock`, so exactly one build wins
//! and every worker sees the same tables), which makes a batch's
//! responses — and the cache's evolution — bit-identical to serial
//! execution at any worker count. `bench_serve` and the serve tests
//! assert exactly that.
//!
//! # Generations and ingest
//!
//! The server's data views, lazy shards, and `SCORE` context live in
//! an immutable **epoch** behind an `RwLock<Arc<…>>`. A batch snapshots
//! the current epoch once and answers entirely against it, so a
//! concurrent [`Server::ingest_swap`] — which installs a new epoch with
//! fresh (empty) shard slots and bumps the **generation counter** —
//! never tears a batch. The response cache is stamped with the
//! generation at store time; the swap moves the cache's generation
//! forward, and stale entries are evicted lazily on their next lookup
//! (`serve.cache.invalidations`). Shards are rebuilt lazily in the new
//! epoch exactly as they were at startup.

use std::io::{self, BufWriter, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use culinaria_core::pairing::OverlapCache;
use culinaria_core::z_analysis::{region_overlap_cache, try_analyze_cuisine_with_cache_observed};
use culinaria_core::{
    recipe_pairing_score_view, FlavorViewRef, MonteCarloConfig, NullModel, RecipesViewRef,
};
use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_obs::{Counter, Gauge, Histogram, Metrics};
use culinaria_recipedb::import::Importer;
use culinaria_recipedb::Region;
use culinaria_stats::pool;

use crate::cache::{CacheStats, Endpoint, ResponseCache, NO_REGION};
use crate::protocol::{
    encode_busy, encode_err, pair_body, parse_request, read_frame, score_body, topk_body,
    write_frame, zprof_body, FrameError, ProtoError, Request, TopPairing, MAX_FRAME,
};
use crate::queue::{BoundedQueue, Push};

/// Server tuning knobs; every CLI `serve` flag maps onto one field.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads per batch (0 = available parallelism).
    pub threads: usize,
    /// Most requests coalesced into one batch.
    pub batch_max: usize,
    /// Response-cache capacity in entries (0 disables the cache).
    pub cache_entries: usize,
    /// Bounded-queue capacity; pushes past it are shed with `BUSY`.
    pub max_queue: usize,
    /// Monte-Carlo ensemble size for `ZPROF`.
    pub mc_recipes: usize,
    /// Monte-Carlo base seed for `ZPROF`.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 0,
            batch_max: 32,
            cache_entries: 4096,
            max_queue: 256,
            mc_recipes: 2000,
            seed: 2018,
        }
    }
}

/// One region's immutable query state, built lazily on first use
/// ("lazy section loading": the overlap triangle comes straight out of
/// the artifact's precomputed section when one matches, a kernel build
/// otherwise).
#[derive(Debug)]
pub struct RegionShard {
    region: Region,
    pool: Vec<IngredientId>,
    overlap: OverlapCache,
    /// Mean observed ⟨N_s⟩ of the cuisine (None for a scoreless one).
    mean: OnceLock<Option<f64>>,
    /// Sorted novel-pairing candidates, built on the first `TOPK`.
    candidates: OnceLock<Vec<Candidate>>,
}

/// One scored pool pair (indices are pool-local).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    novelty: f64,
    overlap: u32,
    cooc: u64,
    i: u32,
    j: u32,
}

/// Upper-triangle index for `i < j` over an `n`-wide pool.
fn tri_index(n: usize, i: usize, j: usize) -> usize {
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Store-wide co-occurrence counts for every pool pair — the
/// `examples/novel_pairings.rs` logic promoted into the server.
fn cooc_triangle<'r>(
    pool: &[IngredientId],
    recipes: impl Iterator<Item = &'r [IngredientId]>,
) -> Vec<u64> {
    let pos: std::collections::HashMap<IngredientId, usize> =
        pool.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut tri = vec![0u64; pool.len() * pool.len().saturating_sub(1) / 2];
    let mut members = Vec::new();
    for ings in recipes {
        members.clear();
        members.extend(ings.iter().filter_map(|id| pos.get(id).copied()));
        members.sort_unstable();
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                tri[tri_index(pool.len(), i, j)] += 1;
            }
        }
    }
    tri
}

/// Lazily materialized owned-database context for `SCORE` (the
/// importer needs an owned `FlavorDb`; artifact-backed servers
/// materialize one on the first `SCORE` so every other endpoint keeps
/// the O(1)-startup zero-copy path).
enum ScoreDb<'a> {
    Borrowed(&'a FlavorDb),
    Owned(Box<FlavorDb>),
}

impl ScoreDb<'_> {
    fn get(&self) -> &FlavorDb {
        match self {
            ScoreDb::Borrowed(db) => db,
            ScoreDb::Owned(db) => db,
        }
    }
}

struct ScoreCtx<'a> {
    db: ScoreDb<'a>,
    importer: Importer,
}

/// Resolve free-text ingredient lines into a normalized id set:
/// the importer's alias resolution first, then an exact
/// (case-insensitive) database-name fallback per line — generated
/// worlds use `name-category` ingredient names that phrase
/// normalization would otherwise split apart. Returns the sorted,
/// deduplicated ids and how many lines resolved to at least one
/// ingredient. Public so offline parity checks reuse the exact rule.
pub fn resolve_score_lines(
    importer: &Importer,
    db: &FlavorDb,
    lines: &[String],
) -> (Vec<IngredientId>, usize) {
    let mut ids: Vec<IngredientId> = Vec::new();
    let mut resolved_lines = 0usize;
    for line in lines {
        let (mut got, _unresolved) = importer.resolve_line(db, line);
        if got.is_empty() {
            if let Some(id) = db.ingredient_by_name(line.trim()) {
                got.push(id);
            }
        }
        if !got.is_empty() {
            resolved_lines += 1;
        }
        ids.extend(got);
    }
    ids.sort_unstable();
    ids.dedup();
    (ids, resolved_lines)
}

/// Prefetched instrument handles — one registry lookup each at
/// construction instead of per request.
struct ServeObs {
    pair_us: Histogram,
    zprof_us: Histogram,
    topk_us: Histogram,
    score_us: Histogram,
    batch: Histogram,
    queue_depth: Gauge,
    requests: Counter,
    busy: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_invalidations: Counter,
    shard_builds: Counter,
}

impl ServeObs {
    fn new(m: &Metrics) -> ServeObs {
        ServeObs {
            pair_us: m.histogram("serve.pair_us"),
            zprof_us: m.histogram("serve.zprof_us"),
            topk_us: m.histogram("serve.topk_us"),
            score_us: m.histogram("serve.score_us"),
            batch: m.histogram("serve.batch"),
            queue_depth: m.gauge("serve.queue.depth"),
            requests: m.counter("serve.requests"),
            busy: m.counter("serve.busy"),
            cache_hits: m.counter("serve.cache.hits"),
            cache_misses: m.counter("serve.cache.misses"),
            cache_evictions: m.counter("serve.cache.evictions"),
            cache_invalidations: m.counter("serve.cache.invalidations"),
            shard_builds: m.counter("serve.shard.builds"),
        }
    }
}

type ShardSlot = Result<Option<Arc<RegionShard>>, String>;

/// One immutable data generation: the world views plus every piece of
/// lazily-derived state that depends on them. Swapped wholesale by
/// [`Server::ingest_swap`]; batches snapshot the `Arc` once, so a swap
/// never tears in-flight work.
struct Epoch<'a> {
    flavor: FlavorViewRef<'a>,
    recipes: RecipesViewRef<'a>,
    shards: Vec<OnceLock<ShardSlot>>,
    score_ctx: OnceLock<Option<ScoreCtx<'a>>>,
}

impl<'a> Epoch<'a> {
    fn new(flavor: FlavorViewRef<'a>, recipes: RecipesViewRef<'a>) -> Epoch<'a> {
        Epoch {
            flavor,
            recipes,
            shards: (0..Region::ALL.len()).map(|_| OnceLock::new()).collect(),
            score_ctx: OnceLock::new(),
        }
    }
}

/// Connection-level accounting returned by
/// [`Server::serve_connection`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Requests answered through the batcher.
    pub served: u64,
    /// Requests shed with `BUSY`.
    pub shed: u64,
    /// Malformed frames / requests answered with `ERR`.
    pub protocol_errors: u64,
}

/// See the module docs.
pub struct Server<'a> {
    epoch: RwLock<Arc<Epoch<'a>>>,
    generation: AtomicU64,
    cfg: ServeConfig,
    metrics: Metrics,
    obs: ServeObs,
    cache: Option<Mutex<ResponseCache>>,
}

impl<'a> Server<'a> {
    /// A server over any world representation. `metrics` should be an
    /// enabled registry — it backs both the `METRICS` endpoint and the
    /// exit dump.
    pub fn new(
        flavor: FlavorViewRef<'a>,
        recipes: RecipesViewRef<'a>,
        cfg: ServeConfig,
        metrics: Metrics,
    ) -> Server<'a> {
        let obs = ServeObs::new(&metrics);
        let cache =
            (cfg.cache_entries > 0).then(|| Mutex::new(ResponseCache::new(cfg.cache_entries)));
        Server {
            epoch: RwLock::new(Arc::new(Epoch::new(flavor, recipes))),
            generation: AtomicU64::new(0),
            cfg,
            metrics,
            obs,
            cache,
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The current data generation (0 at startup, +1 per
    /// [`Server::ingest_swap`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Install a new data generation after an ingest: replace the world
    /// views, reset the lazy per-region shards and `SCORE` context
    /// (they rebuild on first use against the new data), and move the
    /// response cache's generation forward so every cached answer from
    /// an older generation is evicted on its next lookup (counted by
    /// `serve.cache.invalidations`). Returns the new generation.
    ///
    /// The swap is atomic from a batch's point of view: batches
    /// snapshot the epoch once at entry and finish against it, so
    /// responses in one batch never mix generations.
    pub fn ingest_swap(&self, flavor: FlavorViewRef<'a>, recipes: RecipesViewRef<'a>) -> u64 {
        let next = Arc::new(Epoch::new(flavor, recipes));
        *self.epoch.write().expect("epoch poisoned") = next;
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(cache) = self.cache.as_ref() {
            cache
                .lock()
                .expect("cache poisoned")
                .set_generation(generation);
        }
        generation
    }

    /// Snapshot the current epoch.
    fn current(&self) -> Arc<Epoch<'a>> {
        self.epoch.read().expect("epoch poisoned").clone()
    }

    /// The cache's own counters (None when the cache is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("cache poisoned").stats())
    }

    /// The region's shard in this epoch, built on first use. `Ok(None)`
    /// means the region has no usable cuisine in this dataset.
    fn shard(&self, ep: &Epoch<'a>, region: Region) -> Result<Option<Arc<RegionShard>>, String> {
        ep.shards[region.index()]
            .get_or_init(|| self.build_shard(ep, region))
            .clone()
    }

    fn build_shard(&self, ep: &Epoch<'a>, region: Region) -> ShardSlot {
        let cuisine = ep.recipes.cuisine(region);
        let pool = cuisine.ingredient_set();
        if pool.is_empty() {
            return Ok(None);
        }
        // Single-threaded build: shard builds run inside batch workers,
        // and the artifact-section fast path is a memcpy anyway.
        let overlap = region_overlap_cache(ep.flavor, region, &pool, 1, &self.metrics)
            .map_err(|f| f.to_string())?;
        self.obs.shard_builds.add(1);
        Ok(Some(Arc::new(RegionShard {
            region,
            pool,
            overlap,
            mean: OnceLock::new(),
            candidates: OnceLock::new(),
        })))
    }

    /// Serial request handling — the reference semantics batches must
    /// reproduce bit-for-bit.
    pub fn handle(&self, id: u64, req: &Request) -> String {
        let mut out = self.handle_batch(std::slice::from_ref(&(id, req.clone())));
        out.pop().expect("one response per request")
    }

    /// Answer a batch; one encoded response payload per request, in
    /// request order. See the module docs for the determinism
    /// argument.
    pub fn handle_batch(&self, reqs: &[(u64, Request)]) -> Vec<String> {
        self.obs.batch.record(reqs.len() as u64);
        self.obs.requests.add(reqs.len() as u64);
        // One epoch snapshot per batch: every phase — and every worker —
        // answers against the same data generation.
        let ep = self.current();
        let mut out: Vec<Option<String>> = vec![None; reqs.len()];
        let mut misses: Vec<usize> = Vec::new();
        // Phase 1: serial cache pass, request order.
        for (i, (id, req)) in reqs.iter().enumerate() {
            match self.cache_lookup(req) {
                Some(body) => out[i] = Some(format!("{id} {body}")),
                None => misses.push(i),
            }
        }
        // Phase 2: compute misses in task order over the worker pool.
        let computed: Vec<(String, Option<CacheSlot>)> =
            if misses.len() < 2 || pool::effective_threads(self.cfg.threads) == 1 {
                misses
                    .iter()
                    .map(|&i| self.compute(&ep, &reqs[i].1))
                    .collect()
            } else {
                pool::run(
                    self.cfg.threads,
                    misses.len(),
                    || (),
                    |_, t| self.compute(&ep, &reqs[misses[t]].1),
                )
            };
        // Phase 3: serial fill + cache stores, request order.
        for (t, &i) in misses.iter().enumerate() {
            let (body, slot) = &computed[t];
            if let Some(slot) = slot {
                self.cache_store(slot, &reqs[i].1, body.clone());
            }
            out[i] = Some(format!("{} {body}", reqs[i].0));
        }
        out.into_iter().map(|r| r.expect("filled")).collect()
    }

    /// Cache identity of a request, when the endpoint is cacheable.
    fn cache_slot(req: &Request) -> Option<CacheSlot> {
        match req {
            Request::Pair { region, .. } => Some(CacheSlot {
                endpoint: Endpoint::Pair,
                region: region.map_or(NO_REGION, |r| r.index() as u8),
                param: 0,
                keyed_by_ids: true,
            }),
            Request::ZProf { region } => Some(CacheSlot {
                endpoint: Endpoint::ZProf,
                region: region.index() as u8,
                param: 0,
                keyed_by_ids: false,
            }),
            Request::TopK { region, k } => Some(CacheSlot {
                endpoint: Endpoint::TopK,
                region: region.index() as u8,
                param: *k as u64,
                keyed_by_ids: false,
            }),
            _ => None,
        }
    }

    fn cache_lookup(&self, req: &Request) -> Option<String> {
        let cache = self.cache.as_ref()?;
        let slot = Self::cache_slot(req)?;
        let ids = slot.ids(req);
        let mut cache = cache.lock().expect("cache poisoned");
        let stale_before = cache.stats().invalidations;
        let got = cache.lookup(slot.endpoint, slot.region, slot.param, ids);
        let invalidated = cache.stats().invalidations - stale_before;
        drop(cache);
        if invalidated > 0 {
            self.obs.cache_invalidations.add(invalidated);
        }
        match &got {
            Some(_) => self.obs.cache_hits.add(1),
            None => self.obs.cache_misses.add(1),
        }
        got
    }

    fn cache_store(&self, slot: &CacheSlot, req: &Request, body: String) {
        // Only successful responses are cached — errors stay cheap to
        // recompute and must not shadow a later success.
        if !body.starts_with("OK ") {
            return;
        }
        if let Some(cache) = self.cache.as_ref() {
            let mut cache = cache.lock().expect("cache poisoned");
            let before = cache.stats().evictions;
            cache.store(slot.endpoint, slot.region, slot.param, slot.ids(req), body);
            let evicted = cache.stats().evictions - before;
            if evicted > 0 {
                self.obs.cache_evictions.add(evicted);
            }
        }
    }

    /// Compute one response body (`OK …` / `ERR …`, no id prefix),
    /// plus its cache slot when the endpoint is cacheable. Pure with
    /// respect to request order — the batching determinism hinges on
    /// this.
    fn compute(&self, ep: &Epoch<'a>, req: &Request) -> (String, Option<CacheSlot>) {
        let slot = Self::cache_slot(req);
        let body = match req {
            Request::Ping => "OK pong".to_string(),
            Request::Quit => "OK bye".to_string(),
            Request::Metrics => format!("OK metrics {}", self.metrics.render_json()),
            Request::Pair { region, ids } => {
                let t = self.obs.pair_us.start();
                let body = self.compute_pair(ep, *region, ids);
                t.stop();
                body
            }
            Request::ZProf { region } => {
                let t = self.obs.zprof_us.start();
                let body = self.compute_zprof(ep, *region);
                t.stop();
                body
            }
            Request::TopK { region, k } => {
                let t = self.obs.topk_us.start();
                let body = self.compute_topk(ep, *region, *k);
                t.stop();
                body
            }
            Request::Score { region, lines } => {
                let t = self.obs.score_us.start();
                let body = self.compute_score(ep, *region, lines);
                t.stop();
                body
            }
        };
        (body, slot)
    }

    fn err(code: &'static str, message: impl Into<String>) -> String {
        let e = ProtoError::new(code, message);
        format!("ERR {} {}", e.code, e.message)
    }

    fn usable_shard(&self, ep: &Epoch<'a>, region: Region) -> Result<Arc<RegionShard>, String> {
        match self.shard(ep, region) {
            Ok(Some(shard)) => Ok(shard),
            Ok(None) => Err(Self::err(
                "empty-region",
                format!("region {} has no recipes in this dataset", region.code()),
            )),
            Err(msg) => Err(Self::err("region-unusable", msg)),
        }
    }

    fn compute_pair(&self, ep: &Epoch<'a>, region: Option<Region>, ids: &[IngredientId]) -> String {
        // Shard fast path: O(1) triangle lookups. Falls back to the
        // profile walk for global requests or ids outside the region
        // pool — both produce the same bits (asserted in tests), so
        // the answer never depends on which path ran.
        let via_shard = region
            .and_then(|r| self.shard(ep, r).ok().flatten())
            .and_then(|shard| shard.overlap.score_ids(ids));
        match via_shard.or_else(|| recipe_pairing_score_view(ep.flavor, ids)) {
            Some(score) => format!("OK {}", pair_body(score)),
            None => Self::err("bad-ids", "unknown ingredient id in set"),
        }
    }

    fn compute_zprof(&self, ep: &Epoch<'a>, region: Region) -> String {
        let shard = match self.usable_shard(ep, region) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let cuisine = ep.recipes.cuisine(region);
        // n_threads = 1: the batch pool is the concurrency layer here,
        // and the analysis is bit-identical for any thread count.
        let cfg = MonteCarloConfig {
            n_recipes: self.cfg.mc_recipes,
            seed: self.cfg.seed,
            n_threads: 1,
        };
        match try_analyze_cuisine_with_cache_observed(
            ep.flavor,
            &cuisine,
            &shard.overlap,
            &NullModel::ALL,
            &cfg,
            &self.metrics,
        ) {
            Ok(Some(analysis)) => format!("OK {}", zprof_body(&analysis)),
            Ok(None) => Self::err(
                "empty-region",
                format!("region {} has no pairing-bearing recipes", region.code()),
            ),
            Err(failure) => Self::err("analysis-failed", failure.to_string()),
        }
    }

    fn compute_topk(&self, ep: &Epoch<'a>, region: Region, k: usize) -> String {
        let shard = match self.usable_shard(ep, region) {
            Ok(s) => s,
            Err(e) => return e,
        };
        let candidates = shard.candidates.get_or_init(|| {
            let cooc = cooc_triangle(&shard.pool, Self::all_recipe_lists(ep.recipes));
            let n = shard.pool.len();
            let mut out = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    let overlap = shard.overlap.overlap(i as u32, j as u32);
                    if overlap == 0 {
                        continue;
                    }
                    let cooc = cooc[tri_index(n, i, j)];
                    let novelty = f64::from(overlap) / (1.0 + cooc as f64);
                    out.push(Candidate {
                        novelty,
                        overlap,
                        cooc,
                        i: i as u32,
                        j: j as u32,
                    });
                }
            }
            out.sort_by(|a, b| b.novelty.total_cmp(&a.novelty));
            out
        });
        let mut rows = Vec::with_capacity(k.min(candidates.len()));
        for c in candidates.iter().take(k) {
            let name = |local: u32| {
                ep.flavor
                    .ingredient_name(shard.pool[local as usize])
                    .unwrap_or("?")
                    .to_string()
            };
            rows.push(TopPairing {
                novelty: c.novelty,
                overlap: c.overlap,
                cooc: c.cooc,
                a: name(c.i),
                b: name(c.j),
            });
        }
        format!("OK {}", topk_body(shard.region, &rows))
    }

    fn compute_score(&self, ep: &Epoch<'a>, region: Region, lines: &[String]) -> String {
        let ctx = ep.score_ctx.get_or_init(|| {
            let db = match ep.flavor {
                FlavorViewRef::Owned(db) => ScoreDb::Borrowed(db),
                FlavorViewRef::Artifact(b) => match b.to_flavor_db() {
                    Ok(db) => ScoreDb::Owned(Box::new(db)),
                    Err(_) => return None,
                },
            };
            let importer = Importer::from_flavor_db(db.get());
            Some(ScoreCtx { db, importer })
        });
        let Some(ctx) = ctx else {
            return Self::err("score-unavailable", "flavor database unreadable");
        };
        let db = ctx.db.get();
        let (ids, resolved_lines) = resolve_score_lines(&ctx.importer, db, lines);
        let score = recipe_pairing_score_view(ep.flavor, &ids)
            .expect("resolved ids are live by construction");
        let vs = self
            .shard(ep, region)
            .ok()
            .flatten()
            .and_then(|shard| Self::shard_mean(ep, &shard));
        let mut body = format!(
            "OK {}",
            score_body(resolved_lines, lines.len(), ids.len(), score)
        );
        match vs {
            Some(mean) => body.push_str(&format!(" vs={}", crate::protocol::f64_field(mean))),
            None => body.push_str(" vs=-"),
        }
        body
    }

    /// The cuisine's observed mean ⟨N_s⟩, computed once per shard.
    fn shard_mean(ep: &Epoch<'a>, shard: &RegionShard) -> Option<f64> {
        *shard.mean.get_or_init(|| {
            let cuisine = ep.recipes.cuisine(shard.region);
            shard.overlap.mean_cuisine_score_view(&cuisine)
        })
    }

    /// Every recipe ingredient list in the store, region by region
    /// (each recipe belongs to exactly one region, and co-occurrence
    /// counting is order-independent).
    fn all_recipe_lists(recipes: RecipesViewRef<'a>) -> impl Iterator<Item = &'a [IngredientId]> {
        recipes.regions().into_iter().flat_map(move |region| {
            let cuisine = recipes.cuisine(region);
            cuisine.recipe_ingredient_lists().collect::<Vec<_>>()
        })
    }

    /// Serve one framed connection until EOF, `QUIT`, or an I/O error.
    ///
    /// The calling thread reads and parses frames, answers protocol
    /// errors and shed requests inline, and feeds the bounded queue; a
    /// scoped batcher thread drains the queue into
    /// [`Server::handle_batch`] and writes the responses. Both sides
    /// share the writer under a mutex, so responses interleave at
    /// frame granularity and correlate by request id, not by order.
    pub fn serve_connection<R, W>(&self, mut reader: R, writer: W) -> io::Result<ConnStats>
    where
        R: Read,
        W: Write + Send,
    {
        let writer = Mutex::new(BufWriter::new(writer));
        let queue: BoundedQueue<(u64, Request)> = BoundedQueue::new(self.cfg.max_queue);
        let served = AtomicU64::new(0);
        let shed = AtomicU64::new(0);
        let proto_errors = AtomicU64::new(0);

        let write_payload = |payload: &str| -> io::Result<()> {
            let mut w = writer.lock().expect("writer poisoned");
            write_frame(&mut *w, payload.as_bytes())?;
            w.flush()
        };

        let result: io::Result<()> = std::thread::scope(|scope| {
            let batcher = scope.spawn(|| -> io::Result<()> {
                let mut batch: Vec<(u64, Request)> = Vec::new();
                while queue.drain_batch(self.cfg.batch_max, &mut batch) {
                    self.obs.queue_depth.set(queue.depth() as i64);
                    let payloads = self.handle_batch(&batch);
                    served.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    let mut w = writer.lock().expect("writer poisoned");
                    for payload in &payloads {
                        write_frame(&mut *w, payload.as_bytes())?;
                    }
                    w.flush()?;
                    drop(w);
                    batch.clear();
                }
                Ok(())
            });

            let read_result: io::Result<()> = loop {
                match read_frame(&mut reader, MAX_FRAME) {
                    Ok(None) => break Ok(()),
                    Ok(Some(payload)) => match parse_request(&payload) {
                        Ok((id, req)) => {
                            let quit = matches!(req, Request::Quit);
                            match queue.push((id, req)) {
                                Push::Accepted(depth) => {
                                    self.obs.queue_depth.set(depth as i64);
                                }
                                Push::Shed(depth) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    self.obs.busy.add(1);
                                    if let Err(e) = write_payload(&encode_busy(id, depth)) {
                                        break Err(e);
                                    }
                                }
                            }
                            if quit {
                                break Ok(());
                            }
                        }
                        Err((id, e)) => {
                            proto_errors.fetch_add(1, Ordering::Relaxed);
                            if let Err(e) = write_payload(&encode_err(id, &e)) {
                                break Err(e);
                            }
                        }
                    },
                    Err(FrameError::Io(e)) => break Err(e),
                    Err(frame_err) => {
                        // Truncated / oversized: reply once, then stop —
                        // the byte stream is no longer trustworthy.
                        proto_errors.fetch_add(1, Ordering::Relaxed);
                        let e = ProtoError::new("bad-frame", frame_err.to_string());
                        let _ = write_payload(&encode_err(0, &e));
                        break Ok(());
                    }
                }
            };
            // Let the batcher run down everything already accepted.
            queue.close();
            let batch_result = batcher.join().expect("batcher panicked");
            read_result.and(batch_result)
        });
        result?;

        Ok(ConnStats {
            served: served.load(Ordering::Relaxed),
            shed: shed.load(Ordering::Relaxed),
            protocol_errors: proto_errors.load(Ordering::Relaxed),
        })
    }
}

/// Cache identity of a cacheable request (the ingredient-id set, when
/// part of the key, is borrowed from the request at use time).
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    endpoint: Endpoint,
    region: u8,
    param: u64,
    keyed_by_ids: bool,
}

impl CacheSlot {
    fn ids<'r>(&self, req: &'r Request) -> Option<&'r [IngredientId]> {
        if !self.keyed_by_ids {
            return None;
        }
        match req {
            Request::Pair { ids, .. } => Some(ids),
            _ => None,
        }
    }
}
