//! Bounded FIFO request queue with load-shedding push and blocking
//! batch drain.
//!
//! Backpressure policy: `push` never blocks and never grows the queue
//! past its capacity — at capacity the item is *shed* and the caller
//! answers the client with a structured `BUSY` reply instead. The
//! batcher side blocks in [`BoundedQueue::drain_batch`] until work or
//! shutdown, taking up to a whole batch per wakeup.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Outcome of a non-blocking [`BoundedQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// Enqueued; the queue now holds this many items.
    Accepted(usize),
    /// Queue full (or closed) — item dropped, reply `BUSY` with this
    /// depth.
    Shed(usize),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// See the module docs.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Offer an item; sheds instead of blocking or growing unbounded.
    pub fn push(&self, item: T) -> Push {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed || s.items.len() >= self.capacity {
            return Push::Shed(s.items.len());
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        Push::Accepted(depth)
    }

    /// Stop accepting items and wake the drainer so it can run down
    /// the remaining queue and exit.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Block until items arrive (or the queue closes), then move up to
    /// `max` of them into `out` in FIFO order. Returns `false` once the
    /// queue is closed *and* empty — the drainer's exit signal.
    pub fn drain_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        let mut s = self.state.lock().expect("queue poisoned");
        while s.items.is_empty() {
            if s.closed {
                return false;
            }
            s = self.ready.wait(s).expect("queue poisoned");
        }
        let take = s.items.len().min(max.max(1));
        out.extend(s.items.drain(..take));
        true
    }

    /// Current queue depth (racy, for gauges only).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_batch_cap() {
        let q = BoundedQueue::new(10);
        for i in 0..5 {
            assert_eq!(q.push(i), Push::Accepted(i + 1));
        }
        let mut out = Vec::new();
        assert!(q.drain_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        out.clear();
        assert!(q.drain_batch(3, &mut out));
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn sheds_at_capacity_never_blocks() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push('a'), Push::Accepted(1));
        assert_eq!(q.push('b'), Push::Accepted(2));
        assert_eq!(q.push('c'), Push::Shed(2));
        assert_eq!(q.depth(), 2);
        // Draining frees room again.
        let mut out = Vec::new();
        assert!(q.drain_batch(1, &mut out));
        assert_eq!(q.push('d'), Push::Accepted(2));
    }

    #[test]
    fn close_drains_remainder_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.push(3), Push::Shed(2), "closed queue sheds");
        let mut out = Vec::new();
        assert!(q.drain_batch(8, &mut out));
        assert_eq!(out, vec![1, 2]);
        out.clear();
        assert!(!q.drain_batch(8, &mut out), "closed + empty ends the loop");
    }

    #[test]
    fn drain_blocks_until_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            let mut out = Vec::new();
            assert!(q2.drain_batch(4, &mut out));
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42);
        assert_eq!(handle.join().unwrap(), vec![42]);
    }
}
