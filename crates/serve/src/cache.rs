//! Bounded LRU response cache keyed by interned sorted ingredient-id
//! sets.
//!
//! # Keying
//!
//! A [`CacheKey`] is four fixed-width fields: the endpoint, the region
//! index, an endpoint-specific parameter (`k` for top-k), and an
//! interned-set slot. Ingredient-id sets are normalized (sorted,
//! deduplicated) and interned once in a set interner — the key then
//! carries a `u32` slot instead of the set itself, so two textually
//! different requests for the same set (`PAIR ITA 3,1,3` and
//! `PAIR ITA 1,3`) share one entry, and key hashing/compares are O(1).
//!
//! # Eviction and bounded memory
//!
//! Entries live in a slab (`Vec` + free list) threaded as a doubly
//! linked LRU list; `get` promotes to MRU, `insert` at capacity evicts
//! the LRU entry first. Evicting an entry releases its interned-set
//! reference; the interner frees a set's slot when the last reference
//! goes, so resident memory is bounded by the entry capacity no matter
//! how many distinct sets pass through.
//!
//! # Generations and invalidation
//!
//! Every entry is stamped with the cache's **generation** at store
//! time. Ingesting new data bumps the generation
//! ([`ResponseCache::set_generation`]); entries stamped with an older
//! generation are *stale* — they answer for data that no longer
//! exists — and are evicted lazily the next time a lookup touches
//! them, counted as `invalidations` (plus a regular miss). Lazy
//! eviction keeps the bump O(1): no sweep over the slab on ingest,
//! stale entries age out through lookups and LRU pressure.

use std::collections::HashMap;

use culinaria_flavordb::IngredientId;

/// Sentinel slab index (`no entry` / `no set`).
const NIL: u32 = u32::MAX;

/// The cacheable endpoints. `METRICS`/`PING`/`SCORE` are never cached
/// (volatile or free-text-keyed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Endpoint {
    Pair = 0,
    ZProf = 1,
    TopK = 2,
}

/// Fixed-width cache key; see the module docs for the fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    endpoint: Endpoint,
    /// `Region::index()`, `u8::MAX` for region-less (global) requests.
    region: u8,
    /// Endpoint parameter (`k` for top-k, 0 otherwise).
    param: u64,
    /// Interned-set slot, [`NIL`] when the key carries no set.
    set: u32,
}

/// Region field for a global (region-less) request.
pub const NO_REGION: u8 = u8::MAX;

/// Interner for normalized ingredient-id sets with per-set reference
/// counts (one reference per live cache entry).
#[derive(Debug, Default)]
struct SetInterner {
    map: HashMap<Box<[u32]>, u32>,
    /// `(set, refcount)` per slot; `None` slots are free.
    slots: Vec<Option<(Box<[u32]>, u32)>>,
    free: Vec<u32>,
}

impl SetInterner {
    /// Slot of an already-interned set, without touching refcounts.
    fn peek(&self, set: &[u32]) -> Option<u32> {
        self.map.get(set).copied()
    }

    /// Intern (or re-reference) a set.
    fn acquire(&mut self, set: &[u32]) -> u32 {
        if let Some(&slot) = self.map.get(set) {
            self.slots[slot as usize].as_mut().expect("live slot").1 += 1;
            return slot;
        }
        let boxed: Box<[u32]> = set.into();
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((boxed.clone(), 1));
                s
            }
            None => {
                self.slots.push(Some((boxed.clone(), 1)));
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(boxed, slot);
        slot
    }

    /// Drop one reference; frees the slot at zero.
    fn release(&mut self, slot: u32) {
        let entry = self.slots[slot as usize].as_mut().expect("live slot");
        entry.1 -= 1;
        if entry.1 == 0 {
            let (set, _) = self.slots[slot as usize].take().expect("live slot");
            self.map.remove(&set);
            self.free.push(slot);
        }
    }

    fn live(&self) -> usize {
        self.map.len()
    }

    /// Approximate resident bytes of the interned sets.
    fn resident_bytes(&self) -> usize {
        self.map.keys().map(|k| k.len() * 4).sum()
    }
}

/// One slab entry in the LRU list.
#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: String,
    /// Cache generation at store time; stale when it trails the
    /// cache's current generation.
    generation: u64,
    prev: u32,
    next: u32,
}

/// Counters the cache maintains; mirrored into `culinaria-obs` by the
/// server so the `metrics` endpoint exposes them live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Stale-generation entries evicted on lookup after an ingest
    /// bumped the generation (each also counts as a miss).
    pub invalidations: u64,
    /// Live entries (≤ capacity).
    pub entries: usize,
    /// Live interned sets (≤ entries).
    pub interned_sets: usize,
    /// Approximate bytes held by interned sets.
    pub interned_bytes: usize,
}

/// The bounded LRU response cache. Capacity 0 disables it entirely
/// (every lookup misses without counting, every store is a no-op).
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    interner: SetInterner,
    map: HashMap<CacheKey, u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    /// MRU end of the list.
    head: u32,
    /// LRU end of the list (next eviction victim).
    tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    generation: u64,
}

impl ResponseCache {
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            interner: SetInterner::default(),
            map: HashMap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
            generation: 0,
        }
    }

    /// Move the cache to a new data generation, making every entry
    /// stored under an older generation stale. O(1): stale entries are
    /// evicted lazily on lookup and counted as `invalidations`.
    ///
    /// ```
    /// use culinaria_serve::cache::{Endpoint, ResponseCache};
    ///
    /// let mut c = ResponseCache::new(4);
    /// c.store(Endpoint::ZProf, 1, 0, None, "old answer".into());
    /// assert!(c.lookup(Endpoint::ZProf, 1, 0, None).is_some());
    ///
    /// c.set_generation(1); // new recipes ingested: old answers stale
    /// assert_eq!(c.lookup(Endpoint::ZProf, 1, 0, None), None);
    /// assert_eq!(c.stats().invalidations, 1);
    ///
    /// // Re-stored under the new generation, it serves again.
    /// c.store(Endpoint::ZProf, 1, 0, None, "new answer".into());
    /// assert_eq!(c.lookup(Endpoint::ZProf, 1, 0, None).as_deref(), Some("new answer"));
    /// ```
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The generation new entries are stamped with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Normalize an id set for keying: sorted, deduplicated raw ids.
    fn normalize(ids: &[IngredientId]) -> Vec<u32> {
        let mut raw: Vec<u32> = ids.iter().map(|id| id.0).collect();
        raw.sort_unstable();
        raw.dedup();
        raw
    }

    /// Look up a response. Counts a hit (and promotes the entry to MRU)
    /// or a miss.
    pub fn lookup(
        &mut self,
        endpoint: Endpoint,
        region: u8,
        param: u64,
        ids: Option<&[IngredientId]>,
    ) -> Option<String> {
        if self.capacity == 0 {
            return None;
        }
        let set = match ids {
            Some(ids) => match self.interner.peek(&Self::normalize(ids)) {
                Some(slot) => slot,
                // An unseen set cannot have an entry.
                None => {
                    self.misses += 1;
                    return None;
                }
            },
            None => NIL,
        };
        let key = CacheKey {
            endpoint,
            region,
            param,
            set,
        };
        match self.map.get(&key).copied() {
            Some(e) if self.entries[e as usize].generation == self.generation => {
                self.unlink(e);
                self.push_front(e);
                self.hits += 1;
                Some(self.entries[e as usize].value.clone())
            }
            Some(e) => {
                // Stale generation: the answer predates the last
                // ingest. Evict it and miss so the caller recomputes
                // against the live data.
                self.evict_entry(e);
                self.invalidations += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a response, evicting the LRU entry when at capacity.
    pub fn store(
        &mut self,
        endpoint: Endpoint,
        region: u8,
        param: u64,
        ids: Option<&[IngredientId]>,
        value: String,
    ) {
        if self.capacity == 0 {
            return;
        }
        let norm = ids.map(Self::normalize);
        // Refresh in place when the key already has an entry (its set,
        // if any, must already be interned for the probe to hit).
        let probe_slot = match &norm {
            Some(s) => self.interner.peek(s),
            None => Some(NIL),
        };
        if let Some(set) = probe_slot {
            let key = CacheKey {
                endpoint,
                region,
                param,
                set,
            };
            if let Some(&e) = self.map.get(&key) {
                self.entries[e as usize].value = value;
                self.entries[e as usize].generation = self.generation;
                self.unlink(e);
                self.push_front(e);
                return;
            }
        }
        // Evict *before* interning the new set, so neither the slab
        // nor the interner ever holds more than `capacity` slots.
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let set = match &norm {
            Some(s) => self.interner.acquire(s),
            None => NIL,
        };
        let key = CacheKey {
            endpoint,
            region,
            param,
            set,
        };
        let entry = Entry {
            key,
            value,
            generation: self.generation,
            prev: NIL,
            next: NIL,
        };
        let e = match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                (self.entries.len() - 1) as u32
            }
        };
        self.map.insert(key, e);
        self.push_front(e);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict called on an empty cache");
        self.evict_entry(victim);
        self.evictions += 1;
    }

    /// Remove one entry from the map, list, slab, and interner.
    /// Counter bookkeeping (capacity eviction vs invalidation) is the
    /// caller's.
    fn evict_entry(&mut self, victim: u32) {
        self.unlink(victim);
        let key = self.entries[victim as usize].key;
        self.map.remove(&key);
        if key.set != NIL {
            self.interner.release(key.set);
        }
        self.entries[victim as usize].value = String::new();
        self.free.push(victim);
    }

    fn unlink(&mut self, e: u32) {
        let (prev, next) = {
            let entry = &self.entries[e as usize];
            (entry.prev, entry.next)
        };
        if prev != NIL {
            self.entries[prev as usize].next = next;
        } else if self.head == e {
            self.head = next;
        }
        if next != NIL {
            self.entries[next as usize].prev = prev;
        } else if self.tail == e {
            self.tail = prev;
        }
        let entry = &mut self.entries[e as usize];
        entry.prev = NIL;
        entry.next = NIL;
    }

    fn push_front(&mut self, e: u32) {
        self.entries[e as usize].next = self.head;
        self.entries[e as usize].prev = NIL;
        if self.head != NIL {
            self.entries[self.head as usize].prev = e;
        }
        self.head = e;
        if self.tail == NIL {
            self.tail = e;
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.map.len(),
            interned_sets: self.interner.live(),
            interned_bytes: self.interner.resident_bytes(),
        }
    }

    /// Total slab slots ever allocated — the bounded-memory invariant
    /// the tests pin down (`slab_slots() ≤ capacity`).
    pub fn slab_slots(&self) -> usize {
        self.entries.len()
    }

    /// Total interner slots ever allocated (free-list reuse keeps this
    /// ≤ capacity as well).
    pub fn interner_slots(&self) -> usize {
        self.interner.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<IngredientId> {
        raw.iter().map(|&r| IngredientId(r)).collect()
    }

    #[test]
    fn hit_after_store_and_order_normalization() {
        let mut c = ResponseCache::new(4);
        assert!(c
            .lookup(Endpoint::Pair, 0, 0, Some(&ids(&[3, 1])))
            .is_none());
        c.store(Endpoint::Pair, 0, 0, Some(&ids(&[3, 1])), "v".into());
        // Different order and a duplicate — same normalized set.
        assert_eq!(
            c.lookup(Endpoint::Pair, 0, 0, Some(&ids(&[1, 3, 1]))),
            Some("v".into())
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order_with_promotion() {
        let mut c = ResponseCache::new(2);
        c.store(Endpoint::ZProf, 1, 0, None, "a".into());
        c.store(Endpoint::ZProf, 2, 0, None, "b".into());
        // Touch region 1 so region 2 becomes the LRU victim.
        assert!(c.lookup(Endpoint::ZProf, 1, 0, None).is_some());
        c.store(Endpoint::ZProf, 3, 0, None, "c".into());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(Endpoint::ZProf, 2, 0, None).is_none(), "evicted");
        assert!(c.lookup(Endpoint::ZProf, 1, 0, None).is_some());
        assert!(c.lookup(Endpoint::ZProf, 3, 0, None).is_some());
    }

    #[test]
    fn bounded_memory_under_churn() {
        let cap = 8;
        let mut c = ResponseCache::new(cap);
        for i in 0..1000u32 {
            c.store(Endpoint::Pair, 0, 0, Some(&ids(&[i, i + 1])), "x".into());
        }
        let s = c.stats();
        assert_eq!(s.entries, cap);
        assert_eq!(s.interned_sets, cap);
        assert_eq!(s.evictions, 1000 - cap as u64);
        assert!(c.slab_slots() <= cap, "slab grew past capacity");
        assert!(c.interner_slots() <= cap, "interner grew past capacity");
        assert_eq!(s.interned_bytes, cap * 2 * 4);
    }

    #[test]
    fn shared_set_across_keys_survives_one_eviction() {
        let mut c = ResponseCache::new(2);
        let set = ids(&[5, 9]);
        // Same set under two keys (region shard and global).
        c.store(Endpoint::Pair, 0, 0, Some(&set), "regional".into());
        c.store(Endpoint::Pair, NO_REGION, 0, Some(&set), "global".into());
        assert_eq!(c.stats().interned_sets, 1);
        // Evict the older key; the set must stay interned for the other.
        c.store(Endpoint::ZProf, 1, 0, None, "z".into());
        assert_eq!(c.stats().interned_sets, 1);
        assert_eq!(
            c.lookup(Endpoint::Pair, NO_REGION, 0, Some(&set)),
            Some("global".into())
        );
        // Evict the last set-bearing entry: interner must free the slot.
        c.store(Endpoint::ZProf, 2, 0, None, "z2".into());
        c.store(Endpoint::ZProf, 3, 0, None, "z3".into());
        assert_eq!(c.stats().interned_sets, 0);
        assert_eq!(c.stats().interned_bytes, 0);
    }

    #[test]
    fn store_existing_key_refreshes_without_duplicating() {
        let mut c = ResponseCache::new(2);
        let set = ids(&[1, 2]);
        c.store(Endpoint::Pair, 0, 0, Some(&set), "old".into());
        c.store(Endpoint::Pair, 0, 0, Some(&set), "new".into());
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().interned_sets, 1);
        assert_eq!(
            c.lookup(Endpoint::Pair, 0, 0, Some(&set)),
            Some("new".into())
        );
    }

    #[test]
    fn generation_bump_invalidates_lazily() {
        let mut c = ResponseCache::new(4);
        let set = ids(&[1, 2]);
        c.store(Endpoint::Pair, 0, 0, Some(&set), "g0".into());
        c.store(Endpoint::ZProf, 1, 0, None, "z0".into());
        assert_eq!(c.stats().entries, 2);

        c.set_generation(1);
        assert_eq!(c.generation(), 1);
        // Entries survive the bump (lazy) but the first touch evicts.
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.lookup(Endpoint::Pair, 0, 0, Some(&set)), None);
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 1);
        // Interned set released with the stale entry.
        assert_eq!(s.interned_sets, 0);

        // Fresh store under generation 1 hits; the untouched stale
        // entry still invalidates on its own first lookup.
        c.store(Endpoint::Pair, 0, 0, Some(&set), "g1".into());
        assert_eq!(
            c.lookup(Endpoint::Pair, 0, 0, Some(&set)).as_deref(),
            Some("g1")
        );
        assert_eq!(c.lookup(Endpoint::ZProf, 1, 0, None), None);
        assert_eq!(c.stats().invalidations, 2);
        // Capacity evictions are counted separately.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn refresh_in_place_restamps_generation() {
        let mut c = ResponseCache::new(2);
        c.store(Endpoint::ZProf, 1, 0, None, "old".into());
        c.set_generation(3);
        // A lookup would invalidate; a store refreshes *and* restamps.
        c.store(Endpoint::ZProf, 1, 0, None, "new".into());
        assert_eq!(
            c.lookup(Endpoint::ZProf, 1, 0, None).as_deref(),
            Some("new")
        );
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = ResponseCache::new(0);
        c.store(Endpoint::Pair, 0, 0, Some(&ids(&[1, 2])), "v".into());
        assert!(c
            .lookup(Endpoint::Pair, 0, 0, Some(&ids(&[1, 2])))
            .is_none());
        assert_eq!(c.stats(), CacheStats::default());
    }
}
