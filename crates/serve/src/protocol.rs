//! Length-prefixed framed request/response protocol.
//!
//! # Framing
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! frame   := length payload
//! length  := u32, little-endian, byte count of payload
//! payload := UTF-8 text, at most MAX_FRAME bytes
//! ```
//!
//! # Request grammar
//!
//! The payload's first line is `<id> <VERB> [args…]`; `id` is an opaque
//! client-chosen u64 echoed back on the response so pipelined clients
//! can correlate replies (responses are not guaranteed to come back in
//! send order — shed and malformed requests are answered inline while
//! accepted ones flow through the batcher).
//!
//! ```text
//! <id> PING
//! <id> QUIT
//! <id> METRICS
//! <id> PAIR  <REGION|-> <id,id,…>     # '-' = no region shard (global)
//! <id> ZPROF <REGION>
//! <id> TOPK  <REGION> <k>
//! <id> SCORE <REGION>                 # ingredient text lines follow,
//! <line>…                             # one per payload line
//! ```
//!
//! # Response grammar
//!
//! ```text
//! <id> OK <verb-specific body>
//! <id> ERR <code> <message>           # structured, never a panic
//! <id> BUSY <queue-depth>             # load shed; retry later
//! ```
//!
//! Every `f64` in a response body is rendered as
//! `<to_bits hex, 16 digits>:<decimal>` so bit-exact parity against the
//! offline pipeline can be asserted on the wire text itself.

use std::fmt;
use std::io::{self, Read, Write};

use culinaria_core::CuisineAnalysis;
use culinaria_flavordb::IngredientId;
use culinaria_recipedb::Region;

/// Hard cap on payload size, requests and responses alike (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Largest ingredient-id set a `PAIR` request may carry.
pub const MAX_SET: usize = 256;

/// Largest `k` a `TOPK` request may ask for.
pub const MAX_TOPK: usize = 1000;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The header announced a payload larger than the cap. The stream
    /// is desynchronized past this point — close it after replying.
    Oversized(u32),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated mid-message"),
            FrameError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

/// Write one frame (header + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "payload exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (EOF before any
/// header byte); EOF anywhere later is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len as usize > max_frame {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Ping,
    Quit,
    Metrics,
    /// Pairing score for an ingredient-id set. `region` selects the
    /// shard fast path (precomputed overlap triangle); `None` walks
    /// the flavor profiles directly. Both produce the same bits.
    Pair {
        region: Option<Region>,
        ids: Vec<IngredientId>,
    },
    /// Cuisine Z-profile (observed ⟨N_s⟩ vs every null model).
    ZProf {
        region: Region,
    },
    /// Top-k novel pairings for a region.
    TopK {
        region: Region,
        k: usize,
    },
    /// Import free-text ingredient lines and score the resolved set.
    Score {
        region: Region,
        lines: Vec<String>,
    },
}

/// A structured protocol error: a stable machine-readable code plus a
/// human message. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub code: &'static str,
    pub message: String,
}

impl ProtoError {
    pub fn new(code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

/// Parse a request payload. The error side carries the request id when
/// one could be read (0 otherwise) so the reply still correlates.
pub fn parse_request(payload: &[u8]) -> Result<(u64, Request), (u64, ProtoError)> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| (0, ProtoError::new("bad-encoding", "payload is not UTF-8")))?;
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("");
    let mut tokens = first.split_whitespace();
    let id: u64 = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
        (
            0,
            ProtoError::new("bad-id", "first token must be a u64 request id"),
        )
    })?;
    let fail = |code, msg: String| (id, ProtoError::new(code, msg));
    let verb = tokens
        .next()
        .ok_or_else(|| fail("bad-verb", "missing verb".into()))?;
    let parse_region = |tok: Option<&str>| -> Result<Region, (u64, ProtoError)> {
        let tok = tok.ok_or_else(|| fail("bad-region", "missing region".into()))?;
        tok.parse()
            .map_err(|_| fail("bad-region", format!("unknown region {tok:?}")))
    };
    let req = match verb {
        "PING" => Request::Ping,
        "QUIT" => Request::Quit,
        "METRICS" => Request::Metrics,
        "PAIR" => {
            let region = match tokens.next() {
                Some("-") => None,
                tok => Some(parse_region(tok)?),
            };
            let ids_tok = tokens
                .next()
                .ok_or_else(|| fail("bad-ids", "missing ingredient-id list".into()))?;
            let mut ids = Vec::new();
            for part in ids_tok.split(',') {
                let raw: u32 = part
                    .parse()
                    .map_err(|_| fail("bad-ids", format!("not an ingredient id: {part:?}")))?;
                ids.push(IngredientId(raw));
            }
            if ids.len() < 2 {
                return Err(fail("bad-ids", "a pairing needs at least two ids".into()));
            }
            if ids.len() > MAX_SET {
                return Err(fail(
                    "bad-ids",
                    format!("{} ids exceeds the {MAX_SET}-id cap", ids.len()),
                ));
            }
            Request::Pair { region, ids }
        }
        "ZPROF" => Request::ZProf {
            region: parse_region(tokens.next())?,
        },
        "TOPK" => {
            let region = parse_region(tokens.next())?;
            let k_tok = tokens
                .next()
                .ok_or_else(|| fail("bad-k", "missing k".into()))?;
            let k: usize = k_tok
                .parse()
                .map_err(|_| fail("bad-k", format!("not a count: {k_tok:?}")))?;
            if k == 0 || k > MAX_TOPK {
                return Err(fail("bad-k", format!("k must be in 1..={MAX_TOPK}")));
            }
            Request::TopK { region, k }
        }
        "SCORE" => {
            let region = parse_region(tokens.next())?;
            let body: Vec<String> = lines.by_ref().map(str::to_string).collect();
            if body.is_empty() {
                return Err(fail("bad-lines", "SCORE needs ingredient lines".into()));
            }
            Request::Score {
                region,
                lines: body,
            }
        }
        other => return Err(fail("bad-verb", format!("unknown verb {other:?}"))),
    };
    if !matches!(req, Request::Score { .. }) && lines.next().is_some() {
        return Err(fail("bad-args", "unexpected extra payload lines".into()));
    }
    Ok((id, req))
}

/// `<id> OK <body>`.
pub fn encode_ok(id: u64, body: &str) -> String {
    format!("{id} OK {body}")
}

/// `<id> ERR <code> <message>`.
pub fn encode_err(id: u64, e: &ProtoError) -> String {
    format!("{id} ERR {} {}", e.code, e.message)
}

/// `<id> BUSY <depth>` — the bounded queue shed this request.
pub fn encode_busy(id: u64, depth: usize) -> String {
    format!("{id} BUSY {depth}")
}

/// Split a response payload into `(id, rest)`; `rest` starts with the
/// status word (`OK` / `ERR` / `BUSY`).
pub fn split_response(payload: &[u8]) -> Option<(u64, String)> {
    let text = std::str::from_utf8(payload).ok()?;
    let (id, rest) = text.split_once(' ')?;
    Some((id.parse().ok()?, rest.to_string()))
}

/// Render an `f64` as `<to_bits hex>:<decimal>` — the bit-exact wire
/// form every response body uses.
pub fn f64_field(x: f64) -> String {
    format!("{:016x}:{:.6}", x.to_bits(), x)
}

/// `PAIR` body: the N_s pairing score.
pub fn pair_body(score: f64) -> String {
    format!("pair {}", f64_field(score))
}

/// `ZPROF` body: region, sizes, observed mean, then one
/// `<model-short>=<z>` field per comparison (`-` for a degenerate
/// null with no Z).
pub fn zprof_body(a: &CuisineAnalysis) -> String {
    let mut body = format!(
        "zprof {} recipes={} ingredients={} obs={}",
        a.region.code(),
        a.n_recipes,
        a.n_ingredients,
        f64_field(a.observed_mean),
    );
    for c in &a.comparisons {
        body.push(' ');
        body.push_str(c.model.short());
        body.push('=');
        match c.z {
            Some(z) => body.push_str(&f64_field(z)),
            None => body.push('-'),
        }
    }
    body
}

/// One `TOPK` result row.
#[derive(Debug, Clone, PartialEq)]
pub struct TopPairing {
    /// `overlap / (1 + cooccurrence)` — high overlap, rarely co-used.
    pub novelty: f64,
    /// Shared flavor compounds.
    pub overlap: u32,
    /// Times the pair appears together across the store.
    pub cooc: u64,
    /// Ingredient names.
    pub a: String,
    pub b: String,
}

/// `TOPK` body: header then `;novelty,overlap,cooc,nameA|nameB` rows.
/// Separator characters inside names are replaced with `_`.
pub fn topk_body(region: Region, rows: &[TopPairing]) -> String {
    let clean = |s: &str| s.replace([';', ',', '|'], "_");
    let mut body = format!("topk {} {}", region.code(), rows.len());
    for r in rows {
        body.push_str(&format!(
            ";{},{},{},{}|{}",
            f64_field(r.novelty),
            r.overlap,
            r.cooc,
            clean(&r.a),
            clean(&r.b),
        ));
    }
    body
}

/// `SCORE` body: how many input lines resolved to at least one
/// ingredient, the distinct-id count, and the pairing score of the
/// resolved set.
pub fn score_body(resolved_lines: usize, total_lines: usize, n_ids: usize, score: f64) -> String {
    format!(
        "score lines={resolved_lines}/{total_lines} ids={n_ids} {}",
        f64_field(score)
    )
}

/// A minimal blocking client for one frame stream — what the CLI
/// examples, tests, and the `bench_serve` load generator drive.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    /// Send one request payload.
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        self.send_raw(payload.as_bytes())
    }

    /// Send an arbitrary (possibly malformed) payload — test fodder.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)?;
        self.stream.flush()
    }

    /// Receive one response as `(id, rest)`; `None` on clean EOF.
    pub fn recv(&mut self) -> io::Result<Option<(u64, String)>> {
        match read_frame(&mut self.stream, MAX_FRAME) {
            Ok(None) => Ok(None),
            Ok(Some(payload)) => split_response(&payload)
                .map(Some)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response")),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Send `<id> <line>` and block until the response for `id` comes
    /// back (responses for other in-flight ids are discarded — use
    /// [`Client::recv`] directly for pipelined traffic).
    pub fn call(&mut self, id: u64, line: &str) -> io::Result<String> {
        self.send(&format!("{id} {line}"))?;
        loop {
            match self.recv()? {
                Some((rid, rest)) if rid == id => return Ok(rest),
                Some(_) => continue,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed before the response arrived",
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"7 PING").unwrap();
        write_frame(&mut buf, b"8 QUIT").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"7 PING");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"8 QUIT");
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_structured_errors() {
        // Partial header.
        let mut r: &[u8] = &[1, 0];
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME),
            Err(FrameError::Truncated)
        ));
        // Header promises more payload than the stream holds.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME),
            Err(FrameError::Truncated)
        ));
        // Announced length over the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME),
            Err(FrameError::Oversized(_))
        ));
        // Writing over the cap is refused up front.
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn parse_requests() {
        assert_eq!(parse_request(b"3 PING").unwrap(), (3, Request::Ping));
        assert_eq!(
            parse_request(b"4 PAIR ITA 1,2,9").unwrap(),
            (
                4,
                Request::Pair {
                    region: Some(Region::Italy),
                    ids: vec![IngredientId(1), IngredientId(2), IngredientId(9)],
                }
            )
        );
        assert_eq!(
            parse_request(b"5 PAIR - 0,1").unwrap().1,
            Request::Pair {
                region: None,
                ids: vec![IngredientId(0), IngredientId(1)],
            }
        );
        assert_eq!(
            parse_request(b"6 TOPK JPN 10").unwrap().1,
            Request::TopK {
                region: Region::Japan,
                k: 10
            }
        );
        let (id, req) = parse_request(b"7 SCORE ITA\ngarlic\nbasil").unwrap();
        assert_eq!(id, 7);
        assert_eq!(
            req,
            Request::Score {
                region: Region::Italy,
                lines: vec!["garlic".into(), "basil".into()],
            }
        );
    }

    #[test]
    fn parse_errors_keep_the_id_and_code() {
        let (id, e) = parse_request(b"9 PAIR ITA 1,x").unwrap_err();
        assert_eq!((id, e.code), (9, "bad-ids"));
        let (id, e) = parse_request(b"9 ZPROF ATLANTIS").unwrap_err();
        assert_eq!((id, e.code), (9, "bad-region"));
        let (id, e) = parse_request(b"9 TOPK ITA 0").unwrap_err();
        assert_eq!((id, e.code), (9, "bad-k"));
        let (id, e) = parse_request(b"9 FRY ITA").unwrap_err();
        assert_eq!((id, e.code), (9, "bad-verb"));
        let (id, e) = parse_request(b"x PING").unwrap_err();
        assert_eq!((id, e.code), (0, "bad-id"));
        let (id, e) = parse_request(&[0xff, 0xfe]).unwrap_err();
        assert_eq!((id, e.code), (0, "bad-encoding"));
        let (_, e) = parse_request(b"9 PING\nextra").unwrap_err();
        assert_eq!(e.code, "bad-args");
    }

    #[test]
    fn f64_field_is_bit_exact() {
        let x = 0.123_456_789_f64;
        let field = f64_field(x);
        let hex = field.split(':').next().unwrap();
        assert_eq!(u64::from_str_radix(hex, 16).unwrap(), x.to_bits());
    }

    #[test]
    fn response_encoding_and_split() {
        let payload = encode_ok(12, &pair_body(0.5));
        let (id, rest) = split_response(payload.as_bytes()).unwrap();
        assert_eq!(id, 12);
        assert!(rest.starts_with("OK pair "));
        let busy = encode_busy(3, 256);
        assert_eq!(split_response(busy.as_bytes()).unwrap().1, "BUSY 256");
    }
}
