//! `culinaria-serve`: a long-lived, batched, cached query service over
//! the zero-copy CFDB2/CRDB2 artifacts.
//!
//! The batch pipeline (`culinaria analyze-*`) rebuilds its world every
//! run; this crate is the complementary *online* path the ROADMAP's
//! production north-star implies. A [`Server`] opens the artifacts
//! once (O(1) via `BorrowedFlavorDb`/`BorrowedRecipeDb` behind
//! `core::view`), lazily builds one [overlap shard](server::RegionShard)
//! per region — straight from the artifact's precomputed triangle
//! section when one matches — and then answers four query families
//! over a no-network framed transport ([`protocol`]):
//!
//! - `PAIR` — flavor-sharing score N_s for an ingredient-id set,
//! - `ZPROF` — a cuisine's Z-profile against every null model,
//! - `TOPK` — top-k novel pairings (high overlap, low co-occurrence),
//! - `SCORE` — free-text recipe import-and-score.
//!
//! The perf core is three mechanisms, each measured by `bench_serve`:
//! deterministic request batching over `culinaria_stats::pool`
//! ([`server`] docs give the bit-identity argument), a bounded LRU
//! response cache over interned ingredient-id sets ([`cache`]), and
//! load-shedding bounded-queue backpressure ([`queue`]). Live metrics
//! flow through `culinaria-obs` and out the `METRICS` endpoint.
//!
//! # Serving over mutable data
//!
//! The server can sit on a *stream* of recipes (`culinaria ingest`,
//! `culinaria_recipedb::wal`): [`Server::ingest_swap`] installs a new
//! data generation atomically — lazy shards and the `SCORE` context
//! rebuild on first use, and cached responses from older generations
//! are invalidated lazily on lookup
//! ([`cache::ResponseCache::set_generation`], counted by
//! `serve.cache.invalidations`). `bench_stream` measures this
//! ingest-while-serving regime; the wire protocol itself is documented
//! end-to-end in `docs/PROTOCOL.md`.

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, ResponseCache};
pub use protocol::{Client, ProtoError, Request, MAX_FRAME};
pub use queue::BoundedQueue;
pub use server::{resolve_score_lines, ConnStats, ServeConfig, Server};
