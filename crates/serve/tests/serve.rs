//! Integration coverage for the serve stack: framing fuzz (malformed
//! frames never panic and always answer with structured errors),
//! batch≡serial response bit-identity across worker-thread counts,
//! served-vs-offline parity for every endpoint, cache behavior over a
//! live connection, and load-shedding backpressure.

use std::os::unix::net::UnixStream;

use proptest::prelude::*;

use culinaria_core::pairing::OverlapCache;
use culinaria_core::z_analysis::analyze_cuisine;
use culinaria_core::{recipe_pairing_score, FlavorViewRef, MonteCarloConfig, RecipesViewRef};
use culinaria_core::{CuisineView, NullModel};
use culinaria_datagen::{generate_world, World, WorldConfig};
use culinaria_flavordb::IngredientId;
use culinaria_obs::Metrics;
use culinaria_recipedb::import::Importer;
use culinaria_recipedb::{RecipeStore, Region, Source};
use culinaria_serve::protocol::{
    self, parse_request, read_frame, topk_body, Client, TopPairing, MAX_FRAME,
};
use culinaria_serve::{ConnStats, Request, ServeConfig, Server};

fn tiny_world() -> World {
    generate_world(&WorldConfig::tiny())
}

fn server_over<'a>(world: &'a World, cfg: ServeConfig) -> Server<'a> {
    Server::new(
        FlavorViewRef::Owned(&world.flavor),
        RecipesViewRef::Owned(&world.recipes),
        cfg,
        Metrics::enabled(),
    )
}

/// A populated region of the world plus a few of its ingredient ids.
fn probe(world: &World) -> (Region, Vec<IngredientId>) {
    let region = *world
        .recipes
        .regions()
        .first()
        .expect("tiny world has recipes");
    let cuisine = CuisineView::Owned(world.recipes.cuisine(region));
    let pool = cuisine.ingredient_set();
    assert!(pool.len() >= 4, "need a few ingredients to probe with");
    (region, pool[..4].to_vec())
}

fn ids_arg(ids: &[IngredientId]) -> String {
    ids.iter()
        .map(|id| id.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Run `f` against a served connection; returns the connection stats.
fn with_connection<F>(server: &Server<'_>, f: F) -> ConnStats
where
    F: FnOnce(&mut Client<UnixStream>) + Send,
{
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let handle =
            scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        let mut client = Client::new(client_side);
        f(&mut client);
        drop(client);
        handle.join().expect("server thread")
    })
}

proptest! {
    /// Arbitrary bytes never panic the frame reader, and whatever
    /// frames do decode never panic the request parser.
    #[test]
    fn fuzz_frame_reader_and_parser(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = &bytes[..];
        while let Ok(Some(payload)) = read_frame(&mut r, MAX_FRAME) {
            let _ = parse_request(&payload);
        }
    }

    /// Any single-line payload either parses or yields a structured
    /// error with a stable code — never a panic.
    #[test]
    fn fuzz_parse_request_total(payload in "\\PC{0,120}") {
        match parse_request(payload.as_bytes()) {
            Ok(_) => {}
            Err((_, e)) => prop_assert!(!e.code.is_empty() && !e.message.is_empty()),
        }
    }
}

#[test]
fn garbage_frames_get_structured_errors_and_the_connection_survives() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let stats = with_connection(&server, |client| {
        // Garbage verb.
        assert_eq!(
            client.call(1, "FRY ITA").unwrap(),
            "ERR bad-verb unknown verb \"FRY\""
        );
        // Non-UTF-8 payload.
        client.send_raw(&[0xff, 0xfe, 0xfd]).unwrap();
        let (id, rest) = client.recv().unwrap().unwrap();
        assert_eq!(id, 0);
        assert!(rest.starts_with("ERR bad-encoding"), "{rest}");
        // The connection still answers after both errors.
        assert_eq!(client.call(2, "PING").unwrap(), "OK pong");
        assert!(client.call(3, "QUIT").unwrap().starts_with("OK bye"));
    });
    assert_eq!(stats.protocol_errors, 2);
}

#[test]
fn truncated_frame_closes_with_structured_error() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    let stats = std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let handle =
            scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        // Header promising 100 bytes, then hang up.
        use std::io::Write;
        let mut half = client_side.try_clone().unwrap();
        half.write_all(&100u32.to_le_bytes()).unwrap();
        half.write_all(b"only a little").unwrap();
        half.shutdown(std::net::Shutdown::Write).unwrap();
        let mut client = Client::new(client_side);
        let (id, rest) = client.recv().unwrap().unwrap();
        assert_eq!(id, 0);
        assert!(rest.starts_with("ERR bad-frame"), "{rest}");
        assert!(client.recv().unwrap().is_none(), "connection closed");
        handle.join().expect("server thread")
    });
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn oversized_frame_is_rejected_not_read() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (server_side, client_side) = UnixStream::pair().expect("socketpair");
    std::thread::scope(|scope| {
        let reader = server_side.try_clone().expect("clone");
        let handle =
            scope.spawn(move || server.serve_connection(reader, server_side).expect("serve"));
        use std::io::Write;
        let mut half = client_side.try_clone().unwrap();
        half.write_all(&(MAX_FRAME as u32 + 1).to_le_bytes())
            .unwrap();
        half.flush().unwrap();
        let mut client = Client::new(client_side);
        let (_, rest) = client.recv().unwrap().unwrap();
        assert!(rest.starts_with("ERR bad-frame"), "{rest}");
        assert!(client.recv().unwrap().is_none(), "stream desynced → closed");
        handle.join().expect("server thread");
    });
}

/// The canonical deterministic query mix used by the identity tests.
fn mixed_requests(world: &World) -> Vec<(u64, Request)> {
    let (region, ids) = probe(world);
    let mut reqs: Vec<(u64, Request)> = Vec::new();
    for rep in 0..3u64 {
        reqs.push((
            rep * 10 + 1,
            Request::Pair {
                region: Some(region),
                ids: ids.clone(),
            },
        ));
        reqs.push((
            rep * 10 + 2,
            Request::Pair {
                region: None,
                ids: ids.clone(),
            },
        ));
        reqs.push((rep * 10 + 3, Request::TopK { region, k: 5 }));
        reqs.push((rep * 10 + 4, Request::ZProf { region }));
        reqs.push((rep * 10 + 5, Request::Ping));
        reqs.push((
            rep * 10 + 6,
            Request::Pair {
                region: Some(region),
                ids: vec![ids[0], ids[1]],
            },
        ));
    }
    reqs
}

#[test]
fn batch_responses_bit_identical_across_thread_counts() {
    let world = tiny_world();
    let mc = 300;
    let mut reference: Option<(Vec<String>, u64, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ServeConfig {
            threads,
            mc_recipes: mc,
            ..ServeConfig::default()
        };
        let server = server_over(&world, cfg);
        let reqs = mixed_requests(&world);
        let mut responses = Vec::new();
        // Two successive batches so cache state crosses a batch edge.
        let (front, back) = reqs.split_at(reqs.len() / 2);
        responses.extend(server.handle_batch(front));
        responses.extend(server.handle_batch(back));
        let stats = server.cache_stats().expect("cache on");
        match &reference {
            None => reference = Some((responses, stats.hits, stats.misses)),
            Some((ref_responses, hits, misses)) => {
                assert_eq!(&responses, ref_responses, "thread count {threads} diverged");
                assert_eq!((stats.hits, stats.misses), (*hits, *misses));
            }
        }
    }
}

#[test]
fn batched_equals_serial_responses() {
    let world = tiny_world();
    let cfg = ServeConfig {
        mc_recipes: 300,
        cache_entries: 0, // isolate pure computation from cache effects
        ..ServeConfig::default()
    };
    let batched_server = server_over(&world, cfg);
    let serial_server = server_over(&world, cfg);
    let reqs = mixed_requests(&world);
    let batched = batched_server.handle_batch(&reqs);
    let serial: Vec<String> = reqs
        .iter()
        .map(|(id, req)| serial_server.handle(*id, req))
        .collect();
    assert_eq!(batched, serial);
}

#[test]
fn pair_shard_and_global_paths_agree_bitwise() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (region, _) = probe(&world);
    let cuisine = CuisineView::Owned(world.recipes.cuisine(region));
    let pool = cuisine.ingredient_set();
    // Every adjacent pair and a few larger sets.
    for w in pool.windows(3).take(20) {
        let shard = server.handle(
            1,
            &Request::Pair {
                region: Some(region),
                ids: w.to_vec(),
            },
        );
        let global = server.handle(
            2,
            &Request::Pair {
                region: None,
                ids: w.to_vec(),
            },
        );
        assert_eq!(
            shard.split_once(' ').unwrap().1,
            global.split_once(' ').unwrap().1
        );
        // And both match the offline owned-path score bit-for-bit.
        let offline = recipe_pairing_score(&world.flavor, w);
        let expected = format!("OK {}", protocol::pair_body(offline));
        assert_eq!(shard.split_once(' ').unwrap().1, expected);
    }
}

#[test]
fn zprof_matches_offline_analyze_cuisine_bitwise() {
    let world = tiny_world();
    let cfg = ServeConfig {
        mc_recipes: 400,
        seed: 77,
        ..ServeConfig::default()
    };
    let server = server_over(&world, cfg);
    let (region, _) = probe(&world);
    let served = server.handle(9, &Request::ZProf { region });
    let offline = analyze_cuisine(
        &world.flavor,
        &world.recipes.cuisine(region),
        &NullModel::ALL,
        &MonteCarloConfig {
            n_recipes: 400,
            seed: 77,
            n_threads: 1,
        },
    )
    .expect("probed region is populated");
    assert_eq!(served, format!("9 OK {}", protocol::zprof_body(&offline)));
}

#[test]
fn topk_matches_offline_novelty_enumeration() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (region, _) = probe(&world);
    let served = server.handle(4, &Request::TopK { region, k: 8 });

    // The offline reference: examples/novel_pairings.rs's enumeration.
    let cuisine = CuisineView::Owned(world.recipes.cuisine(region));
    let pool = cuisine.ingredient_set();
    let cache = OverlapCache::for_cuisine(&world.flavor, &world.recipes.cuisine(region));
    let tri_index = |n: usize, i: usize, j: usize| i * n - i * (i + 1) / 2 + (j - i - 1);
    let pos: std::collections::HashMap<IngredientId, usize> =
        pool.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut cooc = vec![0u64; pool.len() * pool.len().saturating_sub(1) / 2];
    for recipe in world.recipes.recipes() {
        let mut members: Vec<usize> = recipe
            .ingredients()
            .iter()
            .filter_map(|id| pos.get(id).copied())
            .collect();
        members.sort_unstable();
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                cooc[tri_index(pool.len(), i, j)] += 1;
            }
        }
    }
    let mut candidates: Vec<(f64, u32, u64, usize, usize)> = Vec::new();
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            let overlap = cache.overlap(i as u32, j as u32);
            if overlap == 0 {
                continue;
            }
            let c = cooc[tri_index(pool.len(), i, j)];
            candidates.push((f64::from(overlap) / (1.0 + c as f64), overlap, c, i, j));
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    let rows: Vec<TopPairing> = candidates
        .iter()
        .take(8)
        .map(|&(novelty, overlap, cooc, i, j)| TopPairing {
            novelty,
            overlap,
            cooc,
            a: world.flavor.ingredient(pool[i]).unwrap().name.clone(),
            b: world.flavor.ingredient(pool[j]).unwrap().name.clone(),
        })
        .collect();
    assert_eq!(served, format!("4 OK {}", topk_body(region, &rows)));
}

#[test]
fn score_matches_offline_import_and_score() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (region, _) = probe(&world);
    // Lines built from real ingredient names resolve on any dataset.
    let cuisine = CuisineView::Owned(world.recipes.cuisine(region));
    let pool = cuisine.ingredient_set();
    let lines: Vec<String> = pool[..3]
        .iter()
        .map(|&id| world.flavor.ingredient(id).unwrap().name.clone())
        .collect();
    let served = server.handle(
        5,
        &Request::Score {
            region,
            lines: lines.clone(),
        },
    );

    let importer = Importer::from_flavor_db(&world.flavor);
    let (ids, resolved) = culinaria_serve::resolve_score_lines(&importer, &world.flavor, &lines);
    assert!(ids.len() >= 2, "names must resolve against their own db");
    let score = recipe_pairing_score(&world.flavor, &ids);
    let mean = OverlapCache::for_cuisine(&world.flavor, &world.recipes.cuisine(region))
        .mean_cuisine_score_view(&cuisine)
        .expect("cuisine scores");
    let expected = format!(
        "5 OK {} vs={}",
        protocol::score_body(resolved, lines.len(), ids.len(), score),
        protocol::f64_field(mean),
    );
    assert_eq!(served, expected);
}

#[test]
fn cache_hits_and_eviction_counters_over_a_connection() {
    let world = tiny_world();
    let cfg = ServeConfig {
        cache_entries: 2,
        ..ServeConfig::default()
    };
    let server = server_over(&world, cfg);
    let (region, ids) = probe(&world);
    let arg = ids_arg(&ids);
    let code = region.code();
    with_connection(&server, |client| {
        let first = client.call(1, &format!("PAIR {code} {arg}")).unwrap();
        let second = client.call(2, &format!("PAIR {code} {arg}")).unwrap();
        assert_eq!(first, second);
        // Permuted ids hit the same interned-set entry.
        let permuted: String = ids
            .iter()
            .rev()
            .map(|id| id.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(
            client.call(3, &format!("PAIR {code} {permuted}")).unwrap(),
            first
        );
        // Two more distinct keys overflow the 2-entry capacity.
        client.call(4, &format!("TOPK {code} 3")).unwrap();
        client.call(5, &format!("TOPK {code} 4")).unwrap();
        client.call(6, "QUIT").unwrap();
    });
    let stats = server.cache_stats().expect("cache on");
    assert_eq!(stats.hits, 2);
    assert!(
        stats.evictions >= 1,
        "capacity 2 with 3 distinct keys evicts"
    );
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("serve.cache.hits"), Some(2));
    assert_eq!(snap.counter("serve.cache.evictions"), Some(stats.evictions));
}

#[test]
fn overloaded_connection_sheds_with_busy() {
    let world = tiny_world();
    let cfg = ServeConfig {
        threads: 1,
        batch_max: 1,
        max_queue: 1,
        cache_entries: 0,
        mc_recipes: 4000,
        ..ServeConfig::default()
    };
    let server = server_over(&world, cfg);
    let (region, _) = probe(&world);
    let n = 50u64;
    let stats = with_connection(&server, |client| {
        // Pipeline a burst of expensive queries without reading — the
        // 1-deep queue must shed most of them as BUSY.
        for id in 0..n {
            client
                .send(&format!("{id} ZPROF {}", region.code()))
                .unwrap();
        }
        let mut ok = 0u64;
        let mut busy = 0u64;
        for _ in 0..n {
            let (_, rest) = client.recv().unwrap().unwrap();
            if rest.starts_with("OK ") {
                ok += 1;
            } else if rest.starts_with("BUSY ") {
                busy += 1;
            } else {
                panic!("unexpected reply {rest}");
            }
        }
        assert!(ok >= 1, "at least the first query is answered");
        assert!(busy >= 1, "the burst must overflow the 1-deep queue");
    });
    assert_eq!(stats.served + stats.shed, n);
    assert!(stats.shed > 0);
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("serve.busy"), Some(stats.shed));
}

#[test]
fn artifact_backed_server_is_bit_identical_to_owned() {
    use culinaria_flavordb::{artifact as flavor_artifact, AlignedBytes, FlavorArtifactBuilder};
    use culinaria_recipedb::{artifact as recipe_artifact, RecipeArtifactBuilder};

    let world = tiny_world();
    let (region, ids) = probe(&world);
    // Flavor artifact carrying the probe region's overlap section, so
    // the shard build takes the section-reuse fast path.
    let mut builder = FlavorArtifactBuilder::new(&world.flavor);
    let cache = OverlapCache::for_cuisine(&world.flavor, &world.recipes.cuisine(region));
    builder
        .add_overlap(region.code(), cache.pool(), cache.tri())
        .expect("section encodes");
    let fbuf = AlignedBytes::from_vec(builder.build().expect("flavor artifact"));
    let rbuf = AlignedBytes::from_vec(
        RecipeArtifactBuilder::new(&world.recipes)
            .build()
            .expect("recipe artifact"),
    );
    let flavor = flavor_artifact::open(fbuf.as_slice()).expect("opens");
    let recipes = recipe_artifact::open(rbuf.as_slice()).expect("opens");

    let cfg = ServeConfig {
        mc_recipes: 300,
        ..ServeConfig::default()
    };
    let owned = server_over(&world, cfg);
    let borrowed = Server::new(
        FlavorViewRef::Artifact(&flavor),
        RecipesViewRef::Artifact(&recipes),
        cfg,
        Metrics::enabled(),
    );
    let name = world.flavor.ingredient(ids[0]).unwrap().name.clone();
    let reqs = [
        Request::Pair {
            region: Some(region),
            ids: ids.clone(),
        },
        Request::Pair {
            region: None,
            ids: ids.clone(),
        },
        Request::ZProf { region },
        Request::TopK { region, k: 6 },
        Request::Score {
            region,
            lines: vec![name.clone(), name],
        },
    ];
    for (i, req) in reqs.iter().enumerate() {
        let a = owned.handle(i as u64, req);
        let b = borrowed.handle(i as u64, req);
        assert_eq!(a, b, "request {req:?} diverged between representations");
    }
    // The shard build must have reused the artifact's section.
    let snap = borrowed.metrics().snapshot();
    assert_eq!(snap.counter("overlap.section_reuse"), Some(1));
}

#[test]
fn ingest_swap_invalidates_cache_and_serves_new_bits() {
    let world = tiny_world();
    let (region, ids) = probe(&world);
    // A grown copy of the store: the same corpus plus one streamed-in
    // recipe in the probe region (changes its cuisine, hence ZPROF).
    let mut grown = RecipeStore::new();
    for r in world.recipes.recipes() {
        grown
            .add_recipe(&r.name, r.region, r.source, r.ingredients().to_vec())
            .unwrap();
    }
    grown
        .add_recipe("streamed", region, Source::Synthetic, ids.clone())
        .unwrap();

    let cfg = ServeConfig {
        cache_entries: 8,
        mc_recipes: 200,
        ..ServeConfig::default()
    };
    let server = server_over(&world, cfg);
    let req = Request::ZProf { region };

    // Warm the cache: second identical query is a hit.
    let first = server.handle(1, &req);
    let hit = server.handle(2, &req);
    assert_eq!(first[2..], hit[2..], "ids differ, bodies must not");
    assert_eq!(server.cache_stats().expect("cache on").hits, 1);
    assert_eq!(server.generation(), 0);

    // Ingest: swap to the grown store. Generation moves, nothing is
    // swept eagerly.
    let generation = server.ingest_swap(
        FlavorViewRef::Owned(&world.flavor),
        RecipesViewRef::Owned(&grown),
    );
    assert_eq!(generation, 1);
    assert_eq!(server.generation(), 1);
    assert_eq!(server.cache_stats().expect("cache on").invalidations, 0);

    // The same query now evicts the stale entry (counted) and answers
    // with the new data's bits.
    let after = server.handle(3, &req);
    let stats = server.cache_stats().expect("cache on");
    assert_eq!(stats.invalidations, 1, "stale entry evicted on lookup");
    assert_ne!(first[2..], after[2..], "answer must change with the data");

    // Bit-identical to a cold server started over the grown store.
    let fresh = Server::new(
        FlavorViewRef::Owned(&world.flavor),
        RecipesViewRef::Owned(&grown),
        cfg,
        Metrics::enabled(),
    );
    assert_eq!(after, fresh.handle(3, &req));

    // And the new answer is cached under the new generation.
    let again = server.handle(4, &req);
    assert_eq!(after[2..], again[2..]);
    let stats = server.cache_stats().expect("cache on");
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.hits, 2);

    // Counter mirrored into the metrics registry.
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("serve.cache.invalidations"), Some(1));
}

#[test]
fn metrics_endpoint_returns_live_json() {
    let world = tiny_world();
    let server = server_over(&world, ServeConfig::default());
    let (region, ids) = probe(&world);
    with_connection(&server, |client| {
        client
            .call(1, &format!("PAIR {} {}", region.code(), ids_arg(&ids)))
            .unwrap();
        let body = client.call(2, "METRICS").unwrap();
        let json = body.strip_prefix("OK metrics ").expect("metrics body");
        assert!(json.contains("\"serve.pair_us\""), "{json}");
        assert!(json.contains("\"serve.requests\""), "{json}");
        assert!(json.contains("\"p99_us\""), "interpolated quantiles render");
        client.call(3, "QUIT").unwrap();
    });
}
