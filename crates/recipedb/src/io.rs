//! Binary snapshots and CSV export of a [`RecipeStore`].
//!
//! Snapshot format `CRDB1` (little-endian):
//!
//! ```text
//! magic "CRDB1"
//! u32 n_recipes
//!   per recipe: str name, u8 region, u8 source,
//!               u32 n_ingredients, u32 × n (ingredient ids)
//! ```
//!
//! `str` = u32 byte length + UTF-8 bytes. Indexes are rebuilt on load.

// User-reachable serialization/ingestion surface: panicking on bad
// data is forbidden here — return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bytes::{Buf, BufMut, Bytes, BytesMut};

use culinaria_flavordb::IngredientId;

use crate::error::{RecipeDbError, Result};
use crate::recipe::Source;
use crate::region::Region;
use crate::store::RecipeStore;

const MAGIC: &[u8; 5] = b"CRDB1";

fn put_str(buf: &mut BytesMut, s: &str) -> Result<()> {
    let len = u32::try_from(s.len()).map_err(|_| {
        RecipeDbError::Snapshot(format!(
            "string of {} bytes exceeds the u32 format limit",
            s.len()
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn put_count(buf: &mut BytesMut, n: usize, what: &str) -> Result<()> {
    let n = u32::try_from(n)
        .map_err(|_| RecipeDbError::Snapshot(format!("{what} {n} exceeds the u32 format limit")))?;
    buf.put_u32_le(n);
    Ok(())
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(RecipeDbError::Snapshot("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(RecipeDbError::Snapshot("truncated string body".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| RecipeDbError::Snapshot("invalid utf-8".into()))
}

/// Encode a store to its binary snapshot.
///
/// # Errors
///
/// Returns [`RecipeDbError::Snapshot`] when a value does not fit the
/// format's fixed-width fields (a recipe name or count beyond
/// `u32::MAX`) — the writer checks every conversion instead of silently
/// truncating and emitting a snapshot that decodes to different data.
pub fn to_snapshot(store: &RecipeStore) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    put_count(&mut buf, store.n_recipes(), "recipe count")?;
    for r in store.recipes() {
        put_str(&mut buf, &r.name)?;
        buf.put_u8(r.region.index() as u8);
        buf.put_u8(r.source.index() as u8);
        put_count(&mut buf, r.size(), "ingredient count")?;
        for ing in r.ingredients() {
            buf.put_u32_le(ing.0);
        }
    }
    Ok(buf.freeze())
}

/// Decode a snapshot back into a store (indexes rebuilt).
pub fn from_snapshot(mut buf: Bytes) -> Result<RecipeStore> {
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(RecipeDbError::Snapshot("bad magic".into()));
    }
    if buf.remaining() < 4 {
        return Err(RecipeDbError::Snapshot("truncated recipe count".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut store = RecipeStore::new();
    for _ in 0..n {
        let name = get_str(&mut buf)?;
        if buf.remaining() < 2 {
            return Err(RecipeDbError::Snapshot("truncated region/source".into()));
        }
        let region = Region::from_index(buf.get_u8() as usize)
            .ok_or_else(|| RecipeDbError::Snapshot("bad region index".into()))?;
        let source = Source::from_index(buf.get_u8() as usize)
            .ok_or_else(|| RecipeDbError::Snapshot("bad source index".into()))?;
        if buf.remaining() < 4 {
            return Err(RecipeDbError::Snapshot("truncated ingredient count".into()));
        }
        let k = buf.get_u32_le() as usize;
        if buf.remaining() < k * 4 {
            return Err(RecipeDbError::Snapshot("truncated ingredient list".into()));
        }
        let mut ings = Vec::with_capacity(k);
        for _ in 0..k {
            ings.push(IngredientId(buf.get_u32_le()));
        }
        store
            .add_recipe(&name, region, source, ings)
            .map_err(|e| RecipeDbError::Snapshot(format!("recipe replay: {e}")))?;
    }
    if buf.has_remaining() {
        return Err(RecipeDbError::Snapshot(format!(
            "{} trailing bytes after snapshot",
            buf.remaining()
        )));
    }
    Ok(store)
}

/// Export the store as CSV: `recipe_id,name,region,source,ingredients`
/// with ingredient ids `;`-joined.
pub fn to_csv(store: &RecipeStore) -> String {
    let mut out = String::from("recipe_id,name,region,source,ingredients\n");
    for r in store.recipes() {
        let ings: Vec<String> = r.ingredients().iter().map(|i| i.0.to_string()).collect();
        let name = if r.name.contains(',') || r.name.contains('"') {
            format!("\"{}\"", r.name.replace('"', "\"\""))
        } else {
            r.name.clone()
        };
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.id.0,
            name,
            r.region.code(),
            r.source.name(),
            ings.join(";")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ing(id: u32) -> IngredientId {
        IngredientId(id)
    }

    fn store() -> RecipeStore {
        let mut s = RecipeStore::new();
        s.add_recipe(
            "pasta, fresh",
            Region::Italy,
            Source::Epicurious,
            vec![ing(0), ing(1)],
        )
        .unwrap();
        s.add_recipe(
            "sushi",
            Region::Japan,
            Source::AllRecipes,
            vec![ing(2), ing(3), ing(4)],
        )
        .unwrap();
        s
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = store();
        let back = from_snapshot(to_snapshot(&s).unwrap()).unwrap();
        assert_eq!(back.n_recipes(), 2);
        for (a, b) in s.recipes().zip(back.recipes()) {
            assert_eq!(a, b);
        }
        // Indexes rebuilt.
        assert_eq!(back.recipes_with_ingredient(ing(1)).len(), 1);
        assert_eq!(back.n_region_recipes(Region::Japan), 1);
    }

    #[test]
    fn bad_magic_and_truncation() {
        assert!(from_snapshot(Bytes::from_static(b"XXXXX")).is_err());
        let snap = to_snapshot(&store()).unwrap();
        for cut in [4, 7, 12, snap.len() - 2] {
            assert!(from_snapshot(snap.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let snap = to_snapshot(&store()).unwrap().to_vec();
        for i in 0..snap.len() {
            let mut c = snap.clone();
            c[i] = c[i].wrapping_add(1);
            let _ = from_snapshot(Bytes::from(c)); // no panic
        }
    }

    #[test]
    fn csv_export_shape() {
        let csv = to_csv(&store());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "recipe_id,name,region,source,ingredients");
        assert!(lines[1].contains("\"pasta, fresh\""));
        assert!(lines[1].contains("ITA"));
        assert!(lines[2].contains("2;3;4"));
    }
}
