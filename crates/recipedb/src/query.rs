//! Query helpers over the store: co-occurrence, containment, and
//! per-region ingredient usage.

use std::collections::HashMap;

use culinaria_flavordb::IngredientId;

use crate::recipe::RecipeId;
use crate::region::Region;
use crate::store::RecipeStore;

impl RecipeStore {
    /// Recipes containing *all* of the given ingredients (sorted-list
    /// intersection over the inverted index, smallest posting first).
    pub fn recipes_with_all(&self, ingredients: &[IngredientId]) -> Vec<RecipeId> {
        if ingredients.is_empty() {
            return Vec::new();
        }
        let mut postings: Vec<&[RecipeId]> = ingredients
            .iter()
            .map(|&i| self.recipes_with_ingredient(i))
            .collect();
        postings.sort_by_key(|p| p.len());
        if postings[0].is_empty() {
            return Vec::new();
        }
        let mut acc: Vec<RecipeId> = postings[0].to_vec();
        for p in &postings[1..] {
            acc.retain(|id| p.binary_search(id).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Number of recipes in which the pair co-occurs.
    pub fn cooccurrence(&self, a: IngredientId, b: IngredientId) -> usize {
        self.recipes_with_all(&[a, b]).len()
    }

    /// Per-region usage count of one ingredient.
    pub fn regional_usage(&self, ingredient: IngredientId) -> [u64; 22] {
        let mut out = [0u64; 22];
        for &rid in self.recipes_with_ingredient(ingredient) {
            let recipe = self.recipe(rid).expect("index only holds live ids");
            out[recipe.region.index()] += 1;
        }
        out
    }

    /// The most frequent co-occurring partners of `ingredient`, as
    /// `(partner, count)`, most frequent first (ties by id).
    pub fn top_partners(&self, ingredient: IngredientId, k: usize) -> Vec<(IngredientId, usize)> {
        let mut counts: HashMap<IngredientId, usize> = HashMap::new();
        for &rid in self.recipes_with_ingredient(ingredient) {
            let recipe = self.recipe(rid).expect("live id");
            for &other in recipe.ingredients() {
                if other != ingredient {
                    *counts.entry(other).or_insert(0) += 1;
                }
            }
        }
        let mut pairs: Vec<(IngredientId, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// Recipes of `region` containing `ingredient`.
    pub fn region_recipes_with(&self, region: Region, ingredient: IngredientId) -> Vec<RecipeId> {
        self.recipes_with_ingredient(ingredient)
            .iter()
            .copied()
            .filter(|&rid| self.recipe(rid).expect("live id").region == region)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Source;

    fn ing(id: u32) -> IngredientId {
        IngredientId(id)
    }

    fn store() -> RecipeStore {
        let mut s = RecipeStore::new();
        s.add_recipe(
            "a",
            Region::Italy,
            Source::Synthetic,
            vec![ing(0), ing(1), ing(2)],
        )
        .unwrap();
        s.add_recipe("b", Region::Italy, Source::Synthetic, vec![ing(1), ing(2)])
            .unwrap();
        s.add_recipe("c", Region::Japan, Source::Synthetic, vec![ing(2), ing(3)])
            .unwrap();
        s
    }

    #[test]
    fn intersection_queries() {
        let s = store();
        assert_eq!(
            s.recipes_with_all(&[ing(1), ing(2)]),
            vec![RecipeId(0), RecipeId(1)]
        );
        assert_eq!(
            s.recipes_with_all(&[ing(0), ing(3)]),
            Vec::<RecipeId>::new()
        );
        assert!(s.recipes_with_all(&[]).is_empty());
        assert!(s.recipes_with_all(&[ing(42)]).is_empty());
    }

    #[test]
    fn cooccurrence_counts() {
        let s = store();
        assert_eq!(s.cooccurrence(ing(1), ing(2)), 2);
        assert_eq!(s.cooccurrence(ing(0), ing(3)), 0);
    }

    #[test]
    fn regional_usage_counts() {
        let s = store();
        let usage = s.regional_usage(ing(2));
        assert_eq!(usage[Region::Italy.index()], 2);
        assert_eq!(usage[Region::Japan.index()], 1);
        assert_eq!(usage[Region::Usa.index()], 0);
    }

    #[test]
    fn top_partners_ranked() {
        let s = store();
        let partners = s.top_partners(ing(2), 10);
        assert_eq!(partners[0], (ing(1), 2));
        assert!(partners.contains(&(ing(0), 1)));
        assert!(partners.contains(&(ing(3), 1)));
    }

    #[test]
    fn region_scoped_containment() {
        let s = store();
        assert_eq!(
            s.region_recipes_with(Region::Italy, ing(2)),
            vec![RecipeId(0), RecipeId(1)]
        );
        assert_eq!(
            s.region_recipes_with(Region::Japan, ing(2)),
            vec![RecipeId(2)]
        );
    }
}
