#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! CRDB2: the zero-copy recipe-store artifact.
//!
//! The CRDB1 snapshot ([`crate::io`]) replays every recipe through
//! [`RecipeStore::add_recipe`] on load — allocating a name `String`
//! and an ingredient `Vec` per recipe and rebuilding the per-region
//! partitions and inverted index from scratch. CRDB2 stores the same
//! content in the shapes the analysis reads: recipe records over one
//! interned string blob, a flat sorted ingredient-id column, and
//! *region-sharded recipe columns* so "give me the cuisine of Italy"
//! is a validated slice borrow instead of a filter pass.
//!
//! The physical grammar (header, canonical section table, alignment,
//! endianness) is shared with CFDB2 via
//! [`culinaria_flavordb::artifact::layout`]; see `DESIGN.md` §12.

use std::collections::HashMap;

use culinaria_flavordb::artifact::layout::{
    cast_u32s, str_span, u32_at, u64_at, ArtifactWriter, Sections, StringTable,
};
pub use culinaria_flavordb::artifact::layout::{AlignedBytes, ArtifactError};
use culinaria_flavordb::IngredientId;

use crate::error::RecipeDbError;
use crate::recipe::{RecipeId, Source};
use crate::region::Region;
use crate::store::RecipeStore;

/// Magic bytes opening every CRDB2 buffer.
pub const CRDB2_MAGIC: [u8; 8] = *b"CRDB2\x00\x00\x00";
/// Format version this module writes and reads.
pub const CRDB2_VERSION: u32 = 2;

const K_META: u32 = 1;
const K_STRINGS: u32 = 2;
const K_RECIPES: u32 = 3;
const K_INGREDIENT_IDS: u32 = 4;
const K_REGION_SHARDS: u32 = 5;
const K_REGION_RECIPES: u32 = 6;
const N_KINDS: usize = 6;

const META_BYTES: usize = 24;
const RECIPE_REC: usize = 24;
const SHARD_REC: usize = 8;
const N_REGIONS: usize = 22;

fn count_u32(n: usize, what: &str) -> Result<u32, ArtifactError> {
    u32::try_from(n).map_err(|_| ArtifactError::TooLarge(format!("{what} count {n} exceeds u32")))
}

fn push_u32s(out: &mut Vec<u8>, values: &[u32]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reinterpret a validated `&[u32]` as ids (`repr(transparent)`).
fn as_ingredient_ids(ids: &[u32]) -> &[IngredientId] {
    // SAFETY: IngredientId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<IngredientId>(), ids.len()) }
}

/// Reinterpret a validated `&[u32]` as ids (`repr(transparent)`).
fn as_recipe_ids(ids: &[u32]) -> &[RecipeId] {
    // SAFETY: RecipeId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<RecipeId>(), ids.len()) }
}

/// Serializes a [`RecipeStore`] into a canonical CRDB2 buffer.
///
/// Deterministic: recipes are written in id order and the region
/// shards in Table-1 region order, so the same store always produces
/// a byte-identical buffer.
#[derive(Debug)]
pub struct RecipeArtifactBuilder<'a> {
    store: &'a RecipeStore,
}

impl<'a> RecipeArtifactBuilder<'a> {
    /// Start a builder over an owned store.
    pub fn new(store: &'a RecipeStore) -> RecipeArtifactBuilder<'a> {
        RecipeArtifactBuilder { store }
    }

    /// Serialize into a canonical CRDB2 buffer.
    pub fn build(&self) -> Result<Vec<u8>, ArtifactError> {
        let store = self.store;
        let n_recipes = store.n_recipes();

        let mut strings = StringTable::new();
        let mut recipes_sec = Vec::with_capacity(n_recipes * RECIPE_REC);
        let mut ids_sec = Vec::new();
        let mut n_refs = 0u32;
        for r in store.recipes() {
            let (name_off, name_len) = strings.intern(&r.name)?;
            let ing_start = n_refs;
            for id in r.ingredients() {
                push_u32s(&mut ids_sec, &[id.0]);
            }
            n_refs = count_u32(n_refs as usize + r.ingredients().len(), "ingredient ref")?;
            push_u32s(
                &mut recipes_sec,
                &[
                    name_off,
                    name_len,
                    ing_start,
                    n_refs - ing_start,
                    count_u32(r.region.index(), "region")?,
                    count_u32(r.source.index(), "source")?,
                ],
            );
        }

        let mut shards_sec = Vec::with_capacity(N_REGIONS * SHARD_REC);
        let mut col_sec = Vec::new();
        let mut cursor = 0u32;
        for region in Region::ALL {
            let ids = store.region_recipe_ids(region);
            push_u32s(
                &mut shards_sec,
                &[cursor, count_u32(ids.len(), "region shard")?],
            );
            for id in ids {
                push_u32s(&mut col_sec, &[id.0]);
            }
            cursor = count_u32(cursor as usize + ids.len(), "region shard")?;
        }

        let mut meta = Vec::with_capacity(META_BYTES);
        push_u32s(
            &mut meta,
            &[
                count_u32(n_recipes, "recipe")?,
                n_refs,
                count_u32(N_REGIONS, "region")?,
                0,
            ],
        );
        meta.extend_from_slice(&0u64.to_le_bytes());

        let mut w = ArtifactWriter::new(CRDB2_MAGIC, CRDB2_VERSION);
        w.section(K_META, meta);
        w.section(K_STRINGS, strings.into_blob());
        w.section(K_RECIPES, recipes_sec);
        w.section(K_INGREDIENT_IDS, ids_sec);
        w.section(K_REGION_SHARDS, shards_sec);
        w.section(K_REGION_RECIPES, col_sec);
        w.finish()
    }
}

/// A validated zero-copy view over a CRDB2 buffer.
#[derive(Debug, Clone, Copy)]
pub struct BorrowedRecipeDb<'a> {
    strings: &'a str,
    recipes: &'a [u8],
    ingredient_ids: &'a [IngredientId],
    shards: &'a [u8],
    region_recipes: &'a [RecipeId],
    n_recipes: usize,
}

/// Validate a CRDB2 buffer and return its zero-copy view.
///
/// Same open contract as [`culinaria_flavordb::artifact::open`]:
/// 8-byte-aligned buffer, little-endian host, every structural
/// invariant checked here once so the accessors stay panic-free.
pub fn open(buf: &[u8]) -> Result<BorrowedRecipeDb<'_>, ArtifactError> {
    let sections = Sections::parse(buf, &CRDB2_MAGIC, CRDB2_VERSION, N_KINDS)?;
    let meta = sections.bytes(K_META as usize);
    if meta.len() != META_BYTES {
        return Err(ArtifactError::Corrupt(format!(
            "META section is {} bytes, expected {META_BYTES}",
            meta.len()
        )));
    }
    let n_recipes = u32_at(meta, 0) as usize;
    let n_refs = u32_at(meta, 4) as usize;
    let n_regions = u32_at(meta, 8) as usize;
    if n_regions != N_REGIONS {
        return Err(ArtifactError::Corrupt(format!(
            "artifact declares {n_regions} regions, format defines {N_REGIONS}"
        )));
    }
    if u32_at(meta, 12) != 0 || u64_at(meta, 16) != 0 {
        return Err(ArtifactError::Corrupt(
            "META reserved field set".to_string(),
        ));
    }

    let check_len = |kind: u32, per: usize, n: usize, what: &str| -> Result<&[u8], ArtifactError> {
        let bytes = sections.bytes(kind as usize);
        let need = per
            .checked_mul(n)
            .ok_or_else(|| ArtifactError::TooLarge(format!("{what} section size overflows")))?;
        if bytes.len() != need {
            return Err(ArtifactError::Corrupt(format!(
                "{what} section is {} bytes, counts require {need}",
                bytes.len()
            )));
        }
        Ok(bytes)
    };

    let strings = std::str::from_utf8(sections.bytes(K_STRINGS as usize))
        .map_err(|e| ArtifactError::Corrupt(format!("string blob is not UTF-8: {e}")))?;
    let recipes = check_len(K_RECIPES, RECIPE_REC, n_recipes, "RECIPES")?;
    let ids_bytes = check_len(K_INGREDIENT_IDS, 4, n_refs, "INGREDIENT_IDS")?;
    let shards = check_len(K_REGION_SHARDS, SHARD_REC, N_REGIONS, "REGION_SHARDS")?;
    let col_bytes = check_len(K_REGION_RECIPES, 4, n_recipes, "REGION_RECIPES")?;

    let id_words = cast_u32s(ids_bytes)?;
    let ingredient_ids = as_ingredient_ids(id_words);
    let region_recipes = as_recipe_ids(cast_u32s(col_bytes)?);

    // Recipe records: valid name spans, canonical ingredient tiling,
    // non-empty strictly sorted ingredient runs, in-range enums. The
    // records are walked as aligned u32 words (`chunks_exact`) rather
    // than through per-field `u32_at` byte reads — this loop is the
    // bulk of open time on a full-scale store, and the word view costs
    // one bounds check per record instead of six.
    let rec_words = cast_u32s(recipes)?;
    let mut ing_cursor = 0usize;
    let mut boundary_resets = 0usize;
    for (i, rec) in rec_words.chunks_exact(RECIPE_REC / 4).enumerate() {
        str_span(strings, rec[0], rec[1])
            .ok_or_else(|| ArtifactError::Corrupt(format!("recipe {i} name span invalid")))?;
        let ing_start = rec[2] as usize;
        let ing_len = rec[3] as usize;
        let region = rec[4] as usize;
        let source = rec[5] as usize;
        if ing_start != ing_cursor {
            return Err(ArtifactError::Corrupt(format!(
                "recipe {i} ingredient run starts at {ing_start}, canonical is {ing_cursor}"
            )));
        }
        if ing_len == 0 {
            return Err(ArtifactError::Corrupt(format!(
                "recipe {i} has no ingredients"
            )));
        }
        ing_cursor += ing_len;
        if ing_cursor > n_refs {
            return Err(ArtifactError::Corrupt(format!(
                "recipe {i} ingredient run overruns INGREDIENT_IDS"
            )));
        }
        if Region::from_index(region).is_none() {
            return Err(ArtifactError::Corrupt(format!(
                "recipe {i} has region {region} (>= {N_REGIONS})"
            )));
        }
        if Source::from_index(source).is_none() {
            return Err(ArtifactError::Corrupt(format!(
                "recipe {i} has source {source} (>= {})",
                Source::ALL.len()
            )));
        }
        // Run-boundary pairs (last id of one recipe, first of the
        // next) are exempt from the sortedness rule; count the
        // descending ones so the flat scan below can tell legitimate
        // boundary resets apart from disorder inside a run.
        if ing_start > 0
            && id_words.get(ing_start - 1).copied().unwrap_or(0)
                >= id_words.get(ing_start).copied().unwrap_or(u32::MAX)
        {
            boundary_resets += 1;
        }
    }
    if ing_cursor != n_refs {
        return Err(ArtifactError::Corrupt(format!(
            "INGREDIENT_IDS has {n_refs} ids, recipes reference {ing_cursor}"
        )));
    }

    // Strictly sorted ingredient runs, checked as one flat pass: the
    // runs tile INGREDIENT_IDS exactly, so every non-ascending
    // adjacent pair must sit on a run boundary. The per-run
    // `windows(2)` walk this replaces dominated open time on a
    // full-scale store; the flat scan vectorizes. Only on a mismatch
    // (corrupt input) do we re-walk runs to name the offender.
    let non_ascending = id_words
        .windows(2)
        .map(|w| usize::from(w[0] >= w[1]))
        .sum::<usize>();
    if non_ascending != boundary_resets {
        for (i, rec) in rec_words.chunks_exact(RECIPE_REC / 4).enumerate() {
            let run = ingredient_ids
                .get(rec[2] as usize..rec[2] as usize + rec[3] as usize)
                .unwrap_or(&[]);
            if !run.windows(2).all(|w| w[0] < w[1]) {
                return Err(ArtifactError::Corrupt(format!(
                    "recipe {i} ingredient run is not strictly sorted"
                )));
            }
        }
    }

    // Region shards: canonical tiling that exactly partitions the
    // recipe id space, each shard ascending with matching regions.
    let mut cursor = 0usize;
    for (ri, region) in Region::ALL.iter().enumerate() {
        let rec = ri * SHARD_REC;
        let start = u32_at(shards, rec) as usize;
        let len = u32_at(shards, rec + 4) as usize;
        if start != cursor {
            return Err(ArtifactError::Corrupt(format!(
                "region shard {ri} starts at {start}, canonical is {cursor}"
            )));
        }
        cursor += len;
        if cursor > region_recipes.len() {
            return Err(ArtifactError::Corrupt(format!(
                "region shard {ri} overruns REGION_RECIPES"
            )));
        }
        let shard = region_recipes.get(start..start + len).unwrap_or(&[]);
        let mut prev: Option<RecipeId> = None;
        for &id in shard {
            if id.index() >= n_recipes {
                return Err(ArtifactError::Corrupt(format!(
                    "region shard {ri} references recipe {} (>= {n_recipes})",
                    id.0
                )));
            }
            if prev.is_some_and(|p| p >= id) {
                return Err(ArtifactError::Corrupt(format!(
                    "region shard {ri} is not strictly ascending"
                )));
            }
            prev = Some(id);
            let found = rec_words
                .get(id.index() * (RECIPE_REC / 4) + 4)
                .map(|&w| w as usize)
                .unwrap_or(usize::MAX);
            if found != region.index() {
                return Err(ArtifactError::Corrupt(format!(
                    "recipe {} sits in shard {ri} but declares region {found}",
                    id.0
                )));
            }
        }
    }
    if cursor != region_recipes.len() {
        return Err(ArtifactError::Corrupt(format!(
            "REGION_RECIPES holds {} ids, shards reference {cursor}",
            region_recipes.len()
        )));
    }
    // Shards are disjoint (ascending, region-tagged) and their total
    // equals n_recipes, so together they partition the id space.

    Ok(BorrowedRecipeDb {
        strings,
        recipes,
        ingredient_ids,
        shards,
        region_recipes,
        n_recipes,
    })
}

impl<'a> BorrowedRecipeDb<'a> {
    /// Number of recipes.
    pub fn n_recipes(&self) -> usize {
        self.n_recipes
    }

    /// Name of a recipe, if the id is in range.
    pub fn recipe_name(&self, id: RecipeId) -> Option<&'a str> {
        if id.index() >= self.n_recipes {
            return None;
        }
        let rec = id.index() * RECIPE_REC;
        str_span(
            self.strings,
            u32_at(self.recipes, rec),
            u32_at(self.recipes, rec + 4),
        )
    }

    /// Region of a recipe.
    pub fn recipe_region(&self, id: RecipeId) -> Option<Region> {
        if id.index() >= self.n_recipes {
            return None;
        }
        Region::from_index(u32_at(self.recipes, id.index() * RECIPE_REC + 16) as usize)
    }

    /// Source of a recipe.
    pub fn recipe_source(&self, id: RecipeId) -> Option<Source> {
        if id.index() >= self.n_recipes {
            return None;
        }
        Source::from_index(u32_at(self.recipes, id.index() * RECIPE_REC + 20) as usize)
    }

    /// Sorted, deduplicated ingredient ids of a recipe, borrowed from
    /// the buffer.
    pub fn recipe_ingredients(&self, id: RecipeId) -> Option<&'a [IngredientId]> {
        if id.index() >= self.n_recipes {
            return None;
        }
        let rec = id.index() * RECIPE_REC;
        let start = u32_at(self.recipes, rec + 8) as usize;
        let len = u32_at(self.recipes, rec + 12) as usize;
        self.ingredient_ids.get(start..start + len)
    }

    /// Recipe ids of a region, ascending — a borrowed slice of the
    /// region-sharded column (the seek the format exists for).
    pub fn region_recipe_ids(&self, region: Region) -> &'a [RecipeId] {
        let rec = region.index() * SHARD_REC;
        let start = u32_at(self.shards, rec) as usize;
        let len = u32_at(self.shards, rec + 4) as usize;
        self.region_recipes.get(start..start + len).unwrap_or(&[])
    }

    /// Number of recipes in a region.
    pub fn n_region_recipes(&self, region: Region) -> usize {
        self.region_recipe_ids(region).len()
    }

    /// Regions with at least one recipe, in Table-1 order (mirrors
    /// [`RecipeStore::regions`]).
    pub fn regions(&self) -> Vec<Region> {
        Region::ALL
            .into_iter()
            .filter(|&r| !self.region_recipe_ids(r).is_empty())
            .collect()
    }

    /// The borrowed per-region view (mirrors [`RecipeStore::cuisine`]).
    pub fn cuisine(&self, region: Region) -> BorrowedCuisine<'a> {
        BorrowedCuisine {
            db: *self,
            region,
            ids: self.region_recipe_ids(region),
        }
    }

    /// Rebuild an owned [`RecipeStore`] equal to the one the artifact
    /// was built from: replays recipes in id order through
    /// [`RecipeStore::add_recipe`], which reassigns identical dense
    /// ids and rebuilds both indexes.
    pub fn to_recipe_store(&self) -> Result<RecipeStore, RecipeDbError> {
        let mut store = RecipeStore::new();
        store.reserve(self.n_recipes);
        for i in 0..self.n_recipes {
            let id = RecipeId(i as u32);
            let name = self
                .recipe_name(id)
                .ok_or_else(|| RecipeDbError::Snapshot(format!("recipe {i} unreadable")))?;
            let region = self
                .recipe_region(id)
                .ok_or_else(|| RecipeDbError::Snapshot(format!("recipe {i} region unreadable")))?;
            let source = self
                .recipe_source(id)
                .ok_or_else(|| RecipeDbError::Snapshot(format!("recipe {i} source unreadable")))?;
            let ingredients = self
                .recipe_ingredients(id)
                .ok_or_else(|| RecipeDbError::Snapshot(format!("recipe {i} run unreadable")))?;
            store.add_recipe(name, region, source, ingredients.to_vec())?;
        }
        Ok(store)
    }
}

/// A zero-copy cuisine: the borrowed twin of [`crate::Cuisine`], over
/// a region's sharded recipe column.
#[derive(Debug, Clone, Copy)]
pub struct BorrowedCuisine<'a> {
    db: BorrowedRecipeDb<'a>,
    region: Region,
    ids: &'a [RecipeId],
}

impl<'a> BorrowedCuisine<'a> {
    /// The region this cuisine covers.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of recipes.
    pub fn n_recipes(&self) -> usize {
        self.ids.len()
    }

    /// The recipe ids, ascending.
    pub fn recipe_ids(&self) -> &'a [RecipeId] {
        self.ids
    }

    /// Ingredients of the `i`-th recipe of the cuisine (same order as
    /// [`crate::Cuisine::recipes`] on the owned store).
    pub fn ingredients_of(&self, i: usize) -> &'a [IngredientId] {
        self.ids
            .get(i)
            .and_then(|&id| self.db.recipe_ingredients(id))
            .unwrap_or(&[])
    }

    /// The distinct ingredients used across the cuisine, sorted
    /// (identical to [`crate::Cuisine::ingredient_set`]).
    pub fn ingredient_set(&self) -> Vec<IngredientId> {
        let mut all: Vec<IngredientId> = Vec::new();
        for i in 0..self.ids.len() {
            all.extend_from_slice(self.ingredients_of(i));
        }
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Per-ingredient recipe counts (identical to
    /// [`crate::Cuisine::frequencies`]).
    pub fn frequencies(&self) -> HashMap<IngredientId, u64> {
        let mut freq = HashMap::new();
        for i in 0..self.ids.len() {
            for &id in self.ingredients_of(i) {
                *freq.entry(id).or_insert(0) += 1;
            }
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> RecipeStore {
        let mut store = RecipeStore::new();
        let r = |ids: &[u32]| ids.iter().map(|&i| IngredientId(i)).collect::<Vec<_>>();
        store
            .add_recipe("pasta", Region::Italy, Source::Epicurious, r(&[0, 1, 2]))
            .expect("adds");
        store
            .add_recipe("miso soup", Region::Japan, Source::AllRecipes, r(&[3, 4]))
            .expect("adds");
        store
            .add_recipe("pizza", Region::Italy, Source::TarlaDalal, r(&[0, 2, 5]))
            .expect("adds");
        store
            .add_recipe("ramen", Region::Japan, Source::Epicurious, r(&[1, 3, 4]))
            .expect("adds");
        store
    }

    fn build(store: &RecipeStore) -> Vec<u8> {
        RecipeArtifactBuilder::new(store).build().expect("builds")
    }

    #[test]
    fn borrowed_view_matches_owned_store() {
        let store = sample_store();
        let buf = AlignedBytes::from_vec(build(&store));
        let view = open(buf.as_slice()).expect("opens");
        assert_eq!(view.n_recipes(), store.n_recipes());
        for r in store.recipes() {
            assert_eq!(view.recipe_name(r.id), Some(r.name.as_str()));
            assert_eq!(view.recipe_region(r.id), Some(r.region));
            assert_eq!(view.recipe_source(r.id), Some(r.source));
            assert_eq!(view.recipe_ingredients(r.id), Some(r.ingredients()));
        }
        assert_eq!(view.regions(), store.regions());
        for region in Region::ALL {
            assert_eq!(
                view.region_recipe_ids(region),
                store.region_recipe_ids(region),
                "{region:?}"
            );
        }
    }

    #[test]
    fn borrowed_cuisine_matches_owned_cuisine() {
        let store = sample_store();
        let buf = AlignedBytes::from_vec(build(&store));
        let view = open(buf.as_slice()).expect("opens");
        for region in [Region::Italy, Region::Japan] {
            let owned = store.cuisine(region);
            let borrowed = view.cuisine(region);
            assert_eq!(borrowed.n_recipes(), owned.n_recipes());
            assert_eq!(borrowed.ingredient_set(), owned.ingredient_set());
            assert_eq!(borrowed.frequencies(), owned.frequencies());
            for (i, r) in owned.recipes().iter().enumerate() {
                assert_eq!(borrowed.ingredients_of(i), r.ingredients());
            }
        }
        assert_eq!(view.cuisine(Region::Thailand).n_recipes(), 0);
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let store = sample_store();
        let first = build(&store);
        let buf = AlignedBytes::from_vec(first.clone());
        let rebuilt = open(buf.as_slice())
            .expect("opens")
            .to_recipe_store()
            .expect("rebuilds");
        assert_eq!(build(&rebuilt), first);
    }

    #[test]
    fn truncation_sweep_rejects_every_prefix() {
        let full = build(&sample_store());
        for cut in 0..full.len() {
            let prefix = AlignedBytes::from_slice(&full[..cut]);
            assert!(open(prefix.as_slice()).is_err(), "prefix {cut} must fail");
        }
    }

    #[test]
    fn wrong_magic_version_and_misalignment() {
        let full = build(&sample_store());
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        let bad_magic = AlignedBytes::from_vec(bad_magic);
        assert!(matches!(
            open(bad_magic.as_slice()),
            Err(ArtifactError::BadMagic)
        ));
        let mut bad_version = full.clone();
        bad_version[8] = 77;
        let bad_version = AlignedBytes::from_vec(bad_version);
        assert!(matches!(
            open(bad_version.as_slice()),
            Err(ArtifactError::BadVersion {
                found: 77,
                expect: CRDB2_VERSION
            })
        ));
        let mut shifted = vec![0u8; full.len() + 4];
        shifted[4..].copy_from_slice(&full);
        let backing = AlignedBytes::from_vec(shifted);
        assert!(matches!(
            open(&backing.as_slice()[4..]),
            Err(ArtifactError::Misaligned)
        ));
    }
}
