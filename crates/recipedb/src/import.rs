//! The raw-text import pipeline: scraped recipe → stored recipe.
//!
//! This glues the aliasing NLP (`culinaria-text`) to the flavor database
//! (`culinaria-flavordb`): each ingredient phrase is resolved to
//! canonical names, canonical names are looked up in the flavor
//! database (synonyms included), and resolution statistics are kept so
//! curators can see what fell through — the paper explicitly labels
//! partial matches and unrecognized ingredients for manual curation.

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_text::alias::AliasResolver;

use crate::error::Result;
use crate::recipe::{RecipeId, Source};
use crate::region::Region;
use crate::store::RecipeStore;

/// A raw scraped recipe before aliasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecipe {
    /// Title as scraped.
    pub name: String,
    /// Region annotation.
    pub region: Region,
    /// Source site.
    pub source: Source,
    /// One free-text line per ingredient
    /// ("2 jalapeno peppers, roasted and slit").
    pub ingredient_lines: Vec<String>,
}

/// Statistics of one import run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Raw recipes offered to the importer.
    pub offered: usize,
    /// Recipes stored (at least one ingredient resolved).
    pub stored: usize,
    /// Recipes dropped because nothing resolved (the paper only keeps
    /// recipes with usable ingredient lists).
    pub dropped: usize,
    /// Ingredient lines that resolved to at least one ingredient.
    pub lines_resolved: usize,
    /// Ingredient lines that resolved to nothing.
    pub lines_unresolved: usize,
    /// Distinct unresolved tokens, collected for curation.
    pub unresolved_tokens: Vec<String>,
}

/// The importer: owns an [`AliasResolver`] primed from a [`FlavorDb`]'s
/// canonical names and synonyms.
#[derive(Debug, Clone)]
pub struct Importer {
    resolver: AliasResolver,
}

impl Importer {
    /// Build an importer whose lexicon is the flavor database's live
    /// ingredient names plus its synonym table.
    pub fn from_flavor_db(db: &FlavorDb) -> Importer {
        let mut resolver = AliasResolver::new();
        for ing in db.ingredients() {
            resolver.add_canonical(&ing.name);
        }
        for (syn, id) in db.synonyms() {
            if let Ok(target) = db.ingredient(id) {
                resolver.add_synonym(syn, &target.name);
            }
        }
        Importer { resolver }
    }

    /// Access the underlying resolver (e.g. to register ad-hoc aliases).
    pub fn resolver_mut(&mut self) -> &mut AliasResolver {
        &mut self.resolver
    }

    /// Resolve one ingredient line to flavor-database ids.
    pub fn resolve_line(&self, db: &FlavorDb, line: &str) -> (Vec<IngredientId>, Vec<String>) {
        let resolution = self.resolver.resolve(line);
        let mut ids = Vec::with_capacity(resolution.matches.len());
        for m in &resolution.matches {
            if let Some(id) = db.ingredient_by_name(&m.canonical) {
                ids.push(id);
            }
        }
        (ids, resolution.unresolved)
    }

    /// Resolve a line together with its parsed quantity, normalized to
    /// grams — groundwork for quantity-weighted pairing (paper §V).
    ///
    /// Normalization heuristic: volumes use the water density (1 ml ≈
    /// 1 g, the convention nutrition databases fall back to), counts
    /// assume a 50 g median item. Lines with no parsable amount get
    /// weight 1 g so they still participate. When one line names
    /// several ingredients the weight is split evenly among them.
    pub fn resolve_line_weighted(
        &self,
        db: &FlavorDb,
        line: &str,
    ) -> (Vec<(IngredientId, f64)>, Vec<String>) {
        use culinaria_text::quantity::{parse_quantity, Unit};
        let (grams, rest) = match parse_quantity(line) {
            Some(q) => {
                let grams = match q.unit {
                    Unit::Gram => q.value,
                    Unit::Millilitre => q.value, // water-density convention
                    Unit::Count => q.value * 50.0,
                };
                (grams.max(1e-6), q.rest)
            }
            None => (1.0, line.to_owned()),
        };
        let (ids, unresolved) = self.resolve_line(db, &rest);
        let share = if ids.is_empty() {
            0.0
        } else {
            grams / ids.len() as f64
        };
        (ids.into_iter().map(|id| (id, share)).collect(), unresolved)
    }

    /// Import a batch of raw recipes into `store`, resolving through
    /// `db`. Recipes where no line resolves are dropped and counted.
    pub fn import(
        &self,
        db: &FlavorDb,
        store: &mut RecipeStore,
        raw: &[RawRecipe],
    ) -> Result<ImportStats> {
        let mut stats = ImportStats {
            offered: raw.len(),
            ..ImportStats::default()
        };
        let mut seen_unresolved = std::collections::HashSet::new();
        for r in raw {
            let mut ingredients: Vec<IngredientId> = Vec::new();
            for line in &r.ingredient_lines {
                let (ids, unresolved) = self.resolve_line(db, line);
                if ids.is_empty() {
                    stats.lines_unresolved += 1;
                } else {
                    stats.lines_resolved += 1;
                }
                ingredients.extend(ids);
                for tok in unresolved {
                    if seen_unresolved.insert(tok.clone()) {
                        stats.unresolved_tokens.push(tok);
                    }
                }
            }
            if ingredients.is_empty() {
                stats.dropped += 1;
                continue;
            }
            store.add_recipe(&r.name, r.region, r.source, ingredients)?;
            stats.stored += 1;
        }
        stats.unresolved_tokens.sort_unstable();
        Ok(stats)
    }
}

/// Convenience: one stored recipe from raw lines, or `None` if nothing
/// resolved.
pub fn import_one(
    importer: &Importer,
    db: &FlavorDb,
    store: &mut RecipeStore,
    raw: &RawRecipe,
) -> Result<Option<RecipeId>> {
    let before = store.n_recipes();
    importer.import(db, store, std::slice::from_ref(raw))?;
    Ok((store.n_recipes() > before).then_some(RecipeId(before as u32)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::curated::curated_db;

    fn raw(name: &str, lines: &[&str]) -> RawRecipe {
        RawRecipe {
            name: name.into(),
            region: Region::Italy,
            source: Source::Epicurious,
            ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn end_to_end_import() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[raw(
                    "simple marinara",
                    &[
                        "3 ripe tomatoes, diced",
                        "2 cloves garlic, minced",
                        "1 tbsp olive oil",
                        "fresh basil leaves, torn",
                    ],
                )],
            )
            .unwrap();
        assert_eq!(stats.stored, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.lines_resolved, 4);
        let r = store.recipe(RecipeId(0)).unwrap();
        assert_eq!(r.size(), 4);
        for name in ["tomato", "garlic", "olive oil", "basil"] {
            let id = db.ingredient_by_name(name).unwrap();
            assert!(r.contains(id), "{name} missing from imported recipe");
        }
    }

    #[test]
    fn synonyms_resolve_through_db() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        importer
            .import(&db, &mut store, &[raw("toast", &["1 bun", "250g curd"])])
            .unwrap();
        let r = store.recipe(RecipeId(0)).unwrap();
        assert!(r.contains(db.ingredient_by_name("bread").unwrap()));
        assert!(r.contains(db.ingredient_by_name("yogurt").unwrap()));
    }

    #[test]
    fn unresolvable_recipe_dropped_and_tokens_collected() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[raw("mystery", &["2 cups quixotic zanthum"])],
            )
            .unwrap();
        assert_eq!(stats.stored, 0);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.lines_unresolved, 1);
        assert!(stats.unresolved_tokens.contains(&"quixotic".to_string()));
        assert!(stats.unresolved_tokens.contains(&"zanthum".to_string()));
        assert_eq!(store.n_recipes(), 0);
    }

    #[test]
    fn unresolved_tokens_deduplicated() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[
                    raw("a", &["zanthum paste", "tomato"]),
                    raw("b", &["zanthum powder", "garlic"]),
                ],
            )
            .unwrap();
        let count = stats
            .unresolved_tokens
            .iter()
            .filter(|t| *t == "zanthum")
            .count();
        assert_eq!(count, 1);
        assert_eq!(stats.stored, 2);
    }

    #[test]
    fn import_one_returns_id() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let id = import_one(&importer, &db, &mut store, &raw("x", &["tomato"]))
            .unwrap()
            .unwrap();
        assert_eq!(id, RecipeId(0));
        let none = import_one(&importer, &db, &mut store, &raw("y", &["xyzzy"])).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn weighted_resolution_scales_with_amount() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let (small, _) = importer.resolve_line_weighted(&db, "100g butter");
        let (big, _) = importer.resolve_line_weighted(&db, "400g butter");
        assert_eq!(small.len(), 1);
        assert_eq!(big.len(), 1);
        assert_eq!(small[0].0, big[0].0);
        assert!((big[0].1 / small[0].1 - 4.0).abs() < 1e-9);
        // Volume uses the 1 ml ≈ 1 g convention.
        let (cup, _) = importer.resolve_line_weighted(&db, "1 cup milk");
        assert!((cup[0].1 - 240.0).abs() < 1e-9);
        // Counts assume 50 g items.
        let (eggs, _) = importer.resolve_line_weighted(&db, "2 eggs");
        assert!((eggs[0].1 - 100.0).abs() < 1e-9);
        // No amount → weight 1.
        let (pinch, _) = importer.resolve_line_weighted(&db, "basil to garnish");
        assert!((pinch[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_resolution_splits_across_matches() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let (both, _) = importer.resolve_line_weighted(&db, "200g tomato and garlic");
        assert_eq!(both.len(), 2);
        for (_, w) in &both {
            assert!((w - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spelling_variants_fuzzy_resolve() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        importer
            .import(&db, &mut store, &[raw("drink", &["a shot of whisky"])])
            .unwrap();
        let r = store.recipe(RecipeId(0)).unwrap();
        assert!(r.contains(db.ingredient_by_name("whiskey").unwrap()));
    }
}
