//! The raw-text import pipeline: scraped recipe → stored recipe.
//!
//! This glues the aliasing NLP (`culinaria-text`) to the flavor database
//! (`culinaria-flavordb`): each ingredient phrase is resolved to
//! canonical names, canonical names are looked up in the flavor
//! database (synonyms included), and resolution statistics are kept so
//! curators can see what fell through — the paper explicitly labels
//! partial matches and unrecognized ingredients for manual curation.
//!
//! # Batch import and determinism
//!
//! [`Importer::import_batch`] fans recipe resolution — the CPU-bound
//! part — over the shared worker pool (`culinaria_stats::pool`), one
//! task per recipe, with a [`ResolveScratch`] per worker so the hot
//! path reuses buffers and its memo cache without locking. Mutation of
//! the store and the statistics happens in a **serial task-order
//! merge** over the pool's in-order results, so recipe ids, stored
//! recipes, and [`ImportStats`] (including the frequency-ranked
//! unresolved-token list) are bit-identical for every thread count.
//! [`Importer::import`] is the single-threaded special case.
//!
//! The fan-out is **adaptive**: when the requested thread count
//! resolves ([`pool::effective_threads`]) to a single worker, or the
//! batch is too small to amortize pool spin-up, resolution runs
//! inline on the calling thread — same outcomes (including panic
//! isolation and lowest-index-wins), none of the pool overhead. The
//! chosen path is recorded in [`ImportStats::mode`]; because it is
//! schedule metadata (the *products* are identical either way), `mode`
//! is excluded from `ImportStats` equality.
//!
//! # Failure collection
//!
//! A bad recipe never aborts the batch: per-recipe problems (no
//! ingredient lines, nothing resolved, unresolved fraction above the
//! importer's threshold, a store rejection, or an injected worker
//! fault) are collected into [`ImportStats::failures`] with the recipe
//! index and name, and the recipe is counted as dropped. Only a worker
//! *panic* — isolated by the pool — fails the whole batch, as
//! [`RecipeDbError::Worker`] with the lowest failing index.

// User-reachable serialization/ingestion surface: panicking on bad
// data is forbidden here — return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_obs::Metrics;
use culinaria_stats::{fault, pool};
use culinaria_text::alias::{AliasResolver, ResolveScratch};

use crate::error::{RecipeDbError, Result};
use crate::recipe::{RecipeId, Source};
use crate::region::Region;
use crate::store::RecipeStore;

/// A raw scraped recipe before aliasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecipe {
    /// Title as scraped.
    pub name: String,
    /// Region annotation.
    pub region: Region,
    /// Source site.
    pub source: Source,
    /// One free-text line per ingredient
    /// ("2 jalapeno peppers, roasted and slit").
    pub ingredient_lines: Vec<String>,
}

/// How a batch import's resolve stage actually ran
/// (see [`ImportStats::mode`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ImportMode {
    /// Resolution ran inline on the calling thread (single effective
    /// worker, or a batch below the pool-granularity threshold).
    #[default]
    Serial,
    /// Resolution fanned out across the shared worker pool.
    Pooled,
}

impl ImportMode {
    /// The counter bumped by the observed import for this mode.
    fn metric_label(self) -> &'static str {
        match self {
            ImportMode::Serial => "import.mode.serial",
            ImportMode::Pooled => "import.mode.pooled",
        }
    }
}

impl fmt::Display for ImportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportMode::Serial => write!(f, "serial"),
            ImportMode::Pooled => write!(f, "pooled"),
        }
    }
}

/// Smallest batch worth fanning out: below this the pool's thread
/// spin-up and claim-cursor traffic cost more than the resolution work
/// (the `bench_alias` import microbench is the evidence).
const SERIAL_BATCH_MIN: usize = 64;

/// Render a panic payload as text, mirroring the worker pool's
/// rendering so the serial path reports panics identically.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        }
    }
}

/// Statistics of one import run.
#[derive(Debug, Clone, Default, Eq)]
pub struct ImportStats {
    /// Raw recipes offered to the importer.
    pub offered: usize,
    /// Recipes stored (at least one ingredient resolved).
    pub stored: usize,
    /// Recipes dropped because nothing resolved (the paper only keeps
    /// recipes with usable ingredient lists).
    pub dropped: usize,
    /// Ingredient lines that resolved to at least one ingredient.
    pub lines_resolved: usize,
    /// Ingredient lines that resolved to nothing.
    pub lines_unresolved: usize,
    /// Unresolved tokens with their occurrence counts, most frequent
    /// first (ties alphabetical) — the curation worklist, pre-ranked so
    /// the highest-impact gaps come first.
    pub unresolved_tokens: Vec<(String, usize)>,
    /// Per-recipe failures, in batch order. Every dropped recipe has
    /// exactly one entry here explaining why; the batch itself still
    /// succeeds. Deterministic: produced in the serial merge, so
    /// identical for every thread count.
    pub failures: Vec<RecipeFailure>,
    /// How the resolve stage ran ([`ImportMode::Serial`] inline or
    /// [`ImportMode::Pooled`] across workers). Schedule metadata, not a
    /// product of the import — excluded from equality, like the
    /// per-worker memo counters before it.
    pub mode: ImportMode,
}

// `mode` records *how* the batch ran, not *what* it produced; two runs
// of the same batch at different thread counts are equal. Every other
// field participates.
impl PartialEq for ImportStats {
    fn eq(&self, other: &ImportStats) -> bool {
        let ImportStats {
            offered,
            stored,
            dropped,
            lines_resolved,
            lines_unresolved,
            unresolved_tokens,
            failures,
            mode: _,
        } = self;
        *offered == other.offered
            && *stored == other.stored
            && *dropped == other.dropped
            && *lines_resolved == other.lines_resolved
            && *lines_unresolved == other.lines_unresolved
            && *unresolved_tokens == other.unresolved_tokens
            && *failures == other.failures
    }
}

/// Why one recipe of a batch was not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportFailureReason {
    /// The raw recipe had no ingredient lines at all.
    NoIngredientLines,
    /// Lines were present but none resolved to a known ingredient.
    NothingResolved,
    /// The unresolved fraction exceeded
    /// [`Importer::unresolved_threshold`].
    UnresolvedAboveThreshold {
        /// Lines that resolved to nothing.
        unresolved: usize,
        /// Total ingredient lines.
        total: usize,
    },
    /// The store rejected the resolved recipe.
    Store(String),
    /// A worker-side fault (error-shaped, e.g. injected by the
    /// fault-injection harness) while resolving this recipe.
    Fault(String),
}

impl fmt::Display for ImportFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportFailureReason::NoIngredientLines => write!(f, "no ingredient lines"),
            ImportFailureReason::NothingResolved => write!(f, "no ingredient line resolved"),
            ImportFailureReason::UnresolvedAboveThreshold { unresolved, total } => write!(
                f,
                "{unresolved} of {total} ingredient lines unresolved, above threshold"
            ),
            ImportFailureReason::Store(msg) => write!(f, "store rejected recipe: {msg}"),
            ImportFailureReason::Fault(msg) => write!(f, "worker fault: {msg}"),
        }
    }
}

/// One recipe that could not be stored, with enough context to report
/// it to a curator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecipeFailure {
    /// Position in the raw batch.
    pub index: usize,
    /// Recipe title as scraped.
    pub name: String,
    /// What went wrong.
    pub reason: ImportFailureReason,
}

impl fmt::Display for RecipeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recipe {} '{}': {}", self.index, self.name, self.reason)
    }
}

/// Per-recipe resolution result, produced by workers and merged
/// serially in task order. The memo deltas travel alongside so the
/// observed import can total cache efficacy without the workers ever
/// touching a metrics registry.
#[derive(Debug, Clone)]
struct ResolvedRecipe {
    ingredients: Vec<IngredientId>,
    lines_resolved: usize,
    lines_unresolved: usize,
    unresolved: Vec<String>,
    memo_hits: u64,
    memo_misses: u64,
}

/// The importer: owns an [`AliasResolver`] primed from a [`FlavorDb`]'s
/// canonical names and synonyms.
#[derive(Debug, Clone)]
pub struct Importer {
    resolver: AliasResolver,
    unresolved_threshold: f64,
}

impl Importer {
    /// Build an importer whose lexicon is the flavor database's live
    /// ingredient names plus its synonym table.
    pub fn from_flavor_db(db: &FlavorDb) -> Importer {
        let mut resolver = AliasResolver::new();
        for ing in db.ingredients() {
            resolver.add_canonical(&ing.name);
        }
        for (syn, id) in db.synonyms() {
            if let Ok(target) = db.ingredient(id) {
                resolver.add_synonym(syn, &target.name);
            }
        }
        Importer {
            resolver,
            unresolved_threshold: 1.0,
        }
    }

    /// Set the maximum tolerated unresolved-line fraction. A recipe
    /// whose `unresolved / total` fraction is **strictly above** this is
    /// dropped with [`ImportFailureReason::UnresolvedAboveThreshold`].
    /// The default `1.0` never triggers, so only fully-unresolvable
    /// recipes are dropped (the paper's baseline behavior).
    pub fn with_unresolved_threshold(mut self, threshold: f64) -> Importer {
        self.unresolved_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// The current unresolved-line tolerance
    /// (see [`Importer::with_unresolved_threshold`]).
    pub fn unresolved_threshold(&self) -> f64 {
        self.unresolved_threshold
    }

    /// Access the underlying resolver (e.g. to register ad-hoc aliases).
    pub fn resolver_mut(&mut self) -> &mut AliasResolver {
        &mut self.resolver
    }

    /// Resolve one ingredient line to flavor-database ids.
    pub fn resolve_line(&self, db: &FlavorDb, line: &str) -> (Vec<IngredientId>, Vec<String>) {
        let mut scratch = ResolveScratch::with_memo_capacity(0);
        self.resolve_line_with(db, line, &mut scratch)
    }

    /// [`Importer::resolve_line`] with caller-owned working state — the
    /// batch-import hot path. One scratch per worker keeps resolution
    /// allocation-free and memoizes repeated lines.
    pub fn resolve_line_with(
        &self,
        db: &FlavorDb,
        line: &str,
        scratch: &mut ResolveScratch,
    ) -> (Vec<IngredientId>, Vec<String>) {
        let resolution = self.resolver.resolve_with(line, scratch);
        let mut ids = Vec::with_capacity(resolution.matches.len());
        for m in &resolution.matches {
            if let Some(id) = db.ingredient_by_name(&m.canonical) {
                ids.push(id);
            }
        }
        (ids, resolution.unresolved)
    }

    /// Resolve a line together with its parsed quantity, normalized to
    /// grams — groundwork for quantity-weighted pairing (paper §V).
    ///
    /// Normalization heuristic: volumes use the water density (1 ml ≈
    /// 1 g, the convention nutrition databases fall back to), counts
    /// assume a 50 g median item. Lines with no parsable amount get
    /// weight 1 g so they still participate. When one line names
    /// several ingredients the weight is split evenly among them.
    pub fn resolve_line_weighted(
        &self,
        db: &FlavorDb,
        line: &str,
    ) -> (Vec<(IngredientId, f64)>, Vec<String>) {
        use culinaria_text::quantity::{parse_quantity, Unit};
        let (grams, rest) = match parse_quantity(line) {
            Some(q) => {
                let grams = match q.unit {
                    Unit::Gram => q.value,
                    Unit::Millilitre => q.value, // water-density convention
                    Unit::Count => q.value * 50.0,
                };
                (grams.max(1e-6), q.rest)
            }
            None => (1.0, line.to_owned()),
        };
        let (ids, unresolved) = self.resolve_line(db, &rest);
        let share = if ids.is_empty() {
            0.0
        } else {
            grams / ids.len() as f64
        };
        (ids.into_iter().map(|id| (id, share)).collect(), unresolved)
    }

    /// Resolve all lines of one raw recipe (no store mutation — safe to
    /// run on any worker).
    fn resolve_recipe(
        &self,
        db: &FlavorDb,
        raw: &RawRecipe,
        scratch: &mut ResolveScratch,
    ) -> ResolvedRecipe {
        let (hits_before, misses_before) = scratch.memo_stats();
        let mut out = ResolvedRecipe {
            ingredients: Vec::new(),
            lines_resolved: 0,
            lines_unresolved: 0,
            unresolved: Vec::new(),
            memo_hits: 0,
            memo_misses: 0,
        };
        for line in &raw.ingredient_lines {
            let (ids, unresolved) = self.resolve_line_with(db, line, scratch);
            if ids.is_empty() {
                out.lines_unresolved += 1;
            } else {
                out.lines_resolved += 1;
            }
            out.ingredients.extend(ids);
            out.unresolved.extend(unresolved);
        }
        let (hits_after, misses_after) = scratch.memo_stats();
        out.memo_hits = hits_after - hits_before;
        out.memo_misses = misses_after - misses_before;
        out
    }

    /// Import a batch of raw recipes into `store`, resolving through
    /// `db`. Recipes where no line resolves are dropped and counted.
    ///
    /// Equivalent to [`Importer::import_batch`] with one thread.
    pub fn import(
        &self,
        db: &FlavorDb,
        store: &mut RecipeStore,
        raw: &[RawRecipe],
    ) -> Result<ImportStats> {
        self.import_batch(db, store, raw, 1)
    }

    /// Import a batch of raw recipes, resolving lines on `n_threads`
    /// workers (`0` = use the machine).
    ///
    /// The fan-out is adaptive: when [`pool::effective_threads`]
    /// resolves to one worker, or the batch is below the granularity
    /// threshold, resolution runs inline instead of through the pool
    /// ([`ImportStats::mode`] records which path ran).
    ///
    /// Determinism contract: per-recipe resolution is a pure function
    /// of the recipe, the pool returns results in task order, and all
    /// store/statistics mutation happens in a serial in-order merge —
    /// so the stored recipes, their ids, and the returned
    /// [`ImportStats`] are bit-identical for every thread count (and
    /// for both modes).
    pub fn import_batch(
        &self,
        db: &FlavorDb,
        store: &mut RecipeStore,
        raw: &[RawRecipe],
        n_threads: usize,
    ) -> Result<ImportStats> {
        self.import_batch_observed(db, store, raw, n_threads, &Metrics::disabled())
    }

    /// [`Importer::import_batch`] instrumented through `metrics`:
    ///
    /// * spans `import.resolve` (the parallel resolve fan-out) and
    ///   `import.merge` (the serial task-order merge);
    /// * counters `import.recipes.{offered,stored,dropped}` and
    ///   `import.lines.{resolved,unresolved}` mirroring [`ImportStats`];
    /// * counters `import.memo.{hits,misses}` totalling the per-worker
    ///   memo caches (cache efficacy — these vary with scheduling at
    ///   more than one thread, which is why they live here and not in
    ///   [`ImportStats`]);
    /// * counter `import.mode.{serial,pooled}` for the adaptive
    ///   fan-out decision;
    /// * the shared `pool.*` instruments when the pooled path runs
    ///   (the inline serial path never touches the pool).
    ///
    /// Stored recipes and the returned stats are bit-identical to the
    /// unobserved path — instrumentation records, it never steers.
    ///
    /// # Errors
    ///
    /// Per-recipe problems are collected into
    /// [`ImportStats::failures`], not returned; the only hard error is
    /// [`RecipeDbError::Worker`] when a resolution worker panics (the
    /// pool isolates the panic and reports the lowest failing index).
    pub fn import_batch_observed(
        &self,
        db: &FlavorDb,
        store: &mut RecipeStore,
        raw: &[RawRecipe],
        n_threads: usize,
        metrics: &Metrics,
    ) -> Result<ImportStats> {
        // Error-shaped worker faults become per-recipe outcomes (the
        // batch carries on); only a panic fails the run.
        type Outcome = std::result::Result<ResolvedRecipe, String>;
        // Fan out only when more than one worker would actually run
        // *and* the batch is big enough to amortize pool spin-up;
        // otherwise resolve inline (the BENCH_alias regression was
        // exactly this: a pool of one worker timing slower than the
        // plain loop).
        let workers = pool::effective_threads(n_threads).min(raw.len().max(1));
        let mode = if workers > 1 && raw.len() >= SERIAL_BATCH_MIN {
            ImportMode::Pooled
        } else {
            ImportMode::Serial
        };
        let resolve_span = metrics.span("import.resolve");
        let guard = resolve_span.enter();
        let resolved: Vec<Outcome> = match mode {
            ImportMode::Pooled => pool::try_run_observed(
                n_threads,
                raw.len(),
                &pool::PoolObs::new(metrics),
                ResolveScratch::new,
                |scratch, i| -> std::result::Result<Outcome, std::convert::Infallible> {
                    Ok(match fault::probe("import.recipe", i) {
                        Ok(()) => Ok(self.resolve_recipe(db, &raw[i], scratch)),
                        Err(e) => Err(e.to_string()),
                    })
                },
            )
            .map_err(|f| {
                metrics.counter("error.import.recipe").incr();
                RecipeDbError::Worker {
                    index: f.index,
                    message: match f.kind {
                        pool::FailureKind::Failed(e) => match e {},
                        pool::FailureKind::Panicked(msg) => msg,
                    },
                }
            })?,
            ImportMode::Serial => {
                // Same contract as the pool, no pool: in-order, panics
                // isolated per recipe, and the first panic is by
                // construction the lowest failing index.
                let mut scratch = ResolveScratch::new();
                let mut out = Vec::with_capacity(raw.len());
                for (i, raw_recipe) in raw.iter().enumerate() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        match fault::probe("import.recipe", i) {
                            Ok(()) => Ok(self.resolve_recipe(db, raw_recipe, &mut scratch)),
                            Err(e) => Err(e.to_string()),
                        }
                    }));
                    match outcome {
                        Ok(o) => out.push(o),
                        Err(payload) => {
                            metrics.counter("error.import.recipe").incr();
                            return Err(RecipeDbError::Worker {
                                index: i,
                                message: panic_text(payload),
                            });
                        }
                    }
                }
                out
            }
        };
        guard.stop();
        metrics.counter(mode.metric_label()).incr();

        let merge_span = metrics.span("import.merge");
        let merge_guard = merge_span.enter();
        let mut memo_hits = 0u64;
        let mut memo_misses = 0u64;
        let mut stats = ImportStats {
            offered: raw.len(),
            mode,
            ..ImportStats::default()
        };
        let mut token_counts: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        store.reserve(
            resolved
                .iter()
                .filter(|r| r.as_ref().is_ok_and(|r| !r.ingredients.is_empty()))
                .count(),
        );
        let fail = |stats: &mut ImportStats, index: usize, reason: ImportFailureReason| {
            stats.dropped += 1;
            stats.failures.push(RecipeFailure {
                index,
                name: raw[index].name.clone(),
                reason,
            });
        };
        for (index, (outcome, raw_recipe)) in resolved.into_iter().zip(raw).enumerate() {
            let r = match outcome {
                Ok(r) => r,
                Err(msg) => {
                    fail(&mut stats, index, ImportFailureReason::Fault(msg));
                    continue;
                }
            };
            stats.lines_resolved += r.lines_resolved;
            stats.lines_unresolved += r.lines_unresolved;
            memo_hits += r.memo_hits;
            memo_misses += r.memo_misses;
            for tok in r.unresolved {
                *token_counts.entry(tok).or_insert(0) += 1;
            }
            if raw_recipe.ingredient_lines.is_empty() {
                fail(&mut stats, index, ImportFailureReason::NoIngredientLines);
                continue;
            }
            if r.ingredients.is_empty() {
                fail(&mut stats, index, ImportFailureReason::NothingResolved);
                continue;
            }
            let total = raw_recipe.ingredient_lines.len();
            if r.lines_unresolved as f64 / total as f64 > self.unresolved_threshold {
                fail(
                    &mut stats,
                    index,
                    ImportFailureReason::UnresolvedAboveThreshold {
                        unresolved: r.lines_unresolved,
                        total,
                    },
                );
                continue;
            }
            match store.add_recipe(
                &raw_recipe.name,
                raw_recipe.region,
                raw_recipe.source,
                r.ingredients,
            ) {
                Ok(_) => stats.stored += 1,
                Err(e) => fail(&mut stats, index, ImportFailureReason::Store(e.to_string())),
            }
        }
        stats.unresolved_tokens = token_counts.into_iter().collect();
        stats
            .unresolved_tokens
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        merge_guard.stop();

        if metrics.is_enabled() {
            metrics
                .counter("import.recipes.offered")
                .add(stats.offered as u64);
            metrics
                .counter("import.recipes.stored")
                .add(stats.stored as u64);
            metrics
                .counter("import.recipes.dropped")
                .add(stats.dropped as u64);
            metrics
                .counter("import.lines.resolved")
                .add(stats.lines_resolved as u64);
            metrics
                .counter("import.lines.unresolved")
                .add(stats.lines_unresolved as u64);
            metrics.counter("import.memo.hits").add(memo_hits);
            metrics.counter("import.memo.misses").add(memo_misses);
            metrics
                .counter("import.recipes.failures")
                .add(stats.failures.len() as u64);
        }
        Ok(stats)
    }
}

/// Convenience: one stored recipe from raw lines, or `None` if nothing
/// resolved.
pub fn import_one(
    importer: &Importer,
    db: &FlavorDb,
    store: &mut RecipeStore,
    raw: &RawRecipe,
) -> Result<Option<RecipeId>> {
    let before = store.n_recipes();
    importer.import(db, store, std::slice::from_ref(raw))?;
    Ok((store.n_recipes() > before).then_some(RecipeId(before as u32)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::curated::curated_db;

    fn raw(name: &str, lines: &[&str]) -> RawRecipe {
        RawRecipe {
            name: name.into(),
            region: Region::Italy,
            source: Source::Epicurious,
            ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn end_to_end_import() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[raw(
                    "simple marinara",
                    &[
                        "3 ripe tomatoes, diced",
                        "2 cloves garlic, minced",
                        "1 tbsp olive oil",
                        "fresh basil leaves, torn",
                    ],
                )],
            )
            .unwrap();
        assert_eq!(stats.stored, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.lines_resolved, 4);
        let r = store.recipe(RecipeId(0)).unwrap();
        assert_eq!(r.size(), 4);
        for name in ["tomato", "garlic", "olive oil", "basil"] {
            let id = db.ingredient_by_name(name).unwrap();
            assert!(r.contains(id), "{name} missing from imported recipe");
        }
    }

    #[test]
    fn synonyms_resolve_through_db() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        importer
            .import(&db, &mut store, &[raw("toast", &["1 bun", "250g curd"])])
            .unwrap();
        let r = store.recipe(RecipeId(0)).unwrap();
        assert!(r.contains(db.ingredient_by_name("bread").unwrap()));
        assert!(r.contains(db.ingredient_by_name("yogurt").unwrap()));
    }

    #[test]
    fn unresolvable_recipe_dropped_and_tokens_collected() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[raw("mystery", &["2 cups quixotic zanthum"])],
            )
            .unwrap();
        assert_eq!(stats.stored, 0);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.lines_unresolved, 1);
        assert!(stats
            .unresolved_tokens
            .iter()
            .any(|(t, c)| t == "quixotic" && *c == 1));
        assert!(stats
            .unresolved_tokens
            .iter()
            .any(|(t, c)| t == "zanthum" && *c == 1));
        assert_eq!(store.n_recipes(), 0);
    }

    #[test]
    fn unresolved_tokens_frequency_ranked() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[
                    raw("a", &["zanthum paste", "tomato"]),
                    raw("b", &["zanthum powder", "garlic"]),
                ],
            )
            .unwrap();
        // "zanthum" occurred twice, collapsed into one ranked entry.
        let zanthum: Vec<_> = stats
            .unresolved_tokens
            .iter()
            .filter(|(t, _)| t == "zanthum")
            .collect();
        assert_eq!(zanthum.len(), 1);
        assert_eq!(*zanthum[0], ("zanthum".to_string(), 2));
        // Most frequent first; within equal counts, alphabetical.
        let counts: Vec<usize> = stats.unresolved_tokens.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(stats.unresolved_tokens[0].0, "zanthum");
        assert_eq!(stats.stored, 2);
    }

    #[test]
    fn import_batch_matches_serial_across_thread_counts() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let raws: Vec<RawRecipe> = (0..24)
            .map(|i| {
                raw(
                    &format!("recipe {i}"),
                    &[
                        "3 ripe tomatoes, diced",
                        "2 cloves garlic",
                        "1 tbsp olive oil",
                        "zanthum gum",
                        "a shot of whisky",
                    ][..(i % 5) + 1],
                )
            })
            .collect();
        let mut serial_store = RecipeStore::new();
        let serial_stats = importer.import(&db, &mut serial_store, &raws).unwrap();
        for threads in [1, 2, 8] {
            let mut store = RecipeStore::new();
            let stats = importer
                .import_batch(&db, &mut store, &raws, threads)
                .unwrap();
            assert_eq!(stats, serial_stats, "stats diverged at {threads} threads");
            assert_eq!(store.n_recipes(), serial_store.n_recipes());
            for (a, b) in store.recipes().zip(serial_store.recipes()) {
                assert_eq!(a, b, "recipe diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn observed_import_matches_and_records() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let raws = vec![
            raw("a", &["3 ripe tomatoes", "1 tbsp olive oil"]),
            raw("b", &["3 ripe tomatoes", "zanthum gum"]),
            raw("c", &["nothing known here"]),
        ];
        let mut plain_store = RecipeStore::new();
        let plain = importer
            .import_batch(&db, &mut plain_store, &raws, 1)
            .unwrap();

        let metrics = Metrics::enabled();
        let mut store = RecipeStore::new();
        let stats = importer
            .import_batch_observed(&db, &mut store, &raws, 1, &metrics)
            .unwrap();
        assert_eq!(stats, plain);
        assert_eq!(store.n_recipes(), plain_store.n_recipes());

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("import.recipes.offered"), Some(3));
        assert_eq!(
            snap.counter("import.recipes.stored"),
            Some(stats.stored as u64)
        );
        assert_eq!(
            snap.counter("import.recipes.dropped"),
            Some(stats.dropped as u64)
        );
        assert_eq!(
            snap.counter("import.lines.resolved"),
            Some(stats.lines_resolved as u64)
        );
        assert_eq!(
            snap.counter("import.lines.unresolved"),
            Some(stats.lines_unresolved as u64)
        );
        // One worker, so every line is a memo hit or a miss; the
        // repeated tomato line is the single hit.
        let hits = snap.counter("import.memo.hits").unwrap();
        let misses = snap.counter("import.memo.misses").unwrap();
        assert_eq!(hits + misses, 5);
        assert_eq!(hits, 1);
        // A 3-recipe batch resolves inline: the mode is recorded and
        // the pool is never spun up.
        assert_eq!(stats.mode, ImportMode::Serial);
        assert_eq!(snap.counter("import.mode.serial"), Some(1));
        assert_eq!(snap.counter("pool.runs"), None);
        assert_eq!(snap.span("import.resolve").unwrap().calls, 1);
        assert_eq!(snap.span("import.merge").unwrap().calls, 1);
    }

    #[test]
    fn adaptive_fanout_picks_mode_and_products_match() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let big: Vec<RawRecipe> = (0..SERIAL_BATCH_MIN + 8)
            .map(|i| {
                raw(
                    &format!("recipe {i}"),
                    &["3 ripe tomatoes, diced", "2 cloves garlic", "zanthum gum"][..(i % 3) + 1],
                )
            })
            .collect();

        // Big batch, one worker → still serial.
        let metrics = Metrics::enabled();
        let mut store = RecipeStore::new();
        let serial = importer
            .import_batch_observed(&db, &mut store, &big, 1, &metrics)
            .unwrap();
        assert_eq!(serial.mode, ImportMode::Serial);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("import.mode.serial"), Some(1));
        assert_eq!(snap.counter("pool.runs"), None);

        // Big batch, two requested workers → pooled (effective_threads
        // takes a nonzero request literally, even on a 1-core box), and
        // the products are identical to the serial run.
        let metrics = Metrics::enabled();
        let mut pooled_store = RecipeStore::new();
        let pooled = importer
            .import_batch_observed(&db, &mut pooled_store, &big, 2, &metrics)
            .unwrap();
        assert_eq!(pooled.mode, ImportMode::Pooled);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("import.mode.pooled"), Some(1));
        assert_eq!(snap.counter("pool.runs"), Some(1));
        assert_eq!(pooled, serial);
        assert_eq!(pooled_store.n_recipes(), store.n_recipes());
        for (a, b) in pooled_store.recipes().zip(store.recipes()) {
            assert_eq!(a, b);
        }

        // Small batch, many workers → serial (below the granularity
        // threshold).
        let mut small_store = RecipeStore::new();
        let small = importer
            .import_batch(&db, &mut small_store, &big[..8], 8)
            .unwrap();
        assert_eq!(small.mode, ImportMode::Serial);
    }

    #[test]
    fn mode_is_excluded_from_stats_equality() {
        let a = ImportStats {
            offered: 3,
            mode: ImportMode::Serial,
            ..ImportStats::default()
        };
        let mut b = a.clone();
        b.mode = ImportMode::Pooled;
        assert_eq!(a, b);
        b.offered = 4;
        assert_ne!(a, b);
    }

    #[test]
    fn observed_import_is_bit_identical_across_threads() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let raws: Vec<RawRecipe> = (0..16)
            .map(|i| raw(&format!("r{i}"), &["3 ripe tomatoes", "2 cloves garlic"]))
            .collect();
        let mut plain_store = RecipeStore::new();
        let plain = importer.import(&db, &mut plain_store, &raws).unwrap();
        for threads in [2, 8] {
            let metrics = Metrics::enabled();
            let mut store = RecipeStore::new();
            let stats = importer
                .import_batch_observed(&db, &mut store, &raws, threads, &metrics)
                .unwrap();
            assert_eq!(stats, plain, "stats diverged at {threads} threads");
            for (a, b) in store.recipes().zip(plain_store.recipes()) {
                assert_eq!(a, b, "recipe diverged at {threads} threads");
            }
            // Memo totals vary with the schedule, but hits + misses is
            // always the total line count.
            let snap = metrics.snapshot();
            let hits = snap.counter("import.memo.hits").unwrap();
            let misses = snap.counter("import.memo.misses").unwrap();
            assert_eq!(hits + misses, 32);
        }
    }

    #[test]
    fn failures_record_reasons_per_recipe() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = importer
            .import(
                &db,
                &mut store,
                &[
                    raw("empty", &[]),
                    raw("fine", &["2 ripe tomatoes"]),
                    raw("mystery", &["quixotic zanthum"]),
                ],
            )
            .unwrap();
        assert_eq!(stats.stored, 1);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.failures.len(), 2);
        assert_eq!(
            stats.failures[0],
            RecipeFailure {
                index: 0,
                name: "empty".into(),
                reason: ImportFailureReason::NoIngredientLines,
            }
        );
        assert_eq!(
            stats.failures[1],
            RecipeFailure {
                index: 2,
                name: "mystery".into(),
                reason: ImportFailureReason::NothingResolved,
            }
        );
        // Failures render with index, name and reason for reporting.
        let rendered = stats.failures[1].to_string();
        assert!(rendered.contains("recipe 2"), "{rendered}");
        assert!(rendered.contains("mystery"), "{rendered}");
    }

    #[test]
    fn unresolved_threshold_drops_mostly_unknown_recipes() {
        let db = curated_db();
        let lines = &["2 ripe tomatoes", "quixotic paste", "zanthum gum"];
        // Default tolerance (1.0): partially-resolved recipes are kept.
        let lax = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let stats = lax.import(&db, &mut store, &[raw("murky", lines)]).unwrap();
        assert_eq!(stats.stored, 1);
        assert!(stats.failures.is_empty());
        // Strict tolerance: 2/3 unresolved > 0.5 drops it with context.
        let strict = Importer::from_flavor_db(&db).with_unresolved_threshold(0.5);
        let mut store = RecipeStore::new();
        let stats = strict
            .import(&db, &mut store, &[raw("murky", lines)])
            .unwrap();
        assert_eq!(stats.stored, 0);
        assert_eq!(stats.dropped, 1);
        assert_eq!(
            stats.failures[0].reason,
            ImportFailureReason::UnresolvedAboveThreshold {
                unresolved: 2,
                total: 3,
            }
        );
        assert_eq!(store.n_recipes(), 0);
    }

    #[test]
    fn failures_are_deterministic_across_thread_counts() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db).with_unresolved_threshold(0.6);
        let raws: Vec<RawRecipe> = (0..24)
            .map(|i| match i % 4 {
                0 => raw(
                    &format!("good {i}"),
                    &["3 ripe tomatoes", "2 cloves garlic"],
                ),
                1 => raw(&format!("empty {i}"), &[]),
                2 => raw(&format!("murky {i}"), &["tomato", "quixotic", "zanthum"]),
                _ => raw(&format!("mystery {i}"), &["quixotic zanthum"]),
            })
            .collect();
        let mut serial_store = RecipeStore::new();
        let serial = importer.import(&db, &mut serial_store, &raws).unwrap();
        assert_eq!(serial.failures.len(), 18);
        for threads in [2, 8] {
            let mut store = RecipeStore::new();
            let stats = importer
                .import_batch(&db, &mut store, &raws, threads)
                .unwrap();
            assert_eq!(stats, serial, "stats diverged at {threads} threads");
        }
    }

    #[test]
    fn import_one_returns_id() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        let id = import_one(&importer, &db, &mut store, &raw("x", &["tomato"]))
            .unwrap()
            .unwrap();
        assert_eq!(id, RecipeId(0));
        let none = import_one(&importer, &db, &mut store, &raw("y", &["xyzzy"])).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn weighted_resolution_scales_with_amount() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let (small, _) = importer.resolve_line_weighted(&db, "100g butter");
        let (big, _) = importer.resolve_line_weighted(&db, "400g butter");
        assert_eq!(small.len(), 1);
        assert_eq!(big.len(), 1);
        assert_eq!(small[0].0, big[0].0);
        assert!((big[0].1 / small[0].1 - 4.0).abs() < 1e-9);
        // Volume uses the 1 ml ≈ 1 g convention.
        let (cup, _) = importer.resolve_line_weighted(&db, "1 cup milk");
        assert!((cup[0].1 - 240.0).abs() < 1e-9);
        // Counts assume 50 g items.
        let (eggs, _) = importer.resolve_line_weighted(&db, "2 eggs");
        assert!((eggs[0].1 - 100.0).abs() < 1e-9);
        // No amount → weight 1.
        let (pinch, _) = importer.resolve_line_weighted(&db, "basil to garnish");
        assert!((pinch[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_resolution_splits_across_matches() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let (both, _) = importer.resolve_line_weighted(&db, "200g tomato and garlic");
        assert_eq!(both.len(), 2);
        for (_, w) in &both {
            assert!((w - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spelling_variants_fuzzy_resolve() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut store = RecipeStore::new();
        importer
            .import(&db, &mut store, &[raw("drink", &["a shot of whisky"])])
            .unwrap();
        let r = store.recipe(RecipeId(0)).unwrap();
        assert!(r.contains(db.ingredient_by_name("whiskey").unwrap()));
    }
}
