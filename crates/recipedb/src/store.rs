//! The indexed recipe store.

use std::collections::HashMap;

use culinaria_flavordb::IngredientId;

use crate::cuisine::Cuisine;
use crate::error::{RecipeDbError, Result};
use crate::recipe::{Recipe, RecipeId, Source};
use crate::region::Region;

/// The recipe store: append-only recipes with per-region partitions and
/// an inverted ingredient → recipes index, both maintained on insert.
///
/// ```
/// use culinaria_flavordb::IngredientId;
/// use culinaria_recipedb::{RecipeStore, Region, Source};
///
/// let mut store = RecipeStore::new();
/// store
///     .add_recipe(
///         "pasta al pomodoro",
///         Region::Italy,
///         Source::Epicurious,
///         vec![IngredientId(0), IngredientId(1)],
///     )
///     .unwrap();
/// assert_eq!(store.n_region_recipes(Region::Italy), 1);
/// assert_eq!(store.recipes_with_ingredient(IngredientId(1)).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecipeStore {
    recipes: Vec<Recipe>,
    by_region: [Vec<RecipeId>; 22],
    inverted: HashMap<IngredientId, Vec<RecipeId>>,
}

impl RecipeStore {
    /// An empty store.
    pub fn new() -> Self {
        RecipeStore::default()
    }

    /// Reserve capacity for `additional` more recipes (batch importers
    /// know their insert count up front).
    pub fn reserve(&mut self, additional: usize) {
        self.recipes.reserve(additional);
    }

    /// Insert a recipe. The ingredient list is deduplicated; an empty
    /// list is rejected (the paper only keeps recipes with ingredient
    /// information).
    pub fn add_recipe(
        &mut self,
        name: &str,
        region: Region,
        source: Source,
        ingredients: Vec<IngredientId>,
    ) -> Result<RecipeId> {
        if ingredients.is_empty() {
            return Err(RecipeDbError::EmptyRecipe(name.to_owned()));
        }
        let id = RecipeId(self.recipes.len() as u32);
        let recipe = Recipe::new(id, name.to_owned(), region, source, ingredients);
        for &ing in recipe.ingredients() {
            self.inverted.entry(ing).or_default().push(id);
        }
        self.by_region[region.index()].push(id);
        self.recipes.push(recipe);
        Ok(id)
    }

    /// Number of recipes.
    pub fn n_recipes(&self) -> usize {
        self.recipes.len()
    }

    /// Look up a recipe by id.
    pub fn recipe(&self, id: RecipeId) -> Result<&Recipe> {
        self.recipes
            .get(id.index())
            .ok_or(RecipeDbError::UnknownRecipe(id.0))
    }

    /// Iterate over all recipes in insertion order.
    pub fn recipes(&self) -> impl Iterator<Item = &Recipe> {
        self.recipes.iter()
    }

    /// Recipe ids attributed to a region.
    pub fn region_recipe_ids(&self, region: Region) -> &[RecipeId] {
        &self.by_region[region.index()]
    }

    /// Number of recipes in a region.
    pub fn n_region_recipes(&self, region: Region) -> usize {
        self.by_region[region.index()].len()
    }

    /// The regions that have at least one recipe, in Table 1 order.
    pub fn regions(&self) -> Vec<Region> {
        Region::ALL
            .iter()
            .copied()
            .filter(|r| !self.by_region[r.index()].is_empty())
            .collect()
    }

    /// A borrowed cuisine view over one region.
    pub fn cuisine(&self, region: Region) -> Cuisine<'_> {
        let recipes: Vec<&Recipe> = self.by_region[region.index()]
            .iter()
            .map(|&id| &self.recipes[id.index()])
            .collect();
        Cuisine::new(region, recipes)
    }

    /// A pooled "WORLD" view over every recipe in the store (the paper's
    /// aggregate row). Region is reported as the provided label region.
    pub fn world_cuisine(&self) -> Vec<&Recipe> {
        self.recipes.iter().collect()
    }

    /// Recipes containing an ingredient, via the inverted index.
    pub fn recipes_with_ingredient(&self, id: IngredientId) -> &[RecipeId] {
        self.inverted.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct ingredients used anywhere in the store.
    pub fn n_distinct_ingredients(&self) -> usize {
        self.inverted.len()
    }

    /// Global ingredient usage counts (ingredient → number of recipes
    /// that use it).
    pub fn global_frequencies(&self) -> HashMap<IngredientId, u64> {
        self.inverted
            .iter()
            .map(|(&ing, ids)| (ing, ids.len() as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ing(id: u32) -> IngredientId {
        IngredientId(id)
    }

    fn store() -> RecipeStore {
        let mut s = RecipeStore::new();
        s.add_recipe(
            "pasta",
            Region::Italy,
            Source::Synthetic,
            vec![ing(0), ing(1), ing(2)],
        )
        .unwrap();
        s.add_recipe(
            "pizza",
            Region::Italy,
            Source::Synthetic,
            vec![ing(1), ing(2), ing(3)],
        )
        .unwrap();
        s.add_recipe(
            "sushi",
            Region::Japan,
            Source::Synthetic,
            vec![ing(4), ing(5)],
        )
        .unwrap();
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = store();
        assert_eq!(s.n_recipes(), 3);
        assert_eq!(s.recipe(RecipeId(0)).unwrap().name, "pasta");
        assert!(s.recipe(RecipeId(9)).is_err());
    }

    #[test]
    fn empty_recipe_rejected() {
        let mut s = store();
        assert!(matches!(
            s.add_recipe("nothing", Region::Usa, Source::Synthetic, vec![]),
            Err(RecipeDbError::EmptyRecipe(_))
        ));
    }

    #[test]
    fn region_partitions() {
        let s = store();
        assert_eq!(s.n_region_recipes(Region::Italy), 2);
        assert_eq!(s.n_region_recipes(Region::Japan), 1);
        assert_eq!(s.n_region_recipes(Region::Usa), 0);
        assert_eq!(s.regions(), vec![Region::Italy, Region::Japan]);
    }

    #[test]
    fn inverted_index() {
        let s = store();
        assert_eq!(
            s.recipes_with_ingredient(ing(1)),
            &[RecipeId(0), RecipeId(1)]
        );
        assert_eq!(s.recipes_with_ingredient(ing(4)), &[RecipeId(2)]);
        assert!(s.recipes_with_ingredient(ing(99)).is_empty());
        assert_eq!(s.n_distinct_ingredients(), 6);
    }

    #[test]
    fn global_frequencies() {
        let s = store();
        let freq = s.global_frequencies();
        assert_eq!(freq[&ing(1)], 2);
        assert_eq!(freq[&ing(0)], 1);
    }

    #[test]
    fn duplicate_ingredients_counted_once() {
        let mut s = RecipeStore::new();
        s.add_recipe(
            "dup",
            Region::Usa,
            Source::Synthetic,
            vec![ing(7), ing(7), ing(7)],
        )
        .unwrap();
        assert_eq!(s.recipe(RecipeId(0)).unwrap().size(), 1);
        assert_eq!(s.recipes_with_ingredient(ing(7)).len(), 1);
    }

    #[test]
    fn cuisine_view() {
        let s = store();
        let ita = s.cuisine(Region::Italy);
        assert_eq!(ita.n_recipes(), 2);
        assert_eq!(ita.region(), Region::Italy);
        assert_eq!(s.world_cuisine().len(), 3);
    }
}
