//! A borrowed per-region cuisine view with the derived tables the
//! analyses consume: the ingredient set, frequency-of-use counts, and
//! the recipe-size distribution.

use std::collections::HashMap;

use culinaria_flavordb::IngredientId;

use crate::recipe::Recipe;
use crate::region::Region;

/// A cuisine: the set of recipes attributed to one region.
#[derive(Debug, Clone)]
pub struct Cuisine<'a> {
    region: Region,
    recipes: Vec<&'a Recipe>,
}

impl<'a> Cuisine<'a> {
    /// Build from borrowed recipes (normally via
    /// [`crate::RecipeStore::cuisine`]).
    pub fn new(region: Region, recipes: Vec<&'a Recipe>) -> Self {
        Cuisine { region, recipes }
    }

    /// The region this cuisine belongs to.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Borrowed recipes.
    pub fn recipes(&self) -> &[&'a Recipe] {
        &self.recipes
    }

    /// Number of recipes N_c.
    pub fn n_recipes(&self) -> usize {
        self.recipes.len()
    }

    /// Distinct ingredients used by the cuisine, sorted by id.
    pub fn ingredient_set(&self) -> Vec<IngredientId> {
        let mut all: Vec<IngredientId> = self
            .recipes
            .iter()
            .flat_map(|r| r.ingredients().iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Frequency of use: ingredient → number of recipes using it.
    pub fn frequencies(&self) -> HashMap<IngredientId, u64> {
        let mut freq: HashMap<IngredientId, u64> = HashMap::new();
        for r in &self.recipes {
            for &ing in r.ingredients() {
                *freq.entry(ing).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Recipe sizes n_R in recipe order.
    pub fn recipe_sizes(&self) -> Vec<usize> {
        self.recipes.iter().map(|r| r.size()).collect()
    }

    /// Mean recipe size; 0 for an empty cuisine.
    pub fn mean_recipe_size(&self) -> f64 {
        if self.recipes.is_empty() {
            return 0.0;
        }
        self.recipe_sizes().iter().sum::<usize>() as f64 / self.recipes.len() as f64
    }

    /// The `k` most-used ingredients as `(id, count)`, most frequent
    /// first (ties broken by id for determinism).
    pub fn top_ingredients(&self, k: usize) -> Vec<(IngredientId, u64)> {
        let mut pairs: Vec<(IngredientId, u64)> = self.frequencies().into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{RecipeId, Source};

    fn recipe(id: u32, ings: &[u32]) -> Recipe {
        Recipe::new(
            RecipeId(id),
            format!("r{id}"),
            Region::Italy,
            Source::Synthetic,
            ings.iter().map(|&i| IngredientId(i)).collect(),
        )
    }

    fn cuisine(recipes: &[Recipe]) -> Cuisine<'_> {
        Cuisine::new(Region::Italy, recipes.iter().collect())
    }

    #[test]
    fn ingredient_set_union() {
        let rs = [recipe(0, &[1, 2, 3]), recipe(1, &[2, 3, 4])];
        let c = cuisine(&rs);
        let set = c.ingredient_set();
        assert_eq!(
            set,
            vec![
                IngredientId(1),
                IngredientId(2),
                IngredientId(3),
                IngredientId(4)
            ]
        );
    }

    #[test]
    fn frequencies_count_recipes_not_occurrences() {
        let rs = [recipe(0, &[1, 2]), recipe(1, &[2, 3]), recipe(2, &[2])];
        let c = cuisine(&rs);
        let f = c.frequencies();
        assert_eq!(f[&IngredientId(2)], 3);
        assert_eq!(f[&IngredientId(1)], 1);
    }

    #[test]
    fn sizes_and_mean() {
        let rs = [recipe(0, &[1, 2, 3]), recipe(1, &[4])];
        let c = cuisine(&rs);
        assert_eq!(c.recipe_sizes(), vec![3, 1]);
        assert!((c.mean_recipe_size() - 2.0).abs() < 1e-12);
        let empty = Cuisine::new(Region::Italy, vec![]);
        assert_eq!(empty.mean_recipe_size(), 0.0);
    }

    #[test]
    fn top_ingredients_ordering() {
        let rs = [recipe(0, &[1, 2]), recipe(1, &[2, 3]), recipe(2, &[2, 3])];
        let c = cuisine(&rs);
        let top = c.top_ingredients(2);
        assert_eq!(top[0], (IngredientId(2), 3));
        assert_eq!(top[1], (IngredientId(3), 2));
        // k larger than distinct count is fine.
        assert_eq!(c.top_ingredients(99).len(), 3);
    }
}
