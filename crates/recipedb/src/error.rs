//! Error type for the recipe store.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RecipeDbError>;

/// Errors raised by recipe-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecipeDbError {
    /// A recipe needs at least one ingredient to be stored (the paper
    /// only keeps recipes whose ingredient list is available).
    EmptyRecipe(String),
    /// No recipe with this id.
    UnknownRecipe(u32),
    /// An ingredient id referenced by a recipe is not live in the
    /// flavor database it was validated against.
    UnknownIngredient(u32),
    /// Snapshot decoding failed.
    Snapshot(String),
    /// Import-log (WAL) framing, decoding, or replay-consistency
    /// failure (see [`crate::wal`]).
    Wal(String),
    /// A batch-import worker died (panicked) while resolving the recipe
    /// at `index`. Error-shaped resolution problems are collected into
    /// [`ImportStats::failures`](crate::import::ImportStats::failures)
    /// instead; this variant is reserved for the pool's panic isolation.
    Worker {
        /// Task index (position in the raw batch) of the recipe whose
        /// worker failed — deterministic: the lowest failing index wins
        /// regardless of thread count.
        index: usize,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for RecipeDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeDbError::EmptyRecipe(name) => {
                write!(f, "recipe '{name}' has no ingredients")
            }
            RecipeDbError::UnknownRecipe(id) => write!(f, "unknown recipe id {id}"),
            RecipeDbError::UnknownIngredient(id) => write!(f, "unknown ingredient id {id}"),
            RecipeDbError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            RecipeDbError::Wal(msg) => write!(f, "import log error: {msg}"),
            RecipeDbError::Worker { index, message } => {
                write!(f, "import worker failed on recipe {index}: {message}")
            }
        }
    }
}

impl std::error::Error for RecipeDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        assert!(RecipeDbError::EmptyRecipe("x".into())
            .to_string()
            .contains('x'));
        assert!(RecipeDbError::UnknownRecipe(3).to_string().contains('3'));
    }
}
