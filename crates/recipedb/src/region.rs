//! The paper's 22 geo-cultural regions with Table 1 calibration data.

use std::fmt;
use std::str::FromStr;

/// A geo-cultural region (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Region {
    /// Africa.
    Africa,
    /// Australia & New Zealand.
    AustraliaNz,
    /// British Isles.
    BritishIsles,
    /// Canada.
    Canada,
    /// Caribbean.
    Caribbean,
    /// China.
    China,
    /// DACH countries (Germany, Austria, Switzerland).
    Dach,
    /// Eastern Europe.
    EasternEurope,
    /// France.
    France,
    /// Greece.
    Greece,
    /// Indian Subcontinent.
    IndianSubcontinent,
    /// Italy.
    Italy,
    /// Japan.
    Japan,
    /// Korea.
    Korea,
    /// Mexico.
    Mexico,
    /// Middle East.
    MiddleEast,
    /// Scandinavia.
    Scandinavia,
    /// South America.
    SouthAmerica,
    /// South East Asia.
    SouthEastAsia,
    /// Spain.
    Spain,
    /// Thailand.
    Thailand,
    /// USA.
    Usa,
}

/// One row of the paper's Table 1 plus the Fig 4 pairing regime.
struct RegionInfo {
    code: &'static str,
    name: &'static str,
    /// Table 1: number of recipes.
    recipes: u32,
    /// Table 1: number of unique (flavor-mapped) ingredients.
    ingredients: u32,
    /// Fig 4: true ⇒ uniform (positive) food pairing; false ⇒
    /// contrasting (negative).
    positive_pairing: bool,
}

/// Table 1 verbatim; the per-region pairing sign is read off Fig 4
/// (16 positive regions, 6 negative).
const INFO: [RegionInfo; 22] = [
    RegionInfo {
        code: "AFR",
        name: "Africa",
        recipes: 651,
        ingredients: 303,
        positive_pairing: true,
    },
    RegionInfo {
        code: "ANZ",
        name: "Australia & NZ",
        recipes: 494,
        ingredients: 294,
        positive_pairing: true,
    },
    RegionInfo {
        code: "BRI",
        name: "British Isles",
        recipes: 1075,
        ingredients: 340,
        positive_pairing: false,
    },
    RegionInfo {
        code: "CAN",
        name: "Canada",
        recipes: 1112,
        ingredients: 368,
        positive_pairing: true,
    },
    RegionInfo {
        code: "CBN",
        name: "Caribbean",
        recipes: 1103,
        ingredients: 340,
        positive_pairing: true,
    },
    RegionInfo {
        code: "CHN",
        name: "China",
        recipes: 941,
        ingredients: 302,
        positive_pairing: true,
    },
    RegionInfo {
        code: "DACH",
        name: "DACH Countries",
        recipes: 487,
        ingredients: 260,
        positive_pairing: false,
    },
    RegionInfo {
        code: "EE",
        name: "Eastern Europe",
        recipes: 565,
        ingredients: 255,
        positive_pairing: false,
    },
    RegionInfo {
        code: "FRA",
        name: "France",
        recipes: 2703,
        ingredients: 424,
        positive_pairing: true,
    },
    RegionInfo {
        code: "GRC",
        name: "Greece",
        recipes: 934,
        ingredients: 280,
        positive_pairing: true,
    },
    RegionInfo {
        code: "INSC",
        name: "Indian Subcontinent",
        recipes: 4058,
        ingredients: 378,
        positive_pairing: true,
    },
    RegionInfo {
        code: "ITA",
        name: "Italy",
        recipes: 7504,
        ingredients: 452,
        positive_pairing: true,
    },
    RegionInfo {
        code: "JPN",
        name: "Japan",
        recipes: 580,
        ingredients: 283,
        positive_pairing: false,
    },
    RegionInfo {
        code: "KOR",
        name: "Korea",
        recipes: 301,
        ingredients: 198,
        positive_pairing: false,
    },
    RegionInfo {
        code: "MEX",
        name: "Mexico",
        recipes: 3138,
        ingredients: 376,
        positive_pairing: true,
    },
    RegionInfo {
        code: "ME",
        name: "Middle East",
        recipes: 993,
        ingredients: 313,
        positive_pairing: true,
    },
    RegionInfo {
        code: "SCND",
        name: "Scandinavia",
        recipes: 404,
        ingredients: 245,
        positive_pairing: false,
    },
    RegionInfo {
        code: "SAM",
        name: "South America",
        recipes: 310,
        ingredients: 221,
        positive_pairing: true,
    },
    RegionInfo {
        code: "SEA",
        name: "South East Asia",
        recipes: 611,
        ingredients: 266,
        positive_pairing: true,
    },
    RegionInfo {
        code: "ESP",
        name: "Spain",
        recipes: 816,
        ingredients: 312,
        positive_pairing: true,
    },
    RegionInfo {
        code: "THA",
        name: "Thailand",
        recipes: 667,
        ingredients: 265,
        positive_pairing: true,
    },
    RegionInfo {
        code: "USA",
        name: "USA",
        recipes: 16118,
        ingredients: 612,
        positive_pairing: true,
    },
];

impl Region {
    /// All 22 regions in Table 1 order.
    pub const ALL: [Region; 22] = [
        Region::Africa,
        Region::AustraliaNz,
        Region::BritishIsles,
        Region::Canada,
        Region::Caribbean,
        Region::China,
        Region::Dach,
        Region::EasternEurope,
        Region::France,
        Region::Greece,
        Region::IndianSubcontinent,
        Region::Italy,
        Region::Japan,
        Region::Korea,
        Region::Mexico,
        Region::MiddleEast,
        Region::Scandinavia,
        Region::SouthAmerica,
        Region::SouthEastAsia,
        Region::Spain,
        Region::Thailand,
        Region::Usa,
    ];

    fn info(self) -> &'static RegionInfo {
        &INFO[self as usize]
    }

    /// Short code as used in the paper's figures ("ITA", "INSC", …).
    pub fn code(self) -> &'static str {
        self.info().code
    }

    /// Full display name ("Indian Subcontinent", …).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Dense index in `0..22`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Region::index`].
    pub fn from_index(idx: usize) -> Option<Region> {
        Region::ALL.get(idx).copied()
    }

    /// Table 1: number of recipes attributed to the region.
    pub fn paper_recipe_count(self) -> u32 {
        self.info().recipes
    }

    /// Table 1: number of unique flavor-mapped ingredients.
    pub fn paper_ingredient_count(self) -> u32 {
        self.info().ingredients
    }

    /// Fig 4: whether the paper observed uniform (positive) food pairing
    /// for this region. Sixteen regions are positive, six negative.
    pub fn paper_positive_pairing(self) -> bool {
        self.info().positive_pairing
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Region {
    type Err = String;

    /// Parse a region code ("ITA") or a full name ("Italy"),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_lowercase();
        Region::ALL
            .iter()
            .find(|r| r.code().to_lowercase() == norm || r.name().to_lowercase() == norm)
            .copied()
            .ok_or_else(|| format!("unknown region '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        // 45,772 total recipes minus the 207 recipes from regions too
        // small to be independent (Portugal, Belgium, Central America,
        // Netherlands) = 45,565 across the 22 regions.
        let total: u32 = Region::ALL.iter().map(|r| r.paper_recipe_count()).sum();
        assert_eq!(total, 45_565);
        assert_eq!(total + 207, 45_772);
    }

    #[test]
    fn pairing_split_is_16_6() {
        let positive = Region::ALL
            .iter()
            .filter(|r| r.paper_positive_pairing())
            .count();
        assert_eq!(positive, 16);
        // The six contrasting regions named in the paper.
        for r in [
            Region::Scandinavia,
            Region::Japan,
            Region::Dach,
            Region::BritishIsles,
            Region::Korea,
            Region::EasternEurope,
        ] {
            assert!(!r.paper_positive_pairing(), "{r} should be negative");
        }
    }

    #[test]
    fn extremes_match_paper_text() {
        // "lowest number of recipes from Korea (301) and the largest
        // collection of recipes from USA (16118)".
        let min = Region::ALL
            .iter()
            .min_by_key(|r| r.paper_recipe_count())
            .unwrap();
        let max = Region::ALL
            .iter()
            .max_by_key(|r| r.paper_recipe_count())
            .unwrap();
        assert_eq!(*min, Region::Korea);
        assert_eq!(min.paper_recipe_count(), 301);
        assert_eq!(*max, Region::Usa);
        assert_eq!(max.paper_recipe_count(), 16_118);
    }

    #[test]
    fn mean_unique_ingredients_about_321() {
        // "the world regions had an average of 321 unique ingredients".
        let mean: f64 = Region::ALL
            .iter()
            .map(|r| r.paper_ingredient_count() as f64)
            .sum::<f64>()
            / 22.0;
        assert!((mean - 321.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn index_roundtrip_and_codes_unique() {
        let mut codes: Vec<&str> = Region::ALL.iter().map(|r| r.code()).collect();
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Region::from_index(i), Some(*r));
        }
        assert_eq!(Region::from_index(22), None);
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 22);
    }

    #[test]
    fn parse_code_and_name() {
        assert_eq!("ITA".parse::<Region>().unwrap(), Region::Italy);
        assert_eq!("italy".parse::<Region>().unwrap(), Region::Italy);
        assert_eq!(
            "indian subcontinent".parse::<Region>().unwrap(),
            Region::IndianSubcontinent
        );
        assert!("Atlantis".parse::<Region>().is_err());
    }
}
