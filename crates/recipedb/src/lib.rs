#![warn(missing_docs)]

//! # culinaria-recipedb
//!
//! The recipe-store substrate: the paper's "A Database of World
//! Cuisines" (45,772 recipes, 22 geo-cultural regions) as a typed,
//! indexed, queryable store.
//!
//! * [`region`] — the 22 regions with the paper's Table 1 statistics
//!   embedded as calibration constants, plus each region's Fig 4
//!   pairing regime (uniform vs contrasting);
//! * [`recipe`] — recipes as unordered ingredient sets (exactly the
//!   abstraction the food-pairing analysis consumes);
//! * [`store`] — the indexed store: per-region partitions and an
//!   inverted ingredient → recipes index;
//! * [`cuisine`] — a borrowed per-region view with ingredient sets,
//!   frequency tables and size distributions;
//! * [`import`] — the raw-text import pipeline: ingredient phrases →
//!   alias resolution (`culinaria-text`) → ingredient ids
//!   (`culinaria-flavordb`), with per-import curation statistics;
//! * [`io`] — binary snapshots and CSV export;
//! * [`wal`] — the append-only, checksummed import log with
//!   deterministic replay (streaming ingestion).

pub mod artifact;
pub mod cuisine;
pub mod error;
pub mod import;
pub mod io;
pub mod query;
pub mod recipe;
pub mod region;
pub mod store;
pub mod wal;

pub use artifact::{BorrowedCuisine, BorrowedRecipeDb, RecipeArtifactBuilder};
pub use cuisine::Cuisine;
pub use error::{RecipeDbError, Result};
pub use import::{ImportFailureReason, ImportStats, Importer, RawRecipe, RecipeFailure};
pub use recipe::{Recipe, RecipeId, Source};
pub use region::Region;
pub use store::RecipeStore;
pub use wal::{IngestLog, WalRecord};
