//! Append-only, checksummed import log with deterministic replay.
//!
//! The batch importer ([`crate::import`]) is all-or-nothing: the corpus
//! arrives once and is resolved once. A production service ingests
//! continuously, so this module adds the durable half of streaming
//! ingestion: every raw recipe offered to the importer is framed into
//! an append-only log (`CWAL1`), and **replaying any prefix of the log
//! through [`Importer::import_batch`] reproduces, bit for bit, the
//! store and [`ImportStats`] a cold batch import of that prefix would
//! have produced** — at every thread count, because replay reuses the
//! importer's serial task-order merge unchanged.
//!
//! # Record grammar
//!
//! The framing follows the layout grammar of the CFDB2/CRDB2 artifacts
//! (DESIGN.md §12): little-endian, fixed-width headers, 8-byte record
//! alignment, truncation and trailing bytes rejected, corrupt input an
//! error — never a panic.
//!
//! ```text
//! header (16 bytes): magic "CWAL1\0\0\0" | u32 version = 1 | u32 reserved = 0
//! record:            u32 kind | u32 payload_len | u64 checksum (FNV-1a 64)
//!                    | payload | zero pad to the next 8-byte boundary
//! ```
//!
//! Record kinds: `1` = stored recipe, `2` = **tombstone** — a recipe
//! that failed per-recipe import (PR 5 failure semantics) logged with
//! its rendered [`ImportFailureReason`](crate::import::ImportFailureReason). Tombstones keep the log a
//! faithful transcript of *everything offered*, so replay re-resolves
//! them through the same pipeline and cross-checks that each fails
//! again with the same reason; a mismatch means the log and the
//! importer have drifted and replay reports it instead of silently
//! diverging.
//!
//! Both payloads encode the raw recipe in the CRDB1 snapshot style
//! ([`crate::io`]): `str` = u32 byte length + UTF-8, region and source
//! as u8 indices, then u32 line count and one `str` per ingredient
//! line. A tombstone payload appends one more `str`: the reason.

// User-reachable serialization/ingestion surface: panicking on bad
// data is forbidden here — return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use culinaria_flavordb::FlavorDb;
use culinaria_stats::fault;

use crate::error::{RecipeDbError, Result};
use crate::import::{ImportStats, Importer, RawRecipe};
use crate::recipe::Source;
use crate::region::Region;
use crate::store::RecipeStore;

/// Log magic: 8 bytes, like the §12 artifact magics.
pub const MAGIC: &[u8; 8] = b"CWAL1\0\0\0";
/// Format version accepted by this decoder.
pub const VERSION: u32 = 1;
/// Header size in bytes (magic + version + reserved word).
pub const HEADER_LEN: usize = 16;
/// Per-record frame header size (kind + payload length + checksum).
pub const RECORD_HEADER_LEN: usize = 16;
/// Payload size cap — a frame claiming more is corrupt, and the guard
/// keeps a flipped length byte from driving a huge allocation.
pub const MAX_PAYLOAD: usize = 1 << 24;

const KIND_RECIPE: u32 = 1;
const KIND_TOMBSTONE: u32 = 2;

/// FNV-1a 64 over the payload bytes. Dependency-free, byte-order
/// independent, and strong enough to catch the single-byte flips and
/// torn tails an append-only file actually suffers.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Round up to the next multiple of 8 (§12 alignment convention).
fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn err(msg: impl Into<String>) -> RecipeDbError {
    RecipeDbError::Wal(msg.into())
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A raw recipe that imported successfully when it was logged.
    Recipe(RawRecipe),
    /// A raw recipe that failed per-recipe import when it was logged,
    /// kept so replay re-checks the failure instead of forgetting it.
    Tombstone {
        /// The raw recipe as offered.
        raw: RawRecipe,
        /// Rendered [`ImportFailureReason`](crate::import::ImportFailureReason) recorded at ingest time.
        reason: String,
    },
}

impl WalRecord {
    /// The raw recipe carried by the record, tombstoned or not.
    pub fn raw(&self) -> &RawRecipe {
        match self {
            WalRecord::Recipe(raw) => raw,
            WalRecord::Tombstone { raw, .. } => raw,
        }
    }

    /// True for a tombstoned (failed-at-ingest) record.
    pub fn is_tombstone(&self) -> bool {
        matches!(self, WalRecord::Tombstone { .. })
    }
}

/// The append-only import log.
///
/// The log is an in-memory byte image in the `CWAL1` format plus its
/// decoded records; persistence is the caller's `fs::write` /
/// `fs::read` of [`IngestLog::as_bytes`] — appends only ever extend
/// the image, so an interrupted write leaves a shorter valid prefix at
/// worst, never a rewritten one.
///
/// ```
/// use culinaria_flavordb::curated::curated_db;
/// use culinaria_recipedb::wal::IngestLog;
/// use culinaria_recipedb::{Importer, RawRecipe, Region, Source};
///
/// let db = curated_db();
/// let importer = Importer::from_flavor_db(&db);
/// let mut log = IngestLog::new();
/// log.append(&RawRecipe {
///     name: "marinara".into(),
///     region: Region::Italy,
///     source: Source::Epicurious,
///     ingredient_lines: vec!["3 ripe tomatoes".into(), "2 cloves garlic".into()],
/// })
/// .unwrap();
///
/// // The byte image round-trips, and replay rebuilds the store.
/// let back = IngestLog::from_bytes(log.as_bytes()).unwrap();
/// let (store, stats) = back.replay(&db, &importer, 1).unwrap();
/// assert_eq!(store.n_recipes(), 1);
/// assert_eq!(stats.stored, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IngestLog {
    bytes: Vec<u8>,
    records: Vec<WalRecord>,
}

impl IngestLog {
    /// A fresh, empty log (header only).
    pub fn new() -> IngestLog {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        IngestLog {
            bytes,
            records: Vec::new(),
        }
    }

    /// Decode a log image, validating the header, every record frame,
    /// every checksum, and that nothing trails the last record.
    ///
    /// # Errors
    /// [`RecipeDbError::Wal`] on any structural problem — truncation at
    /// any byte, bad magic/version/kind, an over-large or checksum-
    /// mismatched payload, nonzero padding, or malformed payload
    /// contents. Corrupt bytes never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<IngestLog> {
        if bytes.len() < HEADER_LEN {
            return Err(err(format!(
                "truncated header: need {HEADER_LEN} bytes, have {}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(err("bad magic"));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != VERSION {
            return Err(err(format!("unsupported version {version}")));
        }
        let mut records = Vec::new();
        let mut at = HEADER_LEN;
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < RECORD_HEADER_LEN {
                return Err(err(format!(
                    "truncated record header at offset {at}: need {RECORD_HEADER_LEN} bytes, have {}",
                    rest.len()
                )));
            }
            let kind = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
            let payload_len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
            let checksum = u64::from_le_bytes([
                rest[8], rest[9], rest[10], rest[11], rest[12], rest[13], rest[14], rest[15],
            ]);
            if payload_len > MAX_PAYLOAD {
                return Err(err(format!(
                    "record at offset {at} claims {payload_len} payload bytes, above the {MAX_PAYLOAD} cap"
                )));
            }
            let framed = align8(payload_len);
            if rest.len() < RECORD_HEADER_LEN + framed {
                return Err(err(format!(
                    "truncated record at offset {at}: need {} bytes, have {}",
                    RECORD_HEADER_LEN + framed,
                    rest.len()
                )));
            }
            let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + payload_len];
            if fnv1a64(payload) != checksum {
                return Err(err(format!("checksum mismatch at offset {at}")));
            }
            let pad = &rest[RECORD_HEADER_LEN + payload_len..RECORD_HEADER_LEN + framed];
            if pad.iter().any(|&b| b != 0) {
                return Err(err(format!("nonzero padding at offset {at}")));
            }
            records.push(decode_record(kind, payload, at)?);
            at += RECORD_HEADER_LEN + framed;
        }
        Ok(IngestLog {
            bytes: bytes.to_vec(),
            records,
        })
    }

    /// The log's byte image — write this to disk to persist it.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of records (recipes + tombstones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The decoded records in append order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Append one raw recipe as a stored-recipe record.
    ///
    /// # Errors
    /// [`RecipeDbError::Wal`] when a string exceeds the format's u32
    /// length fields (the writer checks instead of truncating).
    pub fn append(&mut self, raw: &RawRecipe) -> Result<()> {
        let payload = encode_raw(raw, None)?;
        self.push_record(KIND_RECIPE, &payload, WalRecord::Recipe(raw.clone()));
        Ok(())
    }

    /// Append a raw recipe that failed per-recipe import, with its
    /// rendered failure reason, as a tombstone record.
    ///
    /// # Errors
    /// [`RecipeDbError::Wal`] on a string over the format limit.
    pub fn append_tombstone(&mut self, raw: &RawRecipe, reason: &str) -> Result<()> {
        let payload = encode_raw(raw, Some(reason))?;
        self.push_record(
            KIND_TOMBSTONE,
            &payload,
            WalRecord::Tombstone {
                raw: raw.clone(),
                reason: reason.to_owned(),
            },
        );
        Ok(())
    }

    /// Import a batch into `store` **and** log every offered recipe:
    /// stored recipes as [`WalRecord::Recipe`], per-recipe failures as
    /// tombstones carrying their reason. This is the streaming ingest
    /// entry point — it keeps the log a transcript of exactly what the
    /// importer saw, which is what makes replay ≡ batch hold.
    ///
    /// Import runs first; appends follow in batch order, with a
    /// `wal.append` fault probe per record. An append-side failure
    /// therefore leaves the log a *valid prefix* of the intended state
    /// (records land whole, in order), never a torn frame.
    ///
    /// # Errors
    /// Whatever [`Importer::import_batch`] returns (worker panic), a
    /// [`RecipeDbError::Wal`] encode failure, or an injected
    /// `wal.append` fault.
    pub fn append_batch(
        &mut self,
        db: &FlavorDb,
        importer: &Importer,
        store: &mut RecipeStore,
        raws: &[RawRecipe],
        n_threads: usize,
    ) -> Result<ImportStats> {
        let base = self.records.len();
        let stats = importer.import_batch(db, store, raws, n_threads)?;
        let mut reasons: HashMap<usize, String> = stats
            .failures
            .iter()
            .map(|f| (f.index, f.reason.to_string()))
            .collect();
        for (i, raw) in raws.iter().enumerate() {
            fault::probe("wal.append", base + i)
                .map_err(|e| err(format!("append aborted at record {}: {e}", base + i)))?;
            match reasons.remove(&i) {
                Some(reason) => self.append_tombstone(raw, &reason)?,
                None => self.append(raw)?,
            }
        }
        Ok(stats)
    }

    /// Replay the whole log: see [`IngestLog::replay_prefix`].
    ///
    /// ```
    /// use culinaria_flavordb::curated::curated_db;
    /// use culinaria_recipedb::wal::IngestLog;
    /// use culinaria_recipedb::{Importer, RawRecipe, RecipeStore, Region, Source};
    ///
    /// let db = curated_db();
    /// let importer = Importer::from_flavor_db(&db);
    /// let raws = vec![
    ///     RawRecipe {
    ///         name: "bruschetta".into(),
    ///         region: Region::Italy,
    ///         source: Source::Epicurious,
    ///         ingredient_lines: vec!["tomato".into(), "olive oil".into()],
    ///     },
    ///     RawRecipe {
    ///         name: "mystery".into(),
    ///         region: Region::Italy,
    ///         source: Source::Epicurious,
    ///         ingredient_lines: vec![], // fails: tombstoned, not lost
    ///     },
    /// ];
    /// let mut log = IngestLog::new();
    /// let mut live = RecipeStore::new();
    /// log.append_batch(&db, &importer, &mut live, &raws, 1).unwrap();
    ///
    /// // Replay ≡ batch: same store, same stats, tombstone re-checked.
    /// let (replayed, stats) = log.replay(&db, &importer, 2).unwrap();
    /// assert_eq!(replayed.n_recipes(), live.n_recipes());
    /// assert_eq!(stats.stored, 1);
    /// assert_eq!(stats.failures.len(), 1);
    /// ```
    pub fn replay(
        &self,
        db: &FlavorDb,
        importer: &Importer,
        n_threads: usize,
    ) -> Result<(RecipeStore, ImportStats)> {
        self.replay_prefix(db, importer, self.records.len(), n_threads)
    }

    /// Replay the first `n` records into a fresh store by running the
    /// raw recipes — tombstoned or not — through
    /// [`Importer::import_batch`], exactly as a cold batch import of
    /// the same prefix would. The store, recipe ids, and
    /// [`ImportStats`] are therefore bit-identical to that batch
    /// import at every thread count (the importer's serial task-order
    /// merge guarantees it).
    ///
    /// Tombstones are cross-checked: a record logged as failed must
    /// fail again with the same rendered reason, and a record logged
    /// as stored must not fail. A mismatch is reported as
    /// [`RecipeDbError::Wal`] — it means the importer (lexicon,
    /// thresholds) drifted from the one that wrote the log.
    ///
    /// # Errors
    /// [`RecipeDbError::Wal`] on an out-of-range prefix or a tombstone
    /// mismatch; import errors pass through.
    pub fn replay_prefix(
        &self,
        db: &FlavorDb,
        importer: &Importer,
        n: usize,
        n_threads: usize,
    ) -> Result<(RecipeStore, ImportStats)> {
        let Some(prefix) = self.records.get(..n) else {
            return Err(err(format!(
                "prefix {n} out of range for a {}-record log",
                self.records.len()
            )));
        };
        let raws: Vec<RawRecipe> = prefix.iter().map(|r| r.raw().clone()).collect();
        let mut store = RecipeStore::new();
        let stats = importer.import_batch(db, &mut store, &raws, n_threads)?;
        let failed: HashMap<usize, String> = stats
            .failures
            .iter()
            .map(|f| (f.index, f.reason.to_string()))
            .collect();
        for (i, rec) in prefix.iter().enumerate() {
            match (rec, failed.get(&i)) {
                (WalRecord::Recipe(raw), Some(reason)) => {
                    return Err(err(format!(
                        "replay drift at record {i} '{}': logged as stored, now fails: {reason}",
                        raw.name
                    )));
                }
                (WalRecord::Tombstone { raw, reason }, now) => {
                    if now != Some(reason) {
                        return Err(err(format!(
                            "replay drift at record {i} '{}': logged reason '{reason}', now {}",
                            raw.name,
                            now.map_or_else(|| "stored".to_owned(), |r| format!("'{r}'"))
                        )));
                    }
                }
                (WalRecord::Recipe(_), None) => {}
            }
        }
        Ok((store, stats))
    }

    fn push_record(&mut self, kind: u32, payload: &[u8], record: WalRecord) {
        self.bytes.extend_from_slice(&kind.to_le_bytes());
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes
            .extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        self.bytes
            .resize(self.bytes.len() + align8(payload.len()) - payload.len(), 0);
        self.records.push(record);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<()> {
    let len = u32::try_from(s.len()).map_err(|_| {
        err(format!(
            "string of {} bytes exceeds the u32 format limit",
            s.len()
        ))
    })?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_raw(raw: &RawRecipe, reason: Option<&str>) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(64);
    put_str(&mut buf, &raw.name)?;
    buf.push(raw.region.index() as u8);
    buf.push(raw.source.index() as u8);
    let n = u32::try_from(raw.ingredient_lines.len())
        .map_err(|_| err("ingredient line count exceeds the u32 format limit"))?;
    buf.extend_from_slice(&n.to_le_bytes());
    for line in &raw.ingredient_lines {
        put_str(&mut buf, line)?;
    }
    if let Some(reason) = reason {
        put_str(&mut buf, reason)?;
    }
    Ok(buf)
}

/// Panic-free cursor over a record payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    record_at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(err(format!(
                "truncated payload in record at offset {}",
                self.record_at
            ))),
        }
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| {
            err(format!(
                "invalid utf-8 in record at offset {}",
                self.record_at
            ))
        })
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn decode_record(kind: u32, payload: &[u8], record_at: usize) -> Result<WalRecord> {
    if kind != KIND_RECIPE && kind != KIND_TOMBSTONE {
        return Err(err(format!("bad record kind {kind} at offset {record_at}")));
    }
    let mut cur = Cursor {
        buf: payload,
        at: 0,
        record_at,
    };
    let name = cur.str()?;
    let region = Region::from_index(cur.u8()? as usize)
        .ok_or_else(|| err(format!("bad region index in record at offset {record_at}")))?;
    let source = Source::from_index(cur.u8()? as usize)
        .ok_or_else(|| err(format!("bad source index in record at offset {record_at}")))?;
    let n_lines = cur.u32()? as usize;
    if n_lines > MAX_PAYLOAD / 4 {
        return Err(err(format!(
            "bad line count in record at offset {record_at}"
        )));
    }
    let mut ingredient_lines = Vec::with_capacity(n_lines.min(1024));
    for _ in 0..n_lines {
        ingredient_lines.push(cur.str()?);
    }
    let raw = RawRecipe {
        name,
        region,
        source,
        ingredient_lines,
    };
    let rec = if kind == KIND_TOMBSTONE {
        WalRecord::Tombstone {
            raw,
            reason: cur.str()?,
        }
    } else {
        WalRecord::Recipe(raw)
    };
    if !cur.done() {
        return Err(err(format!(
            "trailing payload bytes in record at offset {record_at}"
        )));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::curated::curated_db;

    fn raw(name: &str, lines: &[&str]) -> RawRecipe {
        RawRecipe {
            name: name.into(),
            region: Region::Italy,
            source: Source::Epicurious,
            ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn seeded_log() -> (IngestLog, RecipeStore, ImportStats) {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let raws = vec![
            raw("marinara", &["3 ripe tomatoes", "2 cloves garlic"]),
            raw("empty", &[]),
            raw("mystery", &["quixotic zanthum paste"]),
            raw("aglio e olio", &["garlic", "olive oil", "chili"]),
        ];
        let mut log = IngestLog::new();
        let mut store = RecipeStore::new();
        let stats = log
            .append_batch(&db, &importer, &mut store, &raws, 1)
            .unwrap();
        (log, store, stats)
    }

    #[test]
    fn roundtrip_and_replay_parity() {
        let (log, store, stats) = seeded_log();
        assert_eq!(log.len(), 4);
        assert_eq!(log.records().iter().filter(|r| r.is_tombstone()).count(), 2);

        let back = IngestLog::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(back.records(), log.records());

        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        for threads in [1, 2, 8] {
            let (replayed, rstats) = back.replay(&db, &importer, threads).unwrap();
            assert_eq!(rstats, stats, "stats diverged at {threads} threads");
            assert_eq!(replayed.n_recipes(), store.n_recipes());
            for (a, b) in replayed.recipes().zip(store.recipes()) {
                assert_eq!(a, b, "recipe diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn every_prefix_replays_as_batch() {
        let (log, _, _) = seeded_log();
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        for n in 0..=log.len() {
            let raws: Vec<RawRecipe> = log.records()[..n].iter().map(|r| r.raw().clone()).collect();
            let mut batch_store = RecipeStore::new();
            let batch_stats = importer.import(&db, &mut batch_store, &raws).unwrap();
            let (replayed, rstats) = log.replay_prefix(&db, &importer, n, 2).unwrap();
            assert_eq!(rstats, batch_stats, "prefix {n}");
            for (a, b) in replayed.recipes().zip(batch_store.recipes()) {
                assert_eq!(a, b, "prefix {n}");
            }
        }
        assert!(log.replay_prefix(&db, &importer, log.len() + 1, 1).is_err());
    }

    #[test]
    fn every_truncation_prefix_errors() {
        let (log, _, _) = seeded_log();
        let bytes = log.as_bytes();
        for cut in 0..bytes.len() {
            // Cuts at record boundaries decode to a shorter valid log;
            // every other cut must be a structural error.
            if let Ok(short) = IngestLog::from_bytes(&bytes[..cut]) {
                assert!(short.len() < log.len(), "cut {cut}");
                let mut whole = IngestLog::new();
                for r in short.records() {
                    match r {
                        WalRecord::Recipe(raw) => whole.append(raw).unwrap(),
                        WalRecord::Tombstone { raw, reason } => {
                            whole.append_tombstone(raw, reason).unwrap()
                        }
                    }
                }
                assert_eq!(whole.as_bytes(), &bytes[..cut], "cut {cut}");
            }
        }
    }

    #[test]
    fn byte_flips_never_panic_and_rarely_pass() {
        let (log, _, _) = seeded_log();
        let bytes = log.as_bytes().to_vec();
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] = c[i].wrapping_add(1);
            let _ = IngestLog::from_bytes(&c); // must not panic
        }
        // A payload flip specifically trips the checksum.
        let mut c = bytes.clone();
        c[HEADER_LEN + RECORD_HEADER_LEN] ^= 0xff;
        let e = IngestLog::from_bytes(&c).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
    }

    #[test]
    fn bad_magic_version_kind_and_padding() {
        let (log, _, _) = seeded_log();
        let good = log.as_bytes().to_vec();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(IngestLog::from_bytes(&bad).is_err());

        let mut bad = good.clone();
        bad[8] = 9;
        assert!(IngestLog::from_bytes(&bad).is_err());

        let mut bad = good.clone();
        bad[HEADER_LEN] = 7; // record kind
        assert!(IngestLog::from_bytes(&bad).is_err());

        // Nonzero pad byte: find a record with payload_len % 8 != 0.
        let mut at = HEADER_LEN;
        let mut padded_at = None;
        while at < good.len() {
            let plen = u32::from_le_bytes([good[at + 4], good[at + 5], good[at + 6], good[at + 7]])
                as usize;
            if !plen.is_multiple_of(8) {
                padded_at = Some(at + RECORD_HEADER_LEN + plen);
                break;
            }
            at += RECORD_HEADER_LEN + align8(plen);
        }
        let padded_at = padded_at.expect("seed log has an unaligned payload");
        let mut bad = good.clone();
        bad[padded_at] = 1;
        assert!(IngestLog::from_bytes(&bad)
            .unwrap_err()
            .to_string()
            .contains("padding"));
    }

    #[test]
    fn tombstone_drift_is_reported() {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut log = IngestLog::new();
        // Log a perfectly resolvable recipe as a tombstone: replay must
        // flag the drift instead of trusting either side silently.
        log.append_tombstone(&raw("fine", &["tomato"]), "no ingredient lines")
            .unwrap();
        let e = log.replay(&db, &importer, 1).unwrap_err();
        assert!(e.to_string().contains("drift"), "{e}");

        // And the converse: a stored record that now fails.
        let mut log = IngestLog::new();
        log.append(&raw("empty", &[])).unwrap();
        let e = log.replay(&db, &importer, 1).unwrap_err();
        assert!(e.to_string().contains("drift"), "{e}");
    }

    #[test]
    fn empty_log_is_valid_and_replays_empty() {
        let log = IngestLog::new();
        assert!(log.is_empty());
        let back = IngestLog::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(back.len(), 0);
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let (store, stats) = back.replay(&db, &importer, 4).unwrap();
        assert_eq!(store.n_recipes(), 0);
        assert_eq!(stats.offered, 0);
    }
}
