//! Property-based tests of recipe-store invariants and snapshot
//! round-trips.

use proptest::prelude::*;

use culinaria_flavordb::curated::curated_db;
use culinaria_flavordb::IngredientId;
use culinaria_recipedb::import::{Importer, RawRecipe};
use culinaria_recipedb::{io, Recipe, RecipeId, RecipeStore, Region, Source};

/// Strategy: raw recipes over a mix of resolvable phrases (curated-db
/// names, synonyms, misspellings) and junk.
fn arb_raw_recipes() -> impl Strategy<Value = Vec<RawRecipe>> {
    const FIXED_LINES: &[&str] = &[
        "3 ripe tomatoes, diced",
        "2 cloves garlic, minced",
        "1 tbsp extra-virgin olive oil",
        "a shot of whisky",
        "250g curd",
        "1 bun, toasted",
        "2 cups quixotic zanthum",
    ];
    let line = (
        0usize..FIXED_LINES.len() + 1,
        proptest::string::string_regex("[a-z]{1,12}( [a-z]{1,12}){0,3}").expect("valid regex"),
    )
        .prop_map(|(pick, random)| {
            FIXED_LINES
                .get(pick)
                .map(|s| s.to_string())
                .unwrap_or(random)
        });
    let recipe = (0usize..22, 0usize..5, proptest::collection::vec(line, 0..6));
    proptest::collection::vec(recipe, 0..24).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (region_idx, source_idx, lines))| RawRecipe {
                name: format!("raw-{i}"),
                region: Region::from_index(region_idx).expect("index < 22"),
                source: Source::from_index(source_idx).expect("index < 5"),
                ingredient_lines: lines,
            })
            .collect()
    })
}

/// Strategy: a store with 0..40 random recipes over 30 ingredients.
fn arb_store() -> impl Strategy<Value = RecipeStore> {
    let recipe = (
        0usize..22,
        0usize..5,
        proptest::collection::vec(0u32..30, 1..12),
    );
    proptest::collection::vec(recipe, 0..40).prop_map(|specs| {
        let mut store = RecipeStore::new();
        for (i, (region_idx, source_idx, ings)) in specs.into_iter().enumerate() {
            let region = Region::from_index(region_idx).expect("index < 22");
            let source = Source::from_index(source_idx).expect("index < 5");
            store
                .add_recipe(
                    &format!("recipe-{i}"),
                    region,
                    source,
                    ings.into_iter().map(IngredientId).collect(),
                )
                .expect("non-empty ingredient list");
        }
        store
    })
}

proptest! {
    #[test]
    fn inverted_index_is_consistent(store in arb_store()) {
        // Forward direction: every recipe's ingredients index back to it.
        for r in store.recipes() {
            for &ing in r.ingredients() {
                prop_assert!(
                    store.recipes_with_ingredient(ing).contains(&r.id),
                    "{}: missing from index of {ing}", r.name
                );
            }
        }
        // Reverse: every posting refers to a recipe containing the
        // ingredient exactly once.
        let freq = store.global_frequencies();
        for (&ing, &count) in &freq {
            let postings = store.recipes_with_ingredient(ing);
            prop_assert_eq!(postings.len() as u64, count);
            for &rid in postings {
                prop_assert!(store.recipe(rid).expect("live id").contains(ing));
            }
        }
    }

    #[test]
    fn region_partitions_cover_all_recipes(store in arb_store()) {
        let total: usize = Region::ALL
            .iter()
            .map(|&r| store.n_region_recipes(r))
            .sum();
        prop_assert_eq!(total, store.n_recipes());
        for region in Region::ALL {
            for &rid in store.region_recipe_ids(region) {
                prop_assert_eq!(store.recipe(rid).expect("live id").region, region);
            }
        }
    }

    #[test]
    fn cuisine_views_are_faithful(store in arb_store()) {
        for region in store.regions() {
            let cuisine = store.cuisine(region);
            prop_assert_eq!(cuisine.n_recipes(), store.n_region_recipes(region));
            // Frequencies sum to total ingredient usages.
            let usage: u64 = cuisine.frequencies().values().sum();
            let expected: usize = cuisine.recipes().iter().map(|r| r.size()).sum();
            prop_assert_eq!(usage as usize, expected);
            // The ingredient set is exactly the union.
            let set = cuisine.ingredient_set();
            for w in set.windows(2) {
                prop_assert!(w[0] < w[1], "ingredient set not sorted/dedup");
            }
        }
    }

    #[test]
    fn snapshot_roundtrip(store in arb_store()) {
        let back = io::from_snapshot(io::to_snapshot(&store).expect("encodes")).expect("roundtrip decodes");
        prop_assert_eq!(back.n_recipes(), store.n_recipes());
        let pairs: Vec<(&Recipe, &Recipe)> = store.recipes().zip(back.recipes()).collect();
        for (a, b) in pairs {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(
            back.n_distinct_ingredients(),
            store.n_distinct_ingredients()
        );
    }

    #[test]
    fn csv_export_row_count(store in arb_store()) {
        let csv = io::to_csv(&store);
        let lines = csv.lines().count();
        prop_assert_eq!(lines, store.n_recipes() + 1); // header + rows
    }

    #[test]
    fn recipes_with_all_is_intersection(store in arb_store(), a in 0u32..30, b in 0u32..30) {
        let ia = IngredientId(a);
        let ib = IngredientId(b);
        let joint = store.recipes_with_all(&[ia, ib]);
        for &rid in &joint {
            let r = store.recipe(rid).expect("live id");
            prop_assert!(r.contains(ia) && r.contains(ib));
        }
        // Completeness: every recipe containing both is found.
        for r in store.recipes() {
            if r.contains(ia) && r.contains(ib) {
                prop_assert!(joint.contains(&r.id));
            }
        }
        // Co-occurrence symmetry.
        prop_assert_eq!(store.cooccurrence(ia, ib), store.cooccurrence(ib, ia));
    }

    #[test]
    fn import_batch_is_thread_count_invariant(raws in arb_raw_recipes()) {
        let db = curated_db();
        let importer = Importer::from_flavor_db(&db);
        let mut serial_store = RecipeStore::new();
        let serial_stats = importer
            .import(&db, &mut serial_store, &raws)
            .expect("serial import succeeds");
        for threads in [1usize, 2, 8] {
            let mut store = RecipeStore::new();
            let stats = importer
                .import_batch(&db, &mut store, &raws, threads)
                .expect("batch import succeeds");
            prop_assert_eq!(&stats, &serial_stats, "stats diverged at {} threads", threads);
            prop_assert_eq!(store.n_recipes(), serial_store.n_recipes());
            for (a, b) in store.recipes().zip(serial_store.recipes()) {
                prop_assert_eq!(a, b, "recipe diverged at {} threads", threads);
            }
        }
    }

    #[test]
    fn recipe_ids_are_dense_and_ordered(store in arb_store()) {
        for (k, r) in store.recipes().enumerate() {
            prop_assert_eq!(r.id, RecipeId(k as u32));
        }
    }
}

/// A deterministic non-trivial store for corruption sweeps.
fn sweep_store(seed: u64) -> RecipeStore {
    let mut store = RecipeStore::new();
    for i in 0..40u64 {
        let x = seed.wrapping_mul(31).wrapping_add(i);
        let region = Region::ALL[(x % Region::ALL.len() as u64) as usize];
        let ings: Vec<IngredientId> = (0..(x % 6) + 1)
            .map(|j| IngredientId(((x + j) % 50) as u32))
            .collect();
        store
            .add_recipe(&format!("recipe {i}"), region, Source::Synthetic, ings)
            .expect("non-empty");
    }
    store
}

#[test]
fn every_truncation_prefix_is_rejected() {
    let snap = io::to_snapshot(&sweep_store(5)).unwrap();
    // Decoding consumes the snapshot exactly, so every strict prefix
    // must end mid-field and fail cleanly.
    for cut in 0..snap.len().min(4096) {
        assert!(
            io::from_snapshot(snap.slice(0..cut)).is_err(),
            "cut at {cut} of {} decoded",
            snap.len()
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut snap = io::to_snapshot(&sweep_store(5)).unwrap().to_vec();
    snap.push(0);
    let err = io::from_snapshot(bytes::Bytes::from(snap)).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn absurd_counts_error_instead_of_allocating() {
    // A header claiming u32::MAX recipes must fail on the missing body,
    // not attempt a giant allocation.
    let mut snap = b"CRDB1".to_vec();
    snap.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(io::from_snapshot(bytes::Bytes::from(snap)).is_err());
}

proptest! {
    #[test]
    fn snapshot_byte_flips_never_panic(
        seed in 0u64..20,
        flips in proptest::collection::vec((0usize..4096, 1u8..=255), 1..4),
    ) {
        let mut snap = io::to_snapshot(&sweep_store(seed)).unwrap().to_vec();
        for (pos, mask) in flips {
            let pos = pos % snap.len();
            snap[pos] ^= mask;
        }
        // Decoding a corrupted snapshot may error or (when the flip is
        // inside a string body) succeed; it must never panic.
        let _ = io::from_snapshot(bytes::Bytes::from(snap));
    }
}
