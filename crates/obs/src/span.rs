//! Span timers: scoped wall-time accounting with call counts.
//!
//! A [`Span`] names one stage of the pipeline (`import.resolve`,
//! `analyze.mc`). [`Span::enter`] returns a [`SpanGuard`]; when the
//! guard drops (or [`SpanGuard::stop`] is called), one call and its
//! monotonic wall time are recorded. Nested stages derive child spans
//! with [`Span::child`], which joins names with a dot — the registry
//! then reads as a flattened tree.
//!
//! Spans from disabled registries are fully inert: entering one reads
//! no clock and the guard's drop is a no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::Metrics;

/// Atomic accumulator behind one span name: call count, total wall
/// nanoseconds, and the min/max single-call times.
#[derive(Debug)]
pub(crate) struct SpanStat {
    calls: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for SpanStat {
    fn default() -> SpanStat {
        SpanStat {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl SpanStat {
    fn record_ns(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// `(calls, total_ns, min_ns, max_ns)`; min is 0 when never called.
    pub(crate) fn read(&self) -> (u64, u64, u64, u64) {
        let calls = self.calls.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        (
            calls,
            self.total_ns.load(Ordering::Relaxed),
            if calls == 0 { 0 } else { min },
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// A named span timer (see the module docs). Clone freely; clones
/// record into the same accumulator.
#[derive(Debug, Clone)]
pub struct Span {
    /// Registry handle, kept so [`Span::child`] can register new names.
    metrics: Metrics,
    name: String,
    stat: Option<Arc<SpanStat>>,
}

impl Span {
    pub(crate) fn new(metrics: Metrics, name: String, stat: Option<Arc<SpanStat>>) -> Span {
        Span {
            metrics,
            name,
            stat,
        }
    }

    /// An inert span — what disabled registries vend. Allocation-free.
    pub fn noop() -> Span {
        Span {
            metrics: Metrics::disabled(),
            name: String::new(),
            stat: None,
        }
    }

    /// The span's full dotted name (empty for a no-op span).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start one timed call; the returned guard records on drop.
    #[inline]
    pub fn enter(&self) -> SpanGuard {
        SpanGuard {
            stat: self.stat.clone(),
            start: self.stat.as_ref().map(|_| Instant::now()),
        }
    }

    /// A nested span named `parent.suffix`. On a no-op span this stays
    /// no-op without touching any registry.
    pub fn child(&self, suffix: &str) -> Span {
        if self.stat.is_none() {
            return Span::noop();
        }
        self.metrics.span(&format!("{}.{}", self.name, suffix))
    }
}

/// Scoped guard of one span call, vended by [`Span::enter`]. Records
/// exactly once — on [`SpanGuard::stop`] or on drop.
#[derive(Debug)]
pub struct SpanGuard {
    stat: Option<Arc<SpanStat>>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Record now and consume the guard (useful to end a span before
    /// scope end).
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let (Some(stat), Some(start)) = (self.stat.take(), self.start.take()) {
            stat.record_ns(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_accumulates_and_tracks_extremes() {
        let s = SpanStat::default();
        s.record_ns(10);
        s.record_ns(30);
        let (calls, total, min, max) = s.read();
        assert_eq!(calls, 2);
        assert_eq!(total, 40);
        assert_eq!(min, 10);
        assert_eq!(max, 30);
    }

    #[test]
    fn unused_stat_reads_zero_min() {
        let (calls, total, min, max) = SpanStat::default().read();
        assert_eq!((calls, total, min, max), (0, 0, 0, 0));
    }

    #[test]
    fn noop_span_is_inert() {
        let span = Span::noop();
        assert_eq!(span.name(), "");
        let guard = span.enter();
        assert!(guard.start.is_none(), "no clock read when disabled");
        guard.stop();
        let child = span.child("sub");
        assert_eq!(child.name(), "");
    }

    #[test]
    fn guard_records_once_via_stop_or_drop() {
        let m = Metrics::enabled();
        let span = m.span("s");
        span.enter().stop();
        drop(span.enter());
        assert_eq!(m.snapshot().span("s").unwrap().calls, 2);
    }
}
