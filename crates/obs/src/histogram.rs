//! Fixed-bucket latency histograms.
//!
//! Buckets are powers of two over **microseconds**: bucket 0 counts
//! samples `< 1 µs`, bucket `i ≥ 1` counts samples in
//! `[2^(i−1), 2^i) µs`, and the last bucket is unbounded. 28 buckets
//! therefore span sub-microsecond to ~67 s — the full latency range of
//! anything in this pipeline — with a fixed 28-word footprint and a
//! branch-free bucket index (`log2` via `leading_zeros`). Two quantile
//! readbacks exist on [`crate::HistogramSnapshot`]: `quantile_us` (the
//! upper bound of the bucket where the cumulative count crosses the
//! rank — conservative, at most 2× relative error) and
//! `quantile_interp_us` (linear interpolation inside that bucket under
//! a uniform-within-bucket assumption — what the renderers and
//! `bench_serve` report).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of buckets (sub-µs, then 2^0..2^26 µs, then overflow).
pub const N_BUCKETS: usize = 28;

/// The atomic storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a microsecond sample: 0 for sub-µs, else
/// `floor(log2(us)) + 1`, capped at the overflow bucket.
#[inline]
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

/// Upper bound (µs) of bucket `i`; `u64::MAX` for the overflow bucket.
pub(crate) fn bucket_upper_us(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Inclusive lower bound (µs) of bucket `i`: 0 for the sub-µs bucket,
/// `2^(i−1)` otherwise.
pub(crate) fn bucket_lower_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl HistogramCore {
    fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub(crate) fn read(&self) -> ([u64; N_BUCKETS], u64, u64, u64) {
        (
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.count.load(Ordering::Relaxed),
            self.sum_us.load(Ordering::Relaxed),
            self.max_us.load(Ordering::Relaxed),
        )
    }
}

/// A latency histogram handle. Recording is two relaxed atomic adds +
/// a max; the disabled arm is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub(crate) fn new(core: Option<Arc<HistogramCore>>) -> Histogram {
        Histogram(core)
    }

    /// An inert histogram — what disabled registries vend.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Record one sample, in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if let Some(c) = &self.0 {
            c.record_us(us);
        }
    }

    /// Record one unitless sample (the buckets are just powers of two —
    /// a histogram of task counts or sizes works the same way; name
    /// such histograms without the `_us` suffix).
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_us(value);
    }

    /// Record one duration sample.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(c) = &self.0 {
            c.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// Start a timer whose [`HistTimer::stop`] (or drop) records the
    /// elapsed time into this histogram. Disabled handles never read
    /// the clock.
    #[inline]
    pub fn start(&self) -> HistTimer {
        HistTimer {
            core: self.0.clone(),
            start: self.0.as_ref().map(|_| Instant::now()),
        }
    }
}

/// A scoped latency timer vended by [`Histogram::start`]. Records once,
/// on [`HistTimer::stop`] or on drop, whichever comes first.
#[derive(Debug)]
pub struct HistTimer {
    core: Option<Arc<HistogramCore>>,
    start: Option<Instant>,
}

impl HistTimer {
    /// Record now and consume the timer.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let (Some(core), Some(start)) = (self.core.take(), self.start.take()) {
            core.record_us(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 25), 26);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper_us(0), 1);
        assert_eq!(bucket_upper_us(1), 2);
        assert_eq!(bucket_upper_us(N_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_lower_us(0), 0);
        assert_eq!(bucket_lower_us(1), 1);
        assert_eq!(bucket_lower_us(7), 64);
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_lower_us(i + 1), bucket_upper_us(i));
        }
    }

    #[test]
    fn recording_tracks_count_sum_max() {
        let core = HistogramCore::default();
        for us in [0, 1, 3, 500, 4096] {
            core.record_us(us);
        }
        let (buckets, count, sum, max) = core.read();
        assert_eq!(count, 5);
        assert_eq!(sum, 4600);
        assert_eq!(max, 4096);
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn noop_histogram_and_timer() {
        let h = Histogram::noop();
        h.record_us(10);
        h.record_duration(Duration::from_millis(5));
        let t = h.start();
        assert!(t.start.is_none(), "disabled timer must not read the clock");
        t.stop();
    }

    #[test]
    fn timer_records_once() {
        let core = Arc::new(HistogramCore::default());
        let h = Histogram::new(Some(Arc::clone(&core)));
        h.start().stop();
        drop(h.start()); // drop path
        let (_, count, _, _) = core.read();
        assert_eq!(count, 2);
    }
}
