//! Point-in-time registry snapshots and their text / JSON renderers.
//!
//! A [`Snapshot`] is plain owned data (sorted `Vec`s), so it can be
//! taken once at exit and rendered, diffed, or asserted on in tests
//! without holding any lock. Rendering is deterministic: instruments
//! appear in lexicographic name order, sections in a fixed sequence
//! (counters, gauges, spans, histograms).

use crate::histogram::{bucket_lower_us, bucket_upper_us, N_BUCKETS};
use crate::Registry;

/// Snapshot of one span accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Full dotted span name.
    pub name: String,
    /// Calls recorded.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Fastest single call, nanoseconds (0 when never called).
    pub min_ns: u64,
    /// Slowest single call, nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Snapshot of one latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name (unit-suffixed, e.g. `mc.block_us`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Per-bucket counts (see [`crate::histogram`] for bounds).
    pub buckets: [u64; N_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean microseconds per sample (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate in microseconds: the upper bound of the bucket
    /// where the cumulative count reaches `q` (0 < q ≤ 1). The exact
    /// max replaces the unbounded overflow bucket's bound. 0 when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Interpolated quantile estimate in microseconds (0.0 when empty).
    ///
    /// The estimation rule, spelled out so the number is reproducible:
    ///
    /// 1. The target rank is `r = ceil(q · count)`, clamped to
    ///    `[1, count]` — the same rank convention as [`Self::quantile_us`].
    /// 2. Walk the buckets to the one holding rank `r`; let `before` be
    ///    the cumulative count of earlier buckets and `c` the bucket's
    ///    own count.
    /// 3. Samples are assumed uniform inside the bucket, each sitting
    ///    at the midpoint of its 1/`c` slice, so the rank's fractional
    ///    position is `p = (r − before − 0.5) / c ∈ (0, 1)`.
    /// 4. The estimate is `lower + p · (upper − lower)` where `lower`
    ///    is the bucket's inclusive lower bound and `upper` is its
    ///    exclusive upper bound clamped to the observed max (which also
    ///    gives the unbounded overflow bucket a finite width).
    ///
    /// Unlike [`Self::quantile_us`] (always a bucket upper bound, so biased
    /// up by as much as 2×), this tracks where in the bucket the rank
    /// actually falls; a single sample reads back as its bucket
    /// midpoint rather than its bucket ceiling.
    pub fn quantile_interp_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().clamp(1.0, self.count as f64);
        let mut before = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (before + c) as f64 >= rank {
                let lower = bucket_lower_us(i) as f64;
                // A non-empty bucket contains a sample ≥ its lower
                // bound, so max_us ≥ lower and the clamped width is
                // never negative.
                let upper = bucket_upper_us(i).min(self.max_us) as f64;
                let p = (rank - before as f64 - 0.5) / c as f64;
                return lower + p * (upper - lower);
            }
            before += c;
        }
        self.max_us as f64
    }
}

/// A sorted, owned copy of every instrument in a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Span accumulators, name-sorted.
    pub spans: Vec<SpanSnapshot>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub(crate) fn collect(r: &Registry) -> Snapshot {
        let counters = r
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(std::sync::atomic::Ordering::Relaxed)))
            .collect();
        let gauges = r
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.load(std::sync::atomic::Ordering::Relaxed)))
            .collect();
        let spans = r
            .spans
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, s)| {
                let (calls, total_ns, min_ns, max_ns) = s.read();
                SpanSnapshot {
                    name: n.clone(),
                    calls,
                    total_ns,
                    min_ns,
                    max_ns,
                }
            })
            .collect();
        let histograms = r
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, h)| {
                let (buckets, count, sum_us, max_us) = h.read();
                HistogramSnapshot {
                    name: n.clone(),
                    count,
                    sum_us,
                    max_us,
                    buckets,
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            spans,
            histograms,
        }
    }

    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A span snapshot by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.histograms.is_empty()
    }

    /// Render as an aligned, human-readable table (one section per
    /// instrument kind; empty sections are skipped).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.spans.iter().map(|s| s.name.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max(8);
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:width$}  {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:width$}  {v:>12}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:width$}  calls {:>8}  total {:>10}  mean {:>10}  min {:>10}  max {:>10}\n",
                    s.name,
                    s.calls,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for h in &self.histograms {
                // The `_us` naming convention marks duration histograms;
                // everything else holds unitless values (task counts, …).
                let fmt: fn(u64) -> String = if h.name.ends_with("_us") {
                    fmt_us
                } else {
                    |v| v.to_string()
                };
                out.push_str(&format!(
                    "  {:width$}  count {:>8}  mean {:>10}  p50 {:>10}  p99 {:>10}  max {:>10}\n",
                    h.name,
                    h.count,
                    fmt(h.mean_us()),
                    fmt(h.quantile_interp_us(0.50).round() as u64),
                    fmt(h.quantile_interp_us(0.99).round() as u64),
                    fmt(h.max_us),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Render as a JSON object with `counters`, `gauges`, `spans`, and
    /// `histograms` keys (always present). Span fields are nanoseconds,
    /// histogram fields microseconds — the same units the snapshot
    /// structs carry.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_pairs(
            &mut out,
            self.counters.iter().map(|(n, v)| (n, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_pairs(
            &mut out,
            self.gauges.iter().map(|(n, v)| (n, v.to_string())),
        );
        out.push_str("},\"spans\":{");
        push_pairs(
            &mut out,
            self.spans.iter().map(|s| {
                (
                    &s.name,
                    format!(
                        "{{\"calls\":{},\"total_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                        s.calls,
                        s.total_ns,
                        s.mean_ns(),
                        s.min_ns,
                        s.max_ns
                    ),
                )
            }),
        );
        out.push_str("},\"histograms\":{");
        push_pairs(
            &mut out,
            self.histograms.iter().map(|h| {
                (
                    &h.name,
                    format!(
                        "{{\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{:.1},\"p90_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{}}}",
                        h.count,
                        h.sum_us,
                        h.mean_us(),
                        h.quantile_interp_us(0.50),
                        h.quantile_interp_us(0.90),
                        h.quantile_interp_us(0.99),
                        h.max_us
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }
}

/// Append `"name":value` pairs, comma-separated. `value` is raw JSON.
fn push_pairs<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (name, value) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape_json(name));
        out.push_str("\":");
        out.push_str(&value);
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// metric names are plain dotted identifiers, but render defensively.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human duration from nanoseconds (`870ns`, `13.4µs`, `2.1ms`, `4.7s`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Human duration from microseconds.
pub(crate) fn fmt_us(us: u64) -> String {
    fmt_ns(us.saturating_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample() -> Metrics {
        let m = Metrics::enabled();
        m.counter("import.lines.resolved").add(12);
        m.gauge("pool.workers").set(4);
        m.span("import.resolve").enter().stop();
        m.histogram("mc.block_us").record_us(1500);
        m.histogram("mc.block_us").record_us(800);
        m
    }

    #[test]
    fn text_render_has_all_sections() {
        let text = sample().render_text();
        for needle in [
            "counters",
            "gauges",
            "spans",
            "histograms",
            "import.lines.resolved",
            "pool.workers",
            "import.resolve",
            "mc.block_us",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_renders_placeholder_text_and_valid_json() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.to_text(), "(no metrics recorded)\n");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"spans\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_render_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"import.lines.resolved\":12"));
        assert!(json.contains("\"pool.workers\":4"));
        assert!(json.contains("\"calls\":1"));
        assert!(json.contains("\"count\":2"));
        // Balanced braces (no nesting surprises from hand-rolled emit).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let m = Metrics::enabled();
        let h = m.histogram("lat_us");
        for us in [10u64, 20, 30, 40, 1000] {
            h.record_us(us);
        }
        let snap = m.snapshot();
        let hs = snap.histogram("lat_us").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.max_us, 1000);
        let p50 = hs.quantile_us(0.5);
        assert!((16..=64).contains(&p50), "p50 {p50}");
        assert_eq!(hs.quantile_us(1.0), 1000);
        assert!(hs.quantile_us(0.99) <= 1000);
        assert_eq!(hs.mean_us(), 220);
    }

    #[test]
    fn interpolated_quantiles_exact_values() {
        // Samples 10/20/30/40 land in buckets [8,16), [16,32)×2,
        // [32,64); max_us = 40 clamps the top bucket's upper bound.
        let m = Metrics::enabled();
        let h = m.histogram("lat_us");
        for us in [10u64, 20, 30, 40] {
            h.record_us(us);
        }
        let snap = m.snapshot();
        let hs = snap.histogram("lat_us").unwrap();
        // q=0.25 → rank 1 → bucket [8,16), p = 0.5 → 8 + 0.5·8.
        assert_eq!(hs.quantile_interp_us(0.25), 12.0);
        // q=0.5 → rank 2 → bucket [16,32) (before=1, c=2), p = 0.25.
        assert_eq!(hs.quantile_interp_us(0.50), 20.0);
        // q=0.75 → rank 3 → same bucket, p = 0.75 → 16 + 0.75·16.
        assert_eq!(hs.quantile_interp_us(0.75), 28.0);
        // q=1.0 → rank 4 → bucket [32, min(64, 40)=40), p = 0.5.
        assert_eq!(hs.quantile_interp_us(1.00), 36.0);
        // q=0 clamps the rank to 1 — same as q=0.25 here.
        assert_eq!(hs.quantile_interp_us(0.0), 12.0);
    }

    #[test]
    fn interpolated_quantile_single_sample_is_bucket_midpoint() {
        // One 100 µs sample: bucket [64,128) clamped to [64,100],
        // rank 1 of 1 → p = 0.5 → 64 + 0.5·36 = 82 exactly.
        let m = Metrics::enabled();
        m.histogram("one_us").record_us(100);
        let snap = m.snapshot();
        let hs = snap.histogram("one_us").unwrap();
        assert_eq!(hs.quantile_interp_us(0.50), 82.0);
        assert_eq!(hs.quantile_interp_us(0.99), 82.0);
        // The step estimator reads the same sample as 100 (clamped
        // bucket ceiling) — the interpolated value is strictly tighter.
        assert_eq!(hs.quantile_us(0.50), 100);
    }

    #[test]
    fn interpolated_quantile_empty_is_zero() {
        let hs = HistogramSnapshot {
            name: "empty_us".into(),
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; N_BUCKETS],
        };
        assert_eq!(hs.quantile_interp_us(0.5), 0.0);
    }

    #[test]
    fn interpolated_quantile_overflow_bucket_uses_observed_max() {
        // Force the overflow bucket: its upper bound is u64::MAX, so
        // the clamp to max_us is what keeps the estimate finite.
        let mut buckets = [0u64; N_BUCKETS];
        buckets[N_BUCKETS - 1] = 2;
        let lower = bucket_lower_us(N_BUCKETS - 1);
        let max = lower + 1_000_000;
        let hs = HistogramSnapshot {
            name: "huge_us".into(),
            count: 2,
            sum_us: 0,
            max_us: max,
            buckets,
        };
        // rank 2 of 2 in one bucket → p = 0.75.
        let expect = lower as f64 + 0.75 * (max - lower) as f64;
        assert_eq!(hs.quantile_interp_us(1.0), expect);
        assert!(hs.quantile_interp_us(1.0).is_finite());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain.name"), "plain.name");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(870), "870ns");
        assert_eq!(fmt_ns(13_400), "13.4µs");
        assert_eq!(fmt_ns(2_100_000), "2.1ms");
        assert_eq!(fmt_ns(4_700_000_000), "4.70s");
        assert_eq!(fmt_us(1500), "1.5ms");
    }
}
