#![warn(missing_docs)]

//! # culinaria-obs
//!
//! A hand-rolled, dependency-free observability layer for the
//! `culinaria` pipeline: monotonic-clock span timers, typed atomic
//! counters and gauges, fixed-bucket latency histograms, and a registry
//! that renders to aligned text or JSON. The container this workspace
//! builds in is offline, so nothing here leans on `tracing`,
//! `metrics`, or any other external crate — the whole layer is ~700
//! lines of `std`.
//!
//! ## Design
//!
//! The root handle is [`Metrics`]. It is either **enabled** (backed by
//! a shared registry) or **disabled** (a no-op sink):
//!
//! * [`Metrics::enabled`] — instruments record into a registry that can
//!   be snapshotted and rendered at exit;
//! * [`Metrics::disabled`] — every handle is `None` inside, every
//!   operation is a single discriminant check that the optimizer folds
//!   away. No clock reads, no atomics, no allocation. The
//!   `obs_overhead` group of the `pairing_score` Criterion bench A/Bs
//!   this against uninstrumented code.
//!
//! Instrument handles ([`Counter`], [`Gauge`], [`Histogram`], [`Span`])
//! are fetched **once** per region of interest (a registry lock +
//! lookup), then used lock-free from any thread — counters and
//! histogram buckets are plain atomics. Hot loops therefore never touch
//! the registry.
//!
//! ## Naming scheme
//!
//! Metric names are dotted lowercase paths,
//! `<subsystem>.<stage>[.<detail>]` — e.g. `import.resolve`,
//! `mc.block_us`, `pool.worker.busy_us`. Nested spans join names with
//! `.` via [`Span::child`], so the rendered registry reads as a tree
//! flattened in lexicographic order. Histogram names carry their unit
//! as a suffix (`_us`); counters and gauges are unit-free counts unless
//! suffixed. DESIGN.md §9 documents the scheme and the full name
//! inventory.
//!
//! ## Determinism
//!
//! Instrumentation never feeds back into analysis: enabling metrics
//! changes *what is recorded*, not *what is computed*, so every
//! bit-identity contract of the pipeline (DESIGN.md §6.2) holds with
//! metrics on or off. Wall-clock values and per-worker load split vary
//! run to run, as timings do; semantic counters (recipes scored, cache
//! entries, lines resolved) are exact and reproducible.
//!
//! ## Example
//!
//! ```
//! use culinaria_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! let resolved = metrics.counter("import.lines.resolved");
//! let span = metrics.span("import.resolve");
//! {
//!     let _guard = span.enter();
//!     resolved.add(42);
//! } // guard drop records the span's wall time
//!
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("import.lines.resolved"), Some(42));
//! assert!(metrics.render_text().contains("import.resolve"));
//! assert!(metrics.render_json().starts_with('{'));
//! ```

pub mod counter;
pub mod histogram;
pub mod snapshot;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{HistTimer, Histogram};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::{Span, SpanGuard};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::{Arc, Mutex};

use histogram::HistogramCore;
use span::SpanStat;

/// The shared registry behind an enabled [`Metrics`]. Maps are keyed by
/// name and hold `Arc`s to the atomic cores, so handles outlive any
/// lock; `BTreeMap` keeps snapshots sorted without a render-time sort.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanStat>>>,
}

/// The root observability handle: a clonable reference to a metrics
/// registry, or a no-op sink (see the crate docs for the enabled /
/// disabled split).
///
/// Cloning is cheap (an `Option<Arc>`); clones share one registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Metrics {
    /// A collecting registry: instruments record, [`Metrics::snapshot`]
    /// reads everything back.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// The no-op sink: every handle it vends is inert, every operation
    /// reduces to one branch. This is the default.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// Build enabled or disabled in one call — the shape CLI flags want.
    pub fn new(enabled: bool) -> Metrics {
        if enabled {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        }
    }

    /// True when backed by a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A monotonically increasing counter. Fetch once, then
    /// [`Counter::add`] is a single relaxed atomic.
    pub fn counter(&self, name: &str) -> Counter {
        Counter::new(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.counters
                    .lock()
                    .expect("obs registry poisoned")
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// A last-value gauge (signed, so depths/deltas fit).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge::new(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.gauges
                    .lock()
                    .expect("obs registry poisoned")
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// A fixed-bucket latency histogram (power-of-two microsecond
    /// buckets; see [`histogram`]). Name it with a `_us` suffix.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram::new(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.histograms
                    .lock()
                    .expect("obs registry poisoned")
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// A named span timer. [`Span::enter`] returns a scoped guard whose
    /// drop records one call + its wall time; [`Span::child`] derives
    /// nested spans (`parent.child`).
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span::noop(),
            Some(r) => Span::new(
                self.clone(),
                name.to_owned(),
                Some(Arc::clone(
                    r.spans
                        .lock()
                        .expect("obs registry poisoned")
                        .entry(name.to_owned())
                        .or_default(),
                )),
            ),
        }
    }

    /// Time a closure under a span: sugar for `span(name).enter()`
    /// around `f`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let span = self.span(name);
        let _guard = span.enter();
        f()
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name. Disabled metrics snapshot empty.
    pub fn snapshot(&self) -> Snapshot {
        let Some(r) = &self.inner else {
            return Snapshot::default();
        };
        Snapshot::collect(r)
    }

    /// Render the current snapshot as an aligned text table.
    pub fn render_text(&self) -> String {
        self.snapshot().to_text()
    }

    /// Render the current snapshot as a JSON object.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("x");
        c.add(5);
        m.gauge("g").set(3);
        m.histogram("h_us").record_us(10);
        let span = m.span("s");
        drop(span.enter());
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn enabled_records_and_snapshots_sorted() {
        let m = Metrics::new(true);
        assert!(m.is_enabled());
        m.counter("b.two").add(2);
        m.counter("a.one").incr();
        m.counter("a.one").add(9);
        m.gauge("depth").set(7);
        m.gauge("depth").add(-2);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"]);
        assert_eq!(snap.counter("a.one"), Some(10));
        assert_eq!(snap.counter("b.two"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("depth"), Some(5));
    }

    #[test]
    fn clones_share_a_registry() {
        let m = Metrics::enabled();
        let c1 = m.counter("shared");
        let m2 = m.clone();
        let c2 = m2.counter("shared");
        c1.add(1);
        c2.add(2);
        assert_eq!(m.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn spans_time_and_count() {
        let m = Metrics::enabled();
        let span = m.span("outer");
        for _ in 0..3 {
            let _g = span.enter();
        }
        let inner = span.child("inner");
        drop(inner.enter());
        let snap = m.snapshot();
        let outer = snap.span("outer").expect("outer recorded");
        assert_eq!(outer.calls, 3);
        assert!(outer.max_ns >= outer.min_ns);
        assert!(snap.span("outer.inner").is_some());
    }

    #[test]
    fn time_closure_returns_value() {
        let m = Metrics::enabled();
        let got = m.time("work", || 41 + 1);
        assert_eq!(got, 42);
        assert_eq!(m.snapshot().span("work").unwrap().calls, 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let m = Metrics::enabled();
        let c = m.counter("racing");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("racing"), Some(4000));
    }

    #[test]
    fn default_is_disabled() {
        let m = Metrics::default();
        assert!(!m.is_enabled());
    }
}
