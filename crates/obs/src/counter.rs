//! Counter and gauge handles — the cheap, hot-path-safe instruments.
//!
//! Both are thin wrappers around an `Option<Arc<Atomic*>>`: the `None`
//! (disabled) arm is one branch with no side effects, the `Some` arm a
//! single relaxed atomic operation. Handles are `Clone + Send + Sync`
//! and never touch the registry after creation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// Relaxed ordering is enough: counters are only read after the work
/// they instrument has been joined (a pool scope, a snapshot at exit).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn new(core: Option<Arc<AtomicU64>>) -> Counter {
        Counter(core)
    }

    /// An inert counter — what disabled registries vend.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value gauge (signed, so it can carry depths and deltas).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub(crate) fn new(core: Option<Arc<AtomicI64>>) -> Gauge {
        Gauge(core)
    }

    /// An inert gauge — what disabled registries vend.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the current value by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9);
        g.add(-4);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn live_counter_accumulates() {
        let c = Counter::new(Some(Arc::new(AtomicU64::new(0))));
        c.add(2);
        c.incr();
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn live_gauge_sets_and_adjusts() {
        let g = Gauge::new(Some(Arc::new(AtomicI64::new(0))));
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
