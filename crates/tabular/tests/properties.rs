//! Property-based tests of the tabular invariants.

use proptest::prelude::*;

use culinaria_tabular::{csv, Column, Frame, SortOrder, Value};

/// Strategy: a frame with a string key column and a float value column,
/// 0..60 rows.
fn arb_frame() -> impl Strategy<Value = Frame> {
    let row = (
        proptest::sample::select(vec!["a", "b", "c", "d", "e"]),
        proptest::option::of(-1e6f64..1e6),
        0i64..1000,
    );
    proptest::collection::vec(row, 0..60).prop_map(|rows| {
        let keys: Vec<&str> = rows.iter().map(|r| r.0).collect();
        let vals: Vec<Option<f64>> = rows.iter().map(|r| r.1).collect();
        let counts: Vec<i64> = rows.iter().map(|r| r.2).collect();
        Frame::from_columns(vec![
            ("key", Column::from_strs(&keys)),
            ("val", Column::Float(vals)),
            ("count", Column::from_i64s(&counts)),
        ])
        .expect("fresh frame")
    })
}

/// Strategy: arbitrary cell text to stress CSV quoting.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n]{0,20}").expect("valid regex")
}

proptest! {
    #[test]
    fn filter_never_grows(frame in arb_frame(), threshold in -1e6f64..1e6) {
        let out = frame
            .filter(|r| r.get("val").and_then(|v| v.as_float()).unwrap_or(f64::MIN) > threshold)
            .expect("filter works");
        prop_assert!(out.n_rows() <= frame.n_rows());
        prop_assert_eq!(out.n_cols(), frame.n_cols());
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(frame in arb_frame()) {
        let sorted = frame.sort_by(&["val"]).expect("column exists");
        prop_assert_eq!(sorted.n_rows(), frame.n_rows());
        // Ordered by total_cmp (nulls first).
        let vals: Vec<Value> = sorted.column("val").expect("exists").iter_values().collect();
        for w in vals.windows(2) {
            prop_assert!(w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
        }
        // Multiset of counts preserved.
        let mut before: Vec<i64> = frame
            .column("count").expect("exists")
            .iter_values().map(|v| v.as_int().expect("non-null ints")).collect();
        let mut after: Vec<i64> = sorted
            .column("count").expect("exists")
            .iter_values().map(|v| v.as_int().expect("non-null ints")).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn group_counts_sum_to_rows(frame in arb_frame()) {
        let gb = frame.group_by(&["key"]).expect("column exists");
        let counted = gb.count();
        let total: i64 = counted
            .column("count").expect("count column")
            .iter_values().map(|v| v.as_int().expect("counts are ints")).sum();
        prop_assert_eq!(total as usize, frame.n_rows());
        prop_assert!(counted.n_rows() <= 5); // at most 5 distinct keys
    }

    #[test]
    fn group_mean_within_min_max(frame in arb_frame()) {
        let gb = frame.group_by(&["key"]).expect("column exists");
        let mean = gb.mean("val").expect("numeric");
        let min = gb.min("val").expect("numeric");
        let max = gb.max("val").expect("numeric");
        for row in 0..mean.n_rows() {
            let m = mean.get(row, "val_mean").expect("cell");
            if let Some(m) = m.as_float() {
                let lo = min.get(row, "val_min").expect("cell").as_float().expect("min exists when mean does");
                let hi = max.get(row, "val_max").expect("cell").as_float().expect("max exists when mean does");
                prop_assert!(lo <= m + 1e-9 && m <= hi + 1e-9, "{lo} <= {m} <= {hi}");
            }
        }
    }

    #[test]
    fn csv_roundtrip_preserves_frame(frame in arb_frame()) {
        let text = frame.to_csv();
        let back = csv::read_csv_str(&text).expect("own CSV parses");
        prop_assert_eq!(back.n_rows(), frame.n_rows());
        prop_assert_eq!(back.n_cols(), frame.n_cols());
        for row in 0..frame.n_rows() {
            for name in frame.names() {
                let a = frame.get(row, name).expect("cell");
                let b = back.get(row, name).expect("cell");
                match (a.as_float(), b.as_float()) {
                    (Some(x), Some(y)) => prop_assert!(
                        (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                        "{name}[{row}]: {x} vs {y}"
                    ),
                    _ => prop_assert_eq!(a, b, "{}[{}]", name, row),
                }
            }
        }
    }

    #[test]
    fn csv_escaping_roundtrips_arbitrary_text(cells in proptest::collection::vec(arb_text(), 1..12)) {
        let column = Column::from_strings(cells.clone());
        let frame = Frame::from_columns(vec![("text", column)]).expect("fresh frame");
        let back = csv::read_csv_str(&frame.to_csv()).expect("own CSV parses");
        prop_assert_eq!(back.n_rows(), cells.len());
        for (row, cell) in cells.iter().enumerate() {
            let v = back.get(row, "text").expect("cell");
            // Empty strings round-trip as nulls (CSV has no distinction);
            // numeric-looking or bool-looking strings change type but not text.
            let rendered = v.to_string();
            prop_assert_eq!(&rendered, cell, "row {}", row);
        }
    }

    #[test]
    fn join_output_bounded_by_key_product(frame in arb_frame()) {
        let right = Frame::from_columns(vec![
            ("key", Column::from_strs(&["a", "b", "x"])),
            ("z", Column::from_f64s(&[1.0, 2.0, 3.0])),
        ])
        .expect("fresh frame");
        let joined = frame.inner_join(&right, &["key"], &["key"]).expect("join");
        // Each left row matches at most one right row here (right keys unique).
        prop_assert!(joined.n_rows() <= frame.n_rows());
        prop_assert!(joined.has_column("z"));
    }

    #[test]
    fn take_repeats_and_reorders(frame in arb_frame(), seed in 0usize..1000) {
        prop_assume!(frame.n_rows() > 0);
        let idx: Vec<usize> = (0..frame.n_rows()).map(|i| (i * 7 + seed) % frame.n_rows()).collect();
        let taken = frame.take(&idx);
        prop_assert_eq!(taken.n_rows(), idx.len());
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(
                taken.get(out_row, "count").expect("cell"),
                frame.get(src, "count").expect("cell")
            );
        }
    }

    #[test]
    fn sort_desc_is_reverse_of_asc_for_unique_keys(n in 1usize..40) {
        let vals: Vec<i64> = (0..n as i64).collect();
        let frame = Frame::from_columns(vec![("v", Column::from_i64s(&vals))]).expect("fresh frame");
        let asc = frame.sort_by_with(&[("v", SortOrder::Ascending)]).expect("sort");
        let desc = frame.sort_by_with(&[("v", SortOrder::Descending)]).expect("sort");
        for i in 0..n {
            prop_assert_eq!(
                asc.get(i, "v").expect("cell"),
                desc.get(n - 1 - i, "v").expect("cell")
            );
        }
    }
}
