//! Hash-based group-by with the aggregations the analyses need.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::column::{Column, ColumnType};
use crate::error::{Result, TabularError};
use crate::frame::Frame;
use crate::value::Value;

/// Feed one value into a row-key hash with [`crate::value::GroupKey`]
/// semantics (floats by bit pattern, types always distinct), without
/// materializing the key.
fn hash_group_value(v: &Value, h: &mut impl Hasher) {
    match v {
        Value::Null => 0u8.hash(h),
        Value::Bool(b) => {
            1u8.hash(h);
            b.hash(h);
        }
        Value::Int(x) => {
            2u8.hash(h);
            x.hash(h);
        }
        Value::Float(x) => {
            3u8.hash(h);
            x.to_bits().hash(h);
        }
        Value::Str(s) => {
            4u8.hash(h);
            s.hash(h);
        }
    }
}

/// Equality under the same grouping semantics (floats by bit pattern,
/// no cross-type coercion) — string comparison borrows, no clones.
fn group_value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// The result of [`Frame::group_by`]: groups of row indices keyed by the
/// values of the grouping columns, in first-appearance order.
#[derive(Debug, Clone)]
pub struct GroupBy<'a> {
    frame: &'a Frame,
    key_columns: Vec<String>,
    /// Group keys in first-appearance order.
    keys: Vec<Vec<Value>>,
    /// Row indices per group, parallel to `keys`.
    groups: Vec<Vec<usize>>,
}

impl Frame {
    /// Group rows by the named columns.
    pub fn group_by(&self, columns: &[&str]) -> Result<GroupBy<'_>> {
        for &c in columns {
            // Validate before any work.
            self.column(c)?;
        }
        let key_vals: Vec<Vec<Value>> = columns
            .iter()
            .map(|&c| self.column(c).expect("validated").iter_values().collect())
            .collect();

        // Rows hash straight into a u64 key — no per-row `Vec<GroupKey>`
        // (and no string clones) just to probe the map. Hash collisions
        // are resolved by comparing against the stored group keys.
        let n_rows = self.n_rows();
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(n_rows.min(1024));

        for row in 0..n_rows {
            let mut hasher = DefaultHasher::new();
            for col in &key_vals {
                hash_group_value(&col[row], &mut hasher);
            }
            let candidates = seen.entry(hasher.finish()).or_default();
            let slot = candidates
                .iter()
                .copied()
                .find(|&s| {
                    key_vals
                        .iter()
                        .enumerate()
                        .all(|(ki, col)| group_value_eq(&order[s][ki], &col[row]))
                })
                .unwrap_or_else(|| {
                    order.push(key_vals.iter().map(|col| col[row].clone()).collect());
                    groups.push(Vec::new());
                    candidates.push(groups.len() - 1);
                    groups.len() - 1
                });
            groups[slot].push(row);
        }

        Ok(GroupBy {
            frame: self,
            key_columns: columns.iter().map(|&c| c.to_owned()).collect(),
            keys: order,
            groups,
        })
    }
}

impl<'a> GroupBy<'a> {
    /// Number of distinct groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Row indices of each group, parallel to the key order.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Build the output frame skeleton: one row per group with the key
    /// columns filled in.
    fn key_frame(&self) -> Frame {
        let mut out = Frame::new();
        for (ki, name) in self.key_columns.iter().enumerate() {
            // Determine the column type from the source frame.
            let src_ty = self
                .frame
                .column(name)
                .expect("key column exists")
                .column_type();
            let mut col = Column::empty(src_ty);
            for key in &self.keys {
                col.push(key[ki].clone())
                    .expect("key value fits its column");
            }
            out.add_column(name, col).expect("unique key names");
        }
        out
    }

    /// Group sizes, as a frame with the key columns plus `count`.
    pub fn count(&self) -> Frame {
        let mut out = self.key_frame();
        let counts: Vec<i64> = self.groups.iter().map(|g| g.len() as i64).collect();
        out.add_column("count", Column::from_i64s(&counts))
            .expect("count column is fresh");
        out
    }

    /// Apply a numeric fold over `column` per group and attach the result
    /// as `out_name`.
    fn numeric_agg(
        &self,
        column: &str,
        out_name: &str,
        f: impl Fn(&[f64]) -> Option<f64>,
    ) -> Result<Frame> {
        let col = self.frame.column(column)?;
        match col.column_type() {
            ColumnType::Int | ColumnType::Float => {}
            other => {
                return Err(TabularError::TypeMismatch {
                    column: column.to_owned(),
                    expected: "numeric",
                    actual: other.name(),
                })
            }
        }
        let vals: Vec<Option<f64>> = col.iter_values().map(|v| v.as_float()).collect();
        let mut out = self.key_frame();
        let mut agg: Vec<Option<f64>> = Vec::with_capacity(self.groups.len());
        let mut scratch: Vec<f64> = Vec::new();
        for g in &self.groups {
            scratch.clear();
            scratch.extend(g.iter().filter_map(|&i| vals[i]));
            agg.push(f(&scratch));
        }
        out.add_column(out_name, Column::Float(agg))
            .expect("fresh aggregation column");
        Ok(out)
    }

    /// Per-group arithmetic mean of a numeric column (nulls skipped; empty
    /// groups yield null). Output column: `<column>_mean`.
    pub fn mean(&self, column: &str) -> Result<Frame> {
        self.numeric_agg(column, &format!("{column}_mean"), |xs| {
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        })
    }

    /// Per-group sum. Output column: `<column>_sum`. Empty groups sum to 0.
    pub fn sum(&self, column: &str) -> Result<Frame> {
        self.numeric_agg(column, &format!("{column}_sum"), |xs| {
            Some(xs.iter().sum::<f64>())
        })
    }

    /// Per-group minimum. Output column: `<column>_min`.
    pub fn min(&self, column: &str) -> Result<Frame> {
        self.numeric_agg(column, &format!("{column}_min"), |xs| {
            xs.iter().copied().reduce(f64::min)
        })
    }

    /// Per-group maximum. Output column: `<column>_max`.
    pub fn max(&self, column: &str) -> Result<Frame> {
        self.numeric_agg(column, &format!("{column}_max"), |xs| {
            xs.iter().copied().reduce(f64::max)
        })
    }

    /// Apply several aggregations at once. Produces the key columns plus
    /// one column per `(column, agg)` pair.
    pub fn aggregate(&self, specs: &[(&str, Aggregation)]) -> Result<Frame> {
        let mut out = self.key_frame();
        for &(column, agg) in specs {
            let partial = match agg {
                Aggregation::Count => {
                    let counts: Vec<i64> = self.groups.iter().map(|g| g.len() as i64).collect();
                    let mut f = self.key_frame();
                    f.add_column(&format!("{column}_count"), Column::from_i64s(&counts))
                        .expect("fresh column");
                    f
                }
                Aggregation::Mean => self.mean(column)?,
                Aggregation::Sum => self.sum(column)?,
                Aggregation::Min => self.min(column)?,
                Aggregation::Max => self.max(column)?,
            };
            // Attach the last column of `partial` to `out`.
            let name = partial
                .names()
                .last()
                .expect("agg output has columns")
                .clone();
            out.add_column(&name, partial.column(&name)?.clone())?;
        }
        Ok(out)
    }
}

/// Aggregation kinds supported by [`GroupBy::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Group size.
    Count,
    /// Arithmetic mean (nulls skipped).
    Mean,
    /// Sum (nulls skipped).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            (
                "region",
                Column::from_strs(&["ITA", "JPN", "ITA", "JPN", "ITA"]),
            ),
            (
                "v",
                Column::Float(vec![Some(1.0), Some(10.0), Some(3.0), None, Some(5.0)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn groups_in_first_appearance_order() {
        let f = sample();
        let g = f.group_by(&["region"]).unwrap();
        assert_eq!(g.n_groups(), 2);
        let counted = g.count();
        assert_eq!(counted.get(0, "region").unwrap(), Value::str("ITA"));
        assert_eq!(counted.get(0, "count").unwrap(), Value::Int(3));
        assert_eq!(counted.get(1, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn mean_skips_nulls() {
        let f = sample();
        let m = f.group_by(&["region"]).unwrap().mean("v").unwrap();
        assert_eq!(m.get(0, "v_mean").unwrap(), Value::Float(3.0));
        // JPN has one null; mean over the single non-null value.
        assert_eq!(m.get(1, "v_mean").unwrap(), Value::Float(10.0));
    }

    #[test]
    fn sum_min_max() {
        let f = sample();
        let gb = f.group_by(&["region"]).unwrap();
        assert_eq!(
            gb.sum("v").unwrap().get(0, "v_sum").unwrap(),
            Value::Float(9.0)
        );
        assert_eq!(
            gb.min("v").unwrap().get(0, "v_min").unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            gb.max("v").unwrap().get(0, "v_max").unwrap(),
            Value::Float(5.0)
        );
    }

    #[test]
    fn aggregate_multi() {
        let f = sample();
        let out = f
            .group_by(&["region"])
            .unwrap()
            .aggregate(&[("v", Aggregation::Mean), ("v", Aggregation::Count)])
            .unwrap();
        assert!(out.has_column("v_mean"));
        assert!(out.has_column("v_count"));
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn non_numeric_agg_rejected() {
        let f = sample();
        let err = f.group_by(&["region"]).unwrap().mean("region").unwrap_err();
        assert!(matches!(err, TabularError::TypeMismatch { .. }));
    }

    #[test]
    fn group_by_multiple_keys() {
        let f = Frame::from_columns(vec![
            ("a", Column::from_strs(&["x", "x", "y"])),
            ("b", Column::from_i64s(&[1, 1, 1])),
            ("v", Column::from_f64s(&[1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let g = f.group_by(&["a", "b"]).unwrap();
        assert_eq!(g.n_groups(), 2);
    }

    #[test]
    fn empty_group_mean_is_null() {
        // All-null numeric column → group exists, mean is null.
        let f = Frame::from_columns(vec![
            ("k", Column::from_strs(&["a"])),
            ("v", Column::Float(vec![None])),
        ])
        .unwrap();
        let m = f.group_by(&["k"]).unwrap().mean("v").unwrap();
        assert!(m.get(0, "v_mean").unwrap().is_null());
    }

    #[test]
    fn many_groups_keep_first_appearance_order() {
        // 0, 1, …, 49, then the same keys again in reverse: group order
        // must follow the first pass, counts must merge both passes.
        let keys: Vec<i64> = (0..50).chain((0..50).rev()).collect();
        let f = Frame::from_columns(vec![("k", Column::from_i64s(&keys))]).unwrap();
        let g = f.group_by(&["k"]).unwrap();
        assert_eq!(g.n_groups(), 50);
        let c = g.count();
        for i in 0..50 {
            assert_eq!(c.get(i, "k").unwrap(), Value::Int(i as i64));
            assert_eq!(c.get(i, "count").unwrap(), Value::Int(2));
        }
    }

    #[test]
    fn float_keys_group_by_bit_pattern() {
        let f = Frame::from_columns(vec![("k", Column::from_f64s(&[0.0, -0.0, 0.0]))]).unwrap();
        // 0.0 == -0.0 numerically but they are distinct grouping keys.
        assert_eq!(f.group_by(&["k"]).unwrap().n_groups(), 2);
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sample().group_by(&["nope"]).is_err());
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let f = Frame::from_columns(vec![
            ("k", Column::Str(vec![Some("a".into()), None, None])),
            ("v", Column::from_f64s(&[1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let g = f.group_by(&["k"]).unwrap();
        assert_eq!(g.n_groups(), 2);
        let c = g.count();
        assert_eq!(c.get(1, "count").unwrap(), Value::Int(2));
        assert!(c.get(1, "k").unwrap().is_null());
    }
}
