//! Typed, nullable column storage.
//!
//! A [`Column`] is one of four typed vectors with per-cell nullability.
//! Nulls are represented with `Option` rather than a validity bitmap: the
//! frames produced by the culinary analyses are small (thousands of rows),
//! so clarity wins over bit-packing.

use crate::error::{Result, TabularError};
use crate::value::Value;

/// The type tag of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl ColumnType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Bool => "bool",
        }
    }
}

/// A typed, nullable column of cells.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column. NaN cells are normalized to null on insertion.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Build a non-null integer column.
    pub fn from_i64s(vals: &[i64]) -> Self {
        Column::Int(vals.iter().copied().map(Some).collect())
    }

    /// Build a non-null float column. NaNs become null.
    pub fn from_f64s(vals: &[f64]) -> Self {
        Column::Float(
            vals.iter()
                .map(|&v| if v.is_nan() { None } else { Some(v) })
                .collect(),
        )
    }

    /// Build a non-null string column.
    pub fn from_strs(vals: &[&str]) -> Self {
        Column::Str(vals.iter().map(|s| Some((*s).to_owned())).collect())
    }

    /// Build a non-null string column from owned strings.
    pub fn from_strings(vals: Vec<String>) -> Self {
        Column::Str(vals.into_iter().map(Some).collect())
    }

    /// Build a non-null boolean column.
    pub fn from_bools(vals: &[bool]) -> Self {
        Column::Bool(vals.iter().copied().map(Some).collect())
    }

    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Column::Int(Vec::new()),
            ColumnType::Float => Column::Float(Vec::new()),
            ColumnType::Str => Column::Str(Vec::new()),
            ColumnType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type tag.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Int(_) => ColumnType::Int,
            Column::Float(_) => ColumnType::Float,
            Column::Str(_) => ColumnType::Str,
            Column::Bool(_) => ColumnType::Bool,
        }
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Float(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Str(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|c| c.is_none()).count(),
        }
    }

    /// The cell at `row` as a dynamic [`Value`], or `None` if out of bounds.
    pub fn get(&self, row: usize) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(match self {
            Column::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(v) => v[row]
                .as_ref()
                .map(|s| Value::Str(s.clone()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        })
    }

    /// Append a dynamic value, coercing `Int` into `Float` columns.
    ///
    /// Returns a [`TabularError::TypeMismatch`] when the value's type does
    /// not fit the column (the column name is unknown at this level, so the
    /// caller is expected to remap the error with the real name).
    pub fn push(&mut self, value: Value) -> Result<()> {
        let mismatch = |col: &Column, v: &Value| TabularError::TypeMismatch {
            column: String::new(),
            expected: col.column_type().name(),
            actual: match v {
                Value::Null => "null",
                Value::Int(_) => "int",
                Value::Float(_) => "float",
                Value::Str(_) => "str",
                Value::Bool(_) => "bool",
            },
        };
        match (&mut *self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(if x.is_nan() { None } else { Some(x) }),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, v) => return Err(mismatch(col, &v)),
        }
        Ok(())
    }

    /// A new column containing the cells at `indices`, in order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds (indices are produced
    /// internally by filter/sort/join, which guarantee validity).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Borrow as `&[Option<f64>]`, if this is a float column.
    pub fn as_float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[Option<i64>]`, if this is an int column.
    pub fn as_int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[Option<String>]`, if this is a string column.
    pub fn as_str_slice(&self) -> Option<&[Option<String>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Iterate over all cells as dynamic [`Value`]s.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Numeric view: each cell as `f64` (ints widened, nulls and
    /// non-numerics skipped). Useful for aggregations.
    pub fn iter_numeric(&self) -> impl Iterator<Item = f64> + '_ {
        self.iter_values().filter_map(|v| v.as_float())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Column::from_i64s(&[1, 2, 3]).len(), 3);
        assert_eq!(Column::from_f64s(&[1.0]).len(), 1);
        assert_eq!(Column::from_strs(&["a", "b"]).len(), 2);
        assert_eq!(Column::from_bools(&[true]).len(), 1);
        assert!(Column::empty(ColumnType::Int).is_empty());
    }

    #[test]
    fn nan_normalized_to_null() {
        let c = Column::from_f64s(&[1.0, f64::NAN, 2.0]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1), Some(Value::Null));
    }

    #[test]
    fn get_and_out_of_bounds() {
        let c = Column::from_i64s(&[10, 20]);
        assert_eq!(c.get(0), Some(Value::Int(10)));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn push_matching_and_coercion() {
        let mut c = Column::empty(ColumnType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Int(2)).unwrap(); // int widens into float column
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Some(Value::Float(2.0)));
        assert_eq!(c.get(2), Some(Value::Null));
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::empty(ColumnType::Int);
        let err = c.push(Value::str("nope")).unwrap_err();
        assert!(matches!(err, TabularError::TypeMismatch { .. }));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_strs(&["a", "b", "c"]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Some(Value::str("c")));
        assert_eq!(t.get(1), Some(Value::str("a")));
        assert_eq!(t.get(2), Some(Value::str("a")));
    }

    #[test]
    fn numeric_iter_skips_nulls() {
        let c = Column::Float(vec![Some(1.0), None, Some(3.0)]);
        let vals: Vec<f64> = c.iter_numeric().collect();
        assert_eq!(vals, vec![1.0, 3.0]);
    }

    #[test]
    fn numeric_iter_widens_ints() {
        let c = Column::from_i64s(&[2, 4]);
        let vals: Vec<f64> = c.iter_numeric().collect();
        assert_eq!(vals, vec![2.0, 4.0]);
    }

    #[test]
    fn slice_accessors() {
        let f = Column::from_f64s(&[1.0]);
        assert!(f.as_float_slice().is_some());
        assert!(f.as_int_slice().is_none());
        let i = Column::from_i64s(&[1]);
        assert!(i.as_int_slice().is_some());
        let s = Column::from_strs(&["x"]);
        assert!(s.as_str_slice().is_some());
    }

    #[test]
    fn column_type_names() {
        assert_eq!(ColumnType::Int.name(), "int");
        assert_eq!(ColumnType::Float.name(), "float");
        assert_eq!(ColumnType::Str.name(), "str");
        assert_eq!(ColumnType::Bool.name(), "bool");
    }
}
