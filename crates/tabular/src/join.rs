//! Hash inner join between two frames.

use std::collections::HashMap;

use crate::error::{Result, TabularError};
use crate::frame::Frame;
use crate::value::GroupKey;

impl Frame {
    /// Inner join with `other` on equality of the named key columns
    /// (`left_on[i]` joins against `right_on[i]`).
    ///
    /// Output columns: all of `self`'s columns, followed by `other`'s
    /// non-key columns. A right column whose name collides with a left
    /// column is suffixed with `_right`. Rows with null join keys never
    /// match (SQL semantics). Output order: left-row order, then right-row
    /// order within duplicate key matches.
    pub fn inner_join(&self, other: &Frame, left_on: &[&str], right_on: &[&str]) -> Result<Frame> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(TabularError::UnknownColumn(
                "join key lists must be non-empty and equal length".to_owned(),
            ));
        }
        for &c in left_on {
            self.column(c)?;
        }
        for &c in right_on {
            other.column(c)?;
        }

        // Build hash table over the (smaller) right side.
        let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
        'right: for row in 0..other.n_rows() {
            let mut key = Vec::with_capacity(right_on.len());
            for &c in right_on {
                let v = other.get(row, c).expect("validated column, row in range");
                if v.is_null() {
                    continue 'right;
                }
                key.push(v.group_key());
            }
            table.entry(key).or_default().push(row);
        }

        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<usize> = Vec::new();
        'left: for row in 0..self.n_rows() {
            let mut key = Vec::with_capacity(left_on.len());
            for &c in left_on {
                let v = self.get(row, c).expect("validated column, row in range");
                if v.is_null() {
                    continue 'left;
                }
                key.push(v.group_key());
            }
            if let Some(matches) = table.get(&key) {
                for &r in matches {
                    left_idx.push(row);
                    right_idx.push(r);
                }
            }
        }

        let mut out = self.take(&left_idx);
        let right_keys: Vec<&str> = right_on.to_vec();
        for (name, _) in other.names().iter().zip(0..) {
            if right_keys.contains(&name.as_str()) {
                continue;
            }
            let col = other.column(name)?.take(&right_idx);
            let out_name = if out.has_column(name) {
                format!("{name}_right")
            } else {
                name.clone()
            };
            out.add_column(&out_name, col)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Value;

    fn regions() -> Frame {
        Frame::from_columns(vec![
            ("code", Column::from_strs(&["ITA", "JPN", "KOR"])),
            ("recipes", Column::from_i64s(&[7504, 580, 301])),
        ])
        .unwrap()
    }

    fn zscores() -> Frame {
        Frame::from_columns(vec![
            ("code", Column::from_strs(&["JPN", "ITA", "ITA", "XXX"])),
            ("z", Column::from_f64s(&[-4.0, 30.0, 29.0, 1.0])),
        ])
        .unwrap()
    }

    #[test]
    fn basic_inner_join() {
        let j = regions()
            .inner_join(&zscores(), &["code"], &["code"])
            .unwrap();
        assert_eq!(j.n_rows(), 3); // ITA×2 + JPN×1, KOR/XXX unmatched
        assert_eq!(j.names(), &["code", "recipes", "z"]);
        // Left-row order preserved: ITA rows first.
        assert_eq!(j.get(0, "code").unwrap(), Value::str("ITA"));
        assert_eq!(j.get(2, "code").unwrap(), Value::str("JPN"));
    }

    #[test]
    fn name_collision_suffixes() {
        let left = Frame::from_columns(vec![
            ("k", Column::from_i64s(&[1])),
            ("v", Column::from_i64s(&[10])),
        ])
        .unwrap();
        let right = Frame::from_columns(vec![
            ("k", Column::from_i64s(&[1])),
            ("v", Column::from_i64s(&[20])),
        ])
        .unwrap();
        let j = left.inner_join(&right, &["k"], &["k"]).unwrap();
        assert_eq!(j.names(), &["k", "v", "v_right"]);
        assert_eq!(j.get(0, "v_right").unwrap(), Value::Int(20));
    }

    #[test]
    fn null_keys_never_match() {
        let left =
            Frame::from_columns(vec![("k", Column::Str(vec![Some("a".into()), None]))]).unwrap();
        let right =
            Frame::from_columns(vec![("k", Column::Str(vec![Some("a".into()), None]))]).unwrap();
        let j = left.inner_join(&right, &["k"], &["k"]).unwrap();
        assert_eq!(j.n_rows(), 1);
    }

    #[test]
    fn differing_key_names() {
        let left = Frame::from_columns(vec![("a", Column::from_i64s(&[1, 2]))]).unwrap();
        let right = Frame::from_columns(vec![
            ("b", Column::from_i64s(&[2, 3])),
            ("tag", Column::from_strs(&["two", "three"])),
        ])
        .unwrap();
        let j = left.inner_join(&right, &["a"], &["b"]).unwrap();
        assert_eq!(j.n_rows(), 1);
        assert_eq!(j.get(0, "tag").unwrap(), Value::str("two"));
    }

    #[test]
    fn bad_keys_error() {
        assert!(regions().inner_join(&zscores(), &[], &[]).is_err());
        assert!(regions()
            .inner_join(&zscores(), &["code"], &["nope"])
            .is_err());
        assert!(regions()
            .inner_join(&zscores(), &["code", "recipes"], &["code"])
            .is_err());
    }

    #[test]
    fn multi_key_join() {
        let left = Frame::from_columns(vec![
            ("a", Column::from_i64s(&[1, 1, 2])),
            ("b", Column::from_strs(&["x", "y", "x"])),
        ])
        .unwrap();
        let right = Frame::from_columns(vec![
            ("a", Column::from_i64s(&[1, 2])),
            ("b", Column::from_strs(&["y", "x"])),
            ("v", Column::from_f64s(&[0.5, 0.7])),
        ])
        .unwrap();
        let j = left.inner_join(&right, &["a", "b"], &["a", "b"]).unwrap();
        assert_eq!(j.n_rows(), 2);
    }
}
