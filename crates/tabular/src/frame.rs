//! The [`Frame`]: an ordered collection of named, equal-length columns.

use std::collections::HashMap;

use crate::column::{Column, ColumnType};
use crate::error::{Result, TabularError};
use crate::value::Value;

/// A columnar data-frame.
///
/// Invariants maintained by every operation:
/// * column names are unique;
/// * all columns have the same length (`n_rows`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<Column>,
    /// name → position in `columns`; kept in sync with `names`.
    index: HashMap<String, usize>,
}

/// A borrowed view of one row of a [`Frame`], used by filter predicates.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    frame: &'a Frame,
    row: usize,
}

impl<'a> RowView<'a> {
    /// The cell under `column`, or `None` if the column does not exist.
    pub fn get(&self, column: &str) -> Option<Value> {
        let idx = *self.frame.index.get(column)?;
        self.frame.columns[idx].get(self.row)
    }

    /// The 0-based row index within the frame.
    pub fn row_index(&self) -> usize {
        self.row
    }
}

impl Frame {
    /// An empty frame with no columns and no rows.
    pub fn new() -> Self {
        Frame::default()
    }

    /// Build a frame from `(name, column)` pairs.
    pub fn from_columns(cols: Vec<(&str, Column)>) -> Result<Self> {
        let mut f = Frame::new();
        for (name, col) in cols {
            f.add_column(name, col)?;
        }
        Ok(f)
    }

    /// Number of rows. Zero for a frame with no columns.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True if a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Append a column. The first column fixes the row count; subsequent
    /// columns must match it.
    pub fn add_column(&mut self, name: &str, column: Column) -> Result<()> {
        if self.index.contains_key(name) {
            return Err(TabularError::DuplicateColumn(name.to_owned()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                column: name.to_owned(),
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        self.index.insert(name.to_owned(), self.columns.len());
        self.names.push(name.to_owned());
        self.columns.push(column);
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| TabularError::UnknownColumn(name.to_owned()))
    }

    /// Borrow a column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// The cell at (`row`, `column`).
    pub fn get(&self, row: usize, column: &str) -> Result<Value> {
        let col = self.column(column)?;
        col.get(row).ok_or(TabularError::RowOutOfBounds {
            row,
            n_rows: self.n_rows(),
        })
    }

    /// A [`RowView`] over row `row`.
    pub fn row(&self, row: usize) -> Result<RowView<'_>> {
        if row >= self.n_rows() {
            return Err(TabularError::RowOutOfBounds {
                row,
                n_rows: self.n_rows(),
            });
        }
        Ok(RowView { frame: self, row })
    }

    /// Iterate over all rows as [`RowView`]s.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.n_rows()).map(move |row| RowView { frame: self, row })
    }

    /// Append one row given as `(column, value)` pairs; every column must
    /// be covered exactly once.
    pub fn push_row(&mut self, cells: &[(&str, Value)]) -> Result<()> {
        if cells.len() != self.n_cols() {
            return Err(TabularError::LengthMismatch {
                column: "<row>".to_owned(),
                expected: self.n_cols(),
                actual: cells.len(),
            });
        }
        // Validate names first so a failed push leaves the frame unchanged.
        let mut order = Vec::with_capacity(cells.len());
        for (name, _) in cells {
            let idx = *self
                .index
                .get(*name)
                .ok_or_else(|| TabularError::UnknownColumn((*name).to_owned()))?;
            if order.contains(&idx) {
                return Err(TabularError::DuplicateColumn((*name).to_owned()));
            }
            order.push(idx);
        }
        // Validate types via a dry-run clone of the cheapest kind: check
        // type compatibility before mutating.
        for (pos, (name, value)) in cells.iter().enumerate() {
            let col = &self.columns[order[pos]];
            let compatible = matches!(
                (col.column_type(), value),
                (_, Value::Null)
                    | (ColumnType::Int, Value::Int(_))
                    | (ColumnType::Float, Value::Float(_))
                    | (ColumnType::Float, Value::Int(_))
                    | (ColumnType::Str, Value::Str(_))
                    | (ColumnType::Bool, Value::Bool(_))
            );
            if !compatible {
                return Err(TabularError::TypeMismatch {
                    column: (*name).to_owned(),
                    expected: col.column_type().name(),
                    actual: "incompatible value",
                });
            }
        }
        for (pos, (_, value)) in cells.iter().enumerate() {
            self.columns[order[pos]]
                .push(value.clone())
                .expect("types pre-validated");
        }
        Ok(())
    }

    /// A new frame containing only the rows for which `pred` returns true.
    pub fn filter<F>(&self, mut pred: F) -> Result<Frame>
    where
        F: FnMut(RowView<'_>) -> bool,
    {
        let indices: Vec<usize> = (0..self.n_rows())
            .filter(|&row| pred(RowView { frame: self, row }))
            .collect();
        Ok(self.take(&indices))
    }

    /// A new frame containing the rows at `indices`, in order. Indices may
    /// repeat; all must be in bounds.
    pub fn take(&self, indices: &[usize]) -> Frame {
        let mut out = Frame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            out.add_column(name, col.take(indices))
                .expect("take preserves invariants");
        }
        out
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, columns: &[&str]) -> Result<Frame> {
        let mut out = Frame::new();
        for &name in columns {
            out.add_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// A new frame with `column` renamed to `new_name`.
    pub fn rename(&self, column: &str, new_name: &str) -> Result<Frame> {
        if !self.has_column(column) {
            return Err(TabularError::UnknownColumn(column.to_owned()));
        }
        if self.has_column(new_name) && new_name != column {
            return Err(TabularError::DuplicateColumn(new_name.to_owned()));
        }
        let mut out = Frame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            let n = if name == column { new_name } else { name };
            out.add_column(n, col.clone())?;
        }
        Ok(out)
    }

    /// Vertically concatenate `other` below `self`. Column names and types
    /// must match exactly (order-sensitive).
    pub fn vstack(&self, other: &Frame) -> Result<Frame> {
        if self.names != other.names {
            return Err(TabularError::UnknownColumn(format!(
                "vstack schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        let mut out = self.clone();
        for (i, col) in other.columns.iter().enumerate() {
            if out.columns[i].column_type() != col.column_type() {
                return Err(TabularError::TypeMismatch {
                    column: self.names[i].clone(),
                    expected: out.columns[i].column_type().name(),
                    actual: col.column_type().name(),
                });
            }
            for v in col.iter_values() {
                out.columns[i].push(v).expect("types checked");
            }
        }
        Ok(out)
    }

    /// The first `n` rows (fewer if the frame is shorter).
    pub fn head(&self, n: usize) -> Frame {
        let k = n.min(self.n_rows());
        let idx: Vec<usize> = (0..k).collect();
        self.take(&idx)
    }

    /// Summary statistics of every numeric column: one row per column
    /// with `count` (non-null numeric cells), `mean`, `min` and `max`.
    /// Non-numeric columns are skipped; an all-text frame yields an
    /// empty (zero-row) summary.
    pub fn describe(&self) -> Frame {
        let mut names = Vec::new();
        let mut counts = Vec::new();
        let mut means = Vec::new();
        let mut mins = Vec::new();
        let mut maxs = Vec::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            if !matches!(col.column_type(), ColumnType::Int | ColumnType::Float) {
                continue;
            }
            let vals: Vec<f64> = col.iter_numeric().collect();
            names.push(name.clone());
            counts.push(vals.len() as i64);
            if vals.is_empty() {
                means.push(None);
                mins.push(None);
                maxs.push(None);
            } else {
                means.push(Some(vals.iter().sum::<f64>() / vals.len() as f64));
                mins.push(Some(vals.iter().copied().fold(f64::INFINITY, f64::min)));
                maxs.push(Some(vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)));
            }
        }
        let mut out = Frame::new();
        out.add_column("column", Column::Str(names.into_iter().map(Some).collect()))
            .expect("fresh frame");
        out.add_column("count", Column::from_i64s(&counts))
            .expect("fresh column");
        out.add_column("mean", Column::Float(means))
            .expect("fresh column");
        out.add_column("min", Column::Float(mins))
            .expect("fresh column");
        out.add_column("max", Column::Float(maxs))
            .expect("fresh column");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            ("region", Column::from_strs(&["ITA", "JPN", "USA", "ITA"])),
            ("recipes", Column::from_i64s(&[7504, 580, 16118, 7504])),
            ("z", Column::from_f64s(&[30.0, -4.0, 25.0, 30.0])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let f = sample();
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.n_cols(), 3);
        assert_eq!(f.names(), &["region", "recipes", "z"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut f = sample();
        let err = f
            .add_column("z", Column::from_i64s(&[1, 2, 3, 4]))
            .unwrap_err();
        assert_eq!(err, TabularError::DuplicateColumn("z".into()));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut f = sample();
        let err = f.add_column("w", Column::from_i64s(&[1])).unwrap_err();
        assert!(matches!(err, TabularError::LengthMismatch { .. }));
    }

    #[test]
    fn get_cell() {
        let f = sample();
        assert_eq!(f.get(1, "region").unwrap(), Value::str("JPN"));
        assert!(f.get(9, "region").is_err());
        assert!(f.get(0, "nope").is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let f = sample();
        let ita = f
            .filter(|r| r.get("region") == Some(Value::str("ITA")))
            .unwrap();
        assert_eq!(ita.n_rows(), 2);
        assert_eq!(ita.get(0, "recipes").unwrap(), Value::Int(7504));
    }

    #[test]
    fn select_projects_and_orders() {
        let f = sample();
        let s = f.select(&["z", "region"]).unwrap();
        assert_eq!(s.names(), &["z", "region"]);
        assert!(f.select(&["missing"]).is_err());
    }

    #[test]
    fn push_row_appends() {
        let mut f = sample();
        f.push_row(&[
            ("region", Value::str("KOR")),
            ("recipes", Value::Int(301)),
            ("z", Value::Float(-2.0)),
        ])
        .unwrap();
        assert_eq!(f.n_rows(), 5);
        assert_eq!(f.get(4, "recipes").unwrap(), Value::Int(301));
    }

    #[test]
    fn push_row_unknown_column_leaves_frame_unchanged() {
        let mut f = sample();
        let err = f
            .push_row(&[
                ("region", Value::str("KOR")),
                ("recipes", Value::Int(301)),
                ("nope", Value::Float(0.0)),
            ])
            .unwrap_err();
        assert!(matches!(err, TabularError::UnknownColumn(_)));
        assert_eq!(f.n_rows(), 4);
    }

    #[test]
    fn push_row_type_mismatch_leaves_frame_unchanged() {
        let mut f = sample();
        let err = f
            .push_row(&[
                ("region", Value::Int(1)),
                ("recipes", Value::Int(301)),
                ("z", Value::Float(0.0)),
            ])
            .unwrap_err();
        assert!(matches!(err, TabularError::TypeMismatch { .. }));
        assert_eq!(f.n_rows(), 4);
    }

    #[test]
    fn vstack_concatenates() {
        let f = sample();
        let g = f.vstack(&f).unwrap();
        assert_eq!(g.n_rows(), 8);
        assert_eq!(g.get(4, "region").unwrap(), Value::str("ITA"));
    }

    #[test]
    fn vstack_schema_mismatch() {
        let f = sample();
        let g = f.select(&["region"]).unwrap();
        assert!(f.vstack(&g).is_err());
    }

    #[test]
    fn rename_column() {
        let f = sample();
        let g = f.rename("z", "zscore").unwrap();
        assert!(g.has_column("zscore"));
        assert!(!g.has_column("z"));
        assert!(f.rename("missing", "x").is_err());
        assert!(f.rename("z", "region").is_err());
    }

    #[test]
    fn head_truncates() {
        let f = sample();
        assert_eq!(f.head(2).n_rows(), 2);
        assert_eq!(f.head(99).n_rows(), 4);
    }

    #[test]
    fn rows_iterate_in_order() {
        let f = sample();
        let regions: Vec<String> = f
            .rows()
            .map(|r| r.get("region").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(regions, vec!["ITA", "JPN", "USA", "ITA"]);
    }

    #[test]
    fn describe_summarizes_numeric_columns() {
        let f = sample();
        let d = f.describe();
        // "region" is text → skipped; "recipes" and "z" summarized.
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.get(0, "column").unwrap(), Value::str("recipes"));
        assert_eq!(d.get(0, "count").unwrap(), Value::Int(4));
        assert_eq!(d.get(0, "min").unwrap(), Value::Float(580.0));
        assert_eq!(d.get(0, "max").unwrap(), Value::Float(16118.0));
        let mean = d.get(1, "mean").unwrap().as_float().unwrap();
        assert!((mean - (30.0 - 4.0 + 25.0 + 30.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn describe_all_null_numeric_column() {
        let f = Frame::from_columns(vec![("v", Column::Float(vec![None, None]))]).unwrap();
        let d = f.describe();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(d.get(0, "count").unwrap(), Value::Int(0));
        assert!(d.get(0, "mean").unwrap().is_null());
    }

    #[test]
    fn describe_text_only_frame_is_empty() {
        let f = Frame::from_columns(vec![("s", Column::from_strs(&["a"]))]).unwrap();
        assert_eq!(f.describe().n_rows(), 0);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new();
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.n_cols(), 0);
        assert_eq!(f.filter(|_| true).unwrap().n_rows(), 0);
    }
}
