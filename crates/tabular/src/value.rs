//! Dynamically-typed cell values.
//!
//! [`Value`] is the row-level escape hatch of the column store: columns are
//! stored as typed vectors, but predicates, joins and group-by keys need a
//! uniform cell representation. `Value` is cheap to clone for everything
//! except strings and implements a total ordering so it can serve as a sort
//! and grouping key.

use std::cmp::Ordering;
use std::fmt;

/// A single dynamically-typed cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to `Null` at column boundaries.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for building a string value from a `&str`.
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_owned())
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float; integers are widened, other types yield `None`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types: Null < Bool < Int ≈
    /// Float < Str. Ints and floats share a rank and compare numerically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Total ordering across all values. Numeric values compare
    /// numerically across `Int`/`Float`; NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                // Mixed numeric comparison (Int vs Float or Float vs Float).
                let fa = a.as_float().expect("rank-2 value is numeric");
                let fb = b.as_float().expect("rank-2 value is numeric");
                fa.total_cmp(&fb)
            }
        }
    }

    /// A hashable grouping key. Floats are keyed by their bit pattern, so
    /// `-0.0` and `0.0` are distinct keys; analyses that group by floats
    /// should round first.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(v) => GroupKey::Int(*v),
            Value::Float(v) => GroupKey::FloatBits(v.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable projection of a [`Value`], used as a group-by / join key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Key for a missing value.
    Null,
    /// Key for a boolean.
    Bool(bool),
    /// Key for an integer.
    Int(i64),
    /// Key for a float, by IEEE-754 bit pattern.
    FloatBits(u64),
    /// Key for a string.
    Str(String),
}

impl fmt::Display for Value {
    /// Writes the CSV-facing textual form (empty string for null).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("a").as_int(), None);
        assert_eq!(Value::Bool(true).as_float(), None);
    }

    #[test]
    fn nan_becomes_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert_eq!(Value::from(2.5), Value::Float(2.5));
    }

    #[test]
    fn ordering_across_types_is_stable() {
        let mut vals = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(false),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::str("b"));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.5).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn group_keys_distinguish_values() {
        assert_eq!(Value::Int(1).group_key(), Value::Int(1).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Int(2).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_eq!(Value::str("x").group_key(), Value::str("x").group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn display_is_csv_friendly() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Float(0.5).to_string(), "0.5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("t")), Value::str("t"));
        assert_eq!(Value::from(false), Value::Bool(false));
    }
}
