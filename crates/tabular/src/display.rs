//! Fixed-width pretty printing of frames for harness output.

use std::fmt;

use crate::frame::Frame;
use crate::value::Value;

/// Maximum number of rows printed by `Display`; longer frames are elided
/// with a `… (N more rows)` footer.
const MAX_DISPLAY_ROWS: usize = 50;

impl Frame {
    /// Render the frame as an aligned text table. `max_rows` limits the
    /// body; the footer reports elided rows.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let n = self.n_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n + 1);
        cells.push(self.names().to_vec());
        for row in 0..n {
            let mut line = Vec::with_capacity(self.n_cols());
            for name in self.names() {
                let v = self.get(row, name).expect("in range");
                line.push(render_cell(&v));
            }
            cells.push(line);
        }

        let n_cols = self.n_cols();
        let mut widths = vec![0usize; n_cols];
        for line in &cells {
            for (c, cell) in line.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        for (i, line) in cells.iter().enumerate() {
            let rendered: Vec<String> = line
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:<width$}", cell, width = widths[c]))
                .collect();
            out.push_str(rendered.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
                out.push_str(&sep.join("  "));
                out.push('\n');
            }
        }
        if self.n_rows() > n {
            out.push_str(&format!("… ({} more rows)\n", self.n_rows() - n));
        }
        out
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "∅".to_owned(),
        Value::Float(x) => {
            // Limit noise: 4 significant decimals is plenty for reports.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x:.4}")
            }
        }
        other => other.to_string(),
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string(MAX_DISPLAY_ROWS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn aligned_output() {
        let f = Frame::from_columns(vec![
            ("region", Column::from_strs(&["ITA", "JPN"])),
            ("z", Column::from_f64s(&[30.1234567, -4.0])),
        ])
        .unwrap();
        let s = f.to_string();
        assert!(s.contains("region"));
        assert!(s.contains("30.1235"));
        assert!(s.contains("-4.0"));
        // Header separator present.
        assert!(s.lines().nth(1).unwrap().starts_with('-'));
    }

    #[test]
    fn elision_footer() {
        let vals: Vec<i64> = (0..100).collect();
        let f = Frame::from_columns(vec![("v", Column::from_i64s(&vals))]).unwrap();
        let s = f.to_table_string(10);
        assert!(s.contains("90 more rows"));
    }

    #[test]
    fn nulls_render_visibly() {
        let f = Frame::from_columns(vec![("v", Column::Int(vec![None, Some(1)]))]).unwrap();
        assert!(f.to_string().contains('∅'));
    }
}
