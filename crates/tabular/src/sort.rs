//! Multi-key stable sorting of frames.

use crate::error::Result;
use crate::frame::Frame;
use crate::value::Value;
use std::cmp::Ordering;

/// Direction of one sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first (nulls first, per [`Value::total_cmp`]).
    Ascending,
    /// Largest first (nulls last).
    Descending,
}

impl Frame {
    /// Stable sort by the named columns, all ascending.
    pub fn sort_by(&self, columns: &[&str]) -> Result<Frame> {
        let keys: Vec<(&str, SortOrder)> =
            columns.iter().map(|&c| (c, SortOrder::Ascending)).collect();
        self.sort_by_with(&keys)
    }

    /// Stable sort by `(column, order)` keys, applied left to right.
    pub fn sort_by_with(&self, keys: &[(&str, SortOrder)]) -> Result<Frame> {
        // Materialize key values once: O(rows × keys) Value clones, then a
        // standard stable index sort.
        let mut key_cols = Vec::with_capacity(keys.len());
        for &(name, order) in keys {
            let col = self.column(name)?;
            let vals: Vec<Value> = col.iter_values().collect();
            key_cols.push((vals, order));
        }
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.sort_by(|&a, &b| {
            for (vals, order) in &key_cols {
                let ord = vals[a].total_cmp(&vals[b]);
                let ord = match order {
                    SortOrder::Ascending => ord,
                    SortOrder::Descending => ord.reverse(),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        Ok(self.take(&idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            ("g", Column::from_strs(&["b", "a", "b", "a"])),
            ("v", Column::from_i64s(&[2, 9, 1, 3])),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let f = sample().sort_by(&["v"]).unwrap();
        let vs: Vec<i64> = f
            .column("v")
            .unwrap()
            .iter_values()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vs, vec![1, 2, 3, 9]);
    }

    #[test]
    fn multi_key_with_direction() {
        let f = sample()
            .sort_by_with(&[("g", SortOrder::Ascending), ("v", SortOrder::Descending)])
            .unwrap();
        let rows: Vec<(String, i64)> = f
            .rows()
            .map(|r| {
                (
                    r.get("g").unwrap().as_str().unwrap().to_owned(),
                    r.get("v").unwrap().as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                ("a".into(), 9),
                ("a".into(), 3),
                ("b".into(), 2),
                ("b".into(), 1)
            ]
        );
    }

    #[test]
    fn sort_is_stable() {
        let f = Frame::from_columns(vec![
            ("k", Column::from_i64s(&[1, 1, 1])),
            ("tag", Column::from_strs(&["first", "second", "third"])),
        ])
        .unwrap();
        let s = f.sort_by(&["k"]).unwrap();
        let tags: Vec<String> = s
            .column("tag")
            .unwrap()
            .iter_values()
            .map(|v| v.as_str().unwrap().to_owned())
            .collect();
        assert_eq!(tags, vec!["first", "second", "third"]);
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let f = Frame::from_columns(vec![("v", Column::Float(vec![Some(2.0), None, Some(1.0)]))])
            .unwrap();
        let s = f.sort_by(&["v"]).unwrap();
        assert!(s.get(0, "v").unwrap().is_null());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(sample().sort_by(&["nope"]).is_err());
    }
}
