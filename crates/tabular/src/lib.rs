#![warn(missing_docs)]

//! # culinaria-tabular
//!
//! A lightweight, dependency-free columnar data-frame used throughout the
//! `culinaria` workspace as the tabular-output substrate for analyses
//! (category compositions, z-score tables, rank-frequency series, …).
//!
//! The design follows a classic column store:
//!
//! * a [`Frame`] is an ordered collection of named, equal-length
//!   [`Column`]s;
//! * each column is a typed vector (`i64`, `f64`, `String`, `bool`) with
//!   per-cell nullability;
//! * row-level access goes through [`Value`], a small dynamically-typed
//!   cell;
//! * transformations ([`Frame::filter`], [`Frame::sort_by`],
//!   [`Frame::group_by`], [`Frame::inner_join`]) produce new frames and
//!   never mutate their input;
//! * frames round-trip through RFC-4180-style CSV ([`csv::read_csv`],
//!   [`csv::write_csv`]).
//!
//! The crate is intentionally small: it implements exactly the operations
//! the paper's analyses need, with predictable O(n log n) or O(n) cost and
//! no query planner.
//!
//! ## Example
//!
//! ```
//! use culinaria_tabular::{Frame, Column, Value};
//!
//! let mut f = Frame::new();
//! f.add_column("region", Column::from_strs(&["ITA", "JPN", "ITA"])).unwrap();
//! f.add_column("z", Column::from_f64s(&[31.0, -5.2, 14.9])).unwrap();
//!
//! let ita = f.filter(|row| row.get("region") == Some(Value::str("ITA"))).unwrap();
//! assert_eq!(ita.n_rows(), 2);
//!
//! let by_region = f.group_by(&["region"]).unwrap().mean("z").unwrap();
//! assert_eq!(by_region.n_rows(), 2);
//! ```

pub mod column;
pub mod csv;
pub mod display;
pub mod error;
pub mod expr;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod sort;
pub mod value;

pub use column::{Column, ColumnType};
pub use error::{Result, TabularError};
pub use expr::Expr;
pub use frame::{Frame, RowView};
pub use groupby::{Aggregation, GroupBy};
pub use sort::SortOrder;
pub use value::Value;
