//! A tiny predicate-expression language over frame rows.
//!
//! [`Expr`] lets callers build reusable, composable filters without
//! closures, which keeps harness code declarative:
//!
//! ```
//! use culinaria_tabular::{Frame, Column, Expr, Value};
//!
//! let f = Frame::from_columns(vec![
//!     ("region", Column::from_strs(&["ITA", "JPN"])),
//!     ("z", Column::from_f64s(&[30.0, -4.0])),
//! ]).unwrap();
//!
//! let positive = Expr::col("z").gt(Expr::lit(0.0));
//! let out = f.filter_expr(&positive).unwrap();
//! assert_eq!(out.n_rows(), 1);
//! ```

use crate::error::Result;
use crate::frame::{Frame, RowView};
use crate::value::Value;
use std::cmp::Ordering;

/// A predicate / scalar expression evaluated against a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Equality.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Strictly less-than (by [`Value::total_cmp`]).
    Lt(Box<Expr>, Box<Expr>),
    /// Less-than-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Strictly greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-than-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// True when the inner expression evaluates to null.
    IsNull(Box<Expr>),
    /// Numeric addition (null-propagating).
    Add(Box<Expr>, Box<Expr>),
    /// Numeric subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Numeric multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Numeric division; division by zero yields null.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_owned())
    }

    /// A literal.
    pub fn lit<V: Into<Value>>(v: V) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Le(Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(other))
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Evaluate to a [`Value`]. Comparisons involving null evaluate to
    /// `Bool(false)` (SQL-like, but two-valued for simplicity); unknown
    /// columns evaluate to null.
    pub fn eval(&self, row: &RowView<'_>) -> Value {
        match self {
            Expr::Col(name) => row.get(name).unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Eq(a, b) => cmp_bool(a, b, row, |o| o == Ordering::Equal),
            Expr::Ne(a, b) => cmp_bool(a, b, row, |o| o != Ordering::Equal),
            Expr::Lt(a, b) => cmp_bool(a, b, row, |o| o == Ordering::Less),
            Expr::Le(a, b) => cmp_bool(a, b, row, |o| o != Ordering::Greater),
            Expr::Gt(a, b) => cmp_bool(a, b, row, |o| o == Ordering::Greater),
            Expr::Ge(a, b) => cmp_bool(a, b, row, |o| o != Ordering::Less),
            Expr::And(a, b) => Value::Bool(truthy(&a.eval(row)) && truthy(&b.eval(row))),
            Expr::Or(a, b) => Value::Bool(truthy(&a.eval(row)) || truthy(&b.eval(row))),
            Expr::Not(a) => Value::Bool(!truthy(&a.eval(row))),
            Expr::IsNull(a) => Value::Bool(a.eval(row).is_null()),
            Expr::Add(a, b) => arith(a, b, row, |x, y| Some(x + y)),
            Expr::Sub(a, b) => arith(a, b, row, |x, y| Some(x - y)),
            Expr::Mul(a, b) => arith(a, b, row, |x, y| Some(x * y)),
            Expr::Div(a, b) => arith(a, b, row, |x, y| (y != 0.0).then(|| x / y)),
        }
    }

    /// Evaluate as a boolean predicate (null / non-bool → false).
    pub fn matches(&self, row: &RowView<'_>) -> bool {
        truthy(&self.eval(row))
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    /// Numeric addition; null-propagating (see [`Expr::eval`]).
    fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    /// Numeric subtraction; null-propagating.
    fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    /// Numeric multiplication; null-propagating.
    fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    /// Numeric division; division by zero evaluates to null.
    fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }
}

fn truthy(v: &Value) -> bool {
    v.as_bool().unwrap_or(false)
}

/// Numeric binary operation: ints widen to floats; any null or
/// non-numeric operand (or an op returning `None`) yields null.
fn arith(a: &Expr, b: &Expr, row: &RowView<'_>, op: impl Fn(f64, f64) -> Option<f64>) -> Value {
    let (Some(x), Some(y)) = (a.eval(row).as_float(), b.eval(row).as_float()) else {
        return Value::Null;
    };
    match op(x, y) {
        Some(v) => Value::from(v), // NaN normalizes to Null via From
        None => Value::Null,
    }
}

fn cmp_bool(a: &Expr, b: &Expr, row: &RowView<'_>, pred: impl Fn(Ordering) -> bool) -> Value {
    let va = a.eval(row);
    let vb = b.eval(row);
    if va.is_null() || vb.is_null() {
        return Value::Bool(false);
    }
    Value::Bool(pred(va.total_cmp(&vb)))
}

impl Frame {
    /// [`Frame::filter`] driven by an [`Expr`] predicate.
    pub fn filter_expr(&self, expr: &Expr) -> Result<Frame> {
        self.filter(|row| expr.matches(&row))
    }

    /// A new frame with an extra float column `name` computed by
    /// evaluating `expr` on every row (non-numeric results become
    /// null). Errors if `name` already exists.
    pub fn with_column(&self, name: &str, expr: &Expr) -> Result<Frame> {
        let values: Vec<Option<f64>> = self.rows().map(|row| expr.eval(&row).as_float()).collect();
        let mut out = self.clone();
        out.add_column(name, crate::column::Column::Float(values))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            ("region", Column::from_strs(&["ITA", "JPN", "USA"])),
            ("z", Column::Float(vec![Some(30.0), Some(-4.0), None])),
            ("big", Column::from_bools(&[true, false, true])),
        ])
        .unwrap()
    }

    #[test]
    fn comparisons() {
        let f = sample();
        assert_eq!(
            f.filter_expr(&Expr::col("z").gt(Expr::lit(0.0)))
                .unwrap()
                .n_rows(),
            1
        );
        assert_eq!(
            f.filter_expr(&Expr::col("z").le(Expr::lit(30.0)))
                .unwrap()
                .n_rows(),
            2
        );
        assert_eq!(
            f.filter_expr(&Expr::col("region").eq(Expr::lit("JPN")))
                .unwrap()
                .n_rows(),
            1
        );
        assert_eq!(
            f.filter_expr(&Expr::col("region").ne(Expr::lit("JPN")))
                .unwrap()
                .n_rows(),
            2
        );
    }

    #[test]
    fn null_comparisons_are_false() {
        let f = sample();
        // Row with null z matches neither z>x nor z<=x.
        let gt = f
            .filter_expr(&Expr::col("z").gt(Expr::lit(-100.0)))
            .unwrap();
        let le = f.filter_expr(&Expr::col("z").le(Expr::lit(100.0))).unwrap();
        assert_eq!(gt.n_rows() + le.n_rows(), 4); // 2 + 2, null row excluded from both
    }

    #[test]
    fn is_null_detects() {
        let f = sample();
        let nulls = f.filter_expr(&Expr::col("z").is_null()).unwrap();
        assert_eq!(nulls.n_rows(), 1);
        assert_eq!(nulls.get(0, "region").unwrap(), Value::str("USA"));
    }

    #[test]
    fn boolean_connectives() {
        let f = sample();
        let e = Expr::col("big")
            .eq(Expr::lit(true))
            .and(Expr::col("z").gt(Expr::lit(0.0)));
        assert_eq!(f.filter_expr(&e).unwrap().n_rows(), 1);

        let e = Expr::col("region")
            .eq(Expr::lit("JPN"))
            .or(Expr::col("region").eq(Expr::lit("USA")));
        assert_eq!(f.filter_expr(&e).unwrap().n_rows(), 2);

        let e = Expr::col("big").eq(Expr::lit(true)).not();
        assert_eq!(f.filter_expr(&e).unwrap().n_rows(), 1);
    }

    #[test]
    fn unknown_column_is_null() {
        let f = sample();
        let e = Expr::col("missing").is_null();
        assert_eq!(f.filter_expr(&e).unwrap().n_rows(), 3);
    }

    #[test]
    fn arithmetic_expressions() {
        let f = Frame::from_columns(vec![
            ("a", Column::from_f64s(&[6.0, 10.0])),
            ("b", Column::from_i64s(&[2, 0])),
        ])
        .unwrap();
        let g = f
            .with_column("sum", &(Expr::col("a") + Expr::col("b")))
            .unwrap()
            .with_column("diff", &(Expr::col("a") - Expr::col("b")))
            .unwrap()
            .with_column("prod", &(Expr::col("a") * Expr::col("b")))
            .unwrap()
            .with_column("quot", &(Expr::col("a") / Expr::col("b")))
            .unwrap();
        assert_eq!(g.get(0, "sum").unwrap(), Value::Float(8.0));
        assert_eq!(g.get(0, "diff").unwrap(), Value::Float(4.0));
        assert_eq!(g.get(0, "prod").unwrap(), Value::Float(12.0));
        assert_eq!(g.get(0, "quot").unwrap(), Value::Float(3.0));
        // Division by zero → null.
        assert!(g.get(1, "quot").unwrap().is_null());
        // Name collision rejected.
        assert!(g.with_column("sum", &Expr::lit(1.0)).is_err());
    }

    #[test]
    fn arithmetic_null_propagation() {
        let f = Frame::from_columns(vec![
            ("a", Column::Float(vec![Some(1.0), None])),
            ("s", Column::from_strs(&["x", "y"])),
        ])
        .unwrap();
        let g = f
            .with_column("na", &(Expr::col("a") + Expr::lit(1.0)))
            .unwrap()
            .with_column("ns", &(Expr::col("s") * Expr::lit(2.0)))
            .unwrap();
        assert_eq!(g.get(0, "na").unwrap(), Value::Float(2.0));
        assert!(g.get(1, "na").unwrap().is_null()); // null operand
        assert!(g.get(0, "ns").unwrap().is_null()); // non-numeric operand
    }

    #[test]
    fn derived_column_in_predicate() {
        let f = Frame::from_columns(vec![
            ("obs", Column::from_f64s(&[10.0, 2.0])),
            ("null_mean", Column::from_f64s(&[5.0, 4.0])),
        ])
        .unwrap();
        // ratio = obs / null_mean, filter ratio > 1.
        let g = f
            .with_column("ratio", &(Expr::col("obs") / Expr::col("null_mean")))
            .unwrap();
        let hits = g
            .filter_expr(&Expr::col("ratio").gt(Expr::lit(1.0)))
            .unwrap();
        assert_eq!(hits.n_rows(), 1);
        assert_eq!(hits.get(0, "obs").unwrap(), Value::Float(10.0));
    }

    #[test]
    fn ge_and_lt() {
        let f = sample();
        assert_eq!(
            f.filter_expr(&Expr::col("z").ge(Expr::lit(-4.0)))
                .unwrap()
                .n_rows(),
            2
        );
        assert_eq!(
            f.filter_expr(&Expr::col("z").lt(Expr::lit(0.0)))
                .unwrap()
                .n_rows(),
            1
        );
    }
}
