//! RFC-4180-style CSV reading and writing.
//!
//! Reading infers column types from the data: a column whose non-empty
//! cells all parse as `i64` becomes an int column; else if they all parse
//! as `f64`, a float column; else if all are `true`/`false`, a bool
//! column; otherwise strings. Empty cells are null.

// User-reachable serialization/ingestion surface: panicking on bad
// data is forbidden here — return errors instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{BufRead, Write};

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::frame::Frame;
#[cfg(test)]
use crate::value::Value;

/// Parse CSV from a reader into a [`Frame`]. The first record is the
/// header. Quoted fields may contain commas, newlines, and doubled quotes.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Frame> {
    let mut content = String::new();
    let mut r = reader;
    r.read_to_string(&mut content)?;
    read_csv_str(&content)
}

/// Parse CSV from a string. See [`read_csv`].
pub fn read_csv_str(content: &str) -> Result<Frame> {
    let records = parse_records(content)?;
    let mut records = records.into_iter();
    let header = match records.next() {
        Some(h) => h,
        None => return Ok(Frame::new()),
    };
    let n_cols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (line_no, rec) in records.enumerate() {
        if rec.len() != n_cols {
            return Err(TabularError::Csv {
                line: line_no + 2,
                message: format!("expected {n_cols} fields, found {}", rec.len()),
            });
        }
        for (c, field) in rec.into_iter().enumerate() {
            cells[c].push(field);
        }
    }

    let mut frame = Frame::new();
    for (name, col_cells) in header.iter().zip(cells) {
        frame.add_column(name, infer_column(&col_cells))?;
    }
    Ok(frame)
}

/// Serialize a frame as CSV to a writer (header + rows).
pub fn write_csv<W: Write>(frame: &Frame, writer: &mut W) -> Result<()> {
    let header: Vec<String> = frame.names().iter().map(|n| escape_field(n)).collect();
    writeln!(writer, "{}", header.join(","))?;
    for row in 0..frame.n_rows() {
        let mut fields = Vec::with_capacity(frame.n_cols());
        for name in frame.names() {
            let v = frame.get(row, name)?;
            fields.push(escape_field(&v.to_string()));
        }
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Serialize a frame as a CSV string.
pub fn to_csv_string(frame: &Frame) -> String {
    let mut buf = Vec::new();
    // Writing to a Vec cannot fail for I/O reasons and every (row,
    // column) pair visited exists by construction; if that invariant
    // ever breaks, render the error in place instead of panicking.
    if let Err(e) = write_csv(frame, &mut buf) {
        return format!("<csv serialization failed: {e}>");
    }
    String::from_utf8_lossy(&buf).into_owned()
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Split raw CSV text into records of fields, handling quoting.
fn parse_records(content: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = content.chars().peekable();
    let mut any = false;

    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the following \n terminates the record.
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(TabularError::Csv {
            line,
            message: "unterminated quoted field".to_owned(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infer the narrowest column type that fits all non-empty cells.
fn infer_column(cells: &[String]) -> Column {
    let non_empty: Vec<&String> = cells.iter().filter(|c| !c.is_empty()).collect();
    if !non_empty.is_empty() && non_empty.iter().all(|c| c.parse::<i64>().is_ok()) {
        return Column::Int(
            cells
                .iter()
                .map(|c| if c.is_empty() { None } else { c.parse().ok() })
                .collect(),
        );
    }
    if !non_empty.is_empty() && non_empty.iter().all(|c| c.parse::<f64>().is_ok()) {
        return Column::Float(
            cells
                .iter()
                .map(|c| {
                    if c.is_empty() {
                        None
                    } else {
                        c.parse::<f64>().ok().filter(|v| !v.is_nan())
                    }
                })
                .collect(),
        );
    }
    if !non_empty.is_empty() && non_empty.iter().all(|c| *c == "true" || *c == "false") {
        return Column::Bool(
            cells
                .iter()
                .map(|c| match c.as_str() {
                    "" => None,
                    "true" => Some(true),
                    _ => Some(false),
                })
                .collect(),
        );
    }
    Column::Str(
        cells
            .iter()
            .map(|c| if c.is_empty() { None } else { Some(c.clone()) })
            .collect(),
    )
}

impl Frame {
    /// Parse a frame from a CSV string (convenience for [`read_csv_str`]).
    pub fn from_csv_str(content: &str) -> Result<Frame> {
        read_csv_str(content)
    }

    /// Serialize to a CSV string (convenience for [`to_csv_string`]).
    pub fn to_csv(&self) -> String {
        to_csv_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = "region,recipes,z\nITA,7504,30.5\nJPN,580,-4.25\n";
        let f = read_csv_str(csv).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.get(0, "region").unwrap(), Value::str("ITA"));
        assert_eq!(f.get(1, "recipes").unwrap(), Value::Int(580));
        assert_eq!(f.get(1, "z").unwrap(), Value::Float(-4.25));
        assert_eq!(f.to_csv(), csv);
    }

    #[test]
    fn type_inference() {
        let f = read_csv_str("a,b,c,d\n1,1.5,true,hello\n2,2,false,world\n").unwrap();
        assert!(f.column("a").unwrap().as_int_slice().is_some());
        assert!(f.column("b").unwrap().as_float_slice().is_some());
        assert_eq!(f.get(0, "c").unwrap(), Value::Bool(true));
        assert_eq!(f.get(1, "d").unwrap(), Value::str("world"));
    }

    #[test]
    fn empty_cells_become_null() {
        let f = read_csv_str("a,b\n1,\n,2\n").unwrap();
        assert!(f.get(0, "b").unwrap().is_null());
        assert!(f.get(1, "a").unwrap().is_null());
    }

    #[test]
    fn quoted_fields() {
        let f = read_csv_str("name,note\n\"garlic, minced\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(f.get(0, "name").unwrap(), Value::str("garlic, minced"));
        assert_eq!(f.get(0, "note").unwrap(), Value::str("he said \"hi\""));
    }

    #[test]
    fn quoted_newline_in_field() {
        let f = read_csv_str("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.get(0, "a").unwrap(), Value::str("line1\nline2"));
    }

    #[test]
    fn crlf_line_endings() {
        let f = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.get(0, "b").unwrap(), Value::Int(2));
    }

    #[test]
    fn missing_trailing_newline() {
        let f = read_csv_str("a\n1").unwrap();
        assert_eq!(f.n_rows(), 1);
    }

    #[test]
    fn ragged_row_errors() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = read_csv_str("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, TabularError::Csv { .. }));
    }

    #[test]
    fn empty_input_gives_empty_frame() {
        let f = read_csv_str("").unwrap();
        assert_eq!(f.n_cols(), 0);
    }

    #[test]
    fn write_escapes_fields() {
        let f =
            Frame::from_columns(vec![("x", Column::from_strs(&["a,b", "q\"q", "plain"]))]).unwrap();
        let csv = f.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
        assert!(csv.contains("plain"));
        // And the roundtrip preserves content.
        let g = read_csv_str(&csv).unwrap();
        assert_eq!(g.get(0, "x").unwrap(), Value::str("a,b"));
        assert_eq!(g.get(1, "x").unwrap(), Value::str("q\"q"));
    }

    #[test]
    fn roundtrip_with_nulls() {
        let f = Frame::from_columns(vec![
            ("a", Column::Int(vec![Some(1), None])),
            ("b", Column::Str(vec![None, Some("x".into())])),
        ])
        .unwrap();
        let g = read_csv_str(&f.to_csv()).unwrap();
        assert!(g.get(1, "a").unwrap().is_null());
        assert!(g.get(0, "b").unwrap().is_null());
        assert_eq!(g.get(1, "b").unwrap(), Value::str("x"));
    }
}
