//! Error type shared by all tabular operations.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TabularError>;

/// Errors produced by frame construction, transformation and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A column with this name already exists in the frame.
    DuplicateColumn(String),
    /// No column with this name exists in the frame.
    UnknownColumn(String),
    /// A column being added has a different length than the frame.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length the frame expects.
        expected: usize,
        /// Length the column actually has.
        actual: usize,
    },
    /// An operation required a different column type.
    TypeMismatch {
        /// Name of the offending column.
        column: String,
        /// Human-readable description of the expected type.
        expected: &'static str,
        /// Human-readable description of the actual type.
        actual: &'static str,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// The requested row.
        row: usize,
        /// Number of rows in the frame.
        n_rows: usize,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// An aggregation was requested on an empty group or frame.
    Empty(&'static str),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::DuplicateColumn(name) => {
                write!(f, "column '{name}' already exists")
            }
            TabularError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            TabularError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column '{column}' has length {actual}, frame expects {expected}"
            ),
            TabularError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(f, "column '{column}' is {actual}, expected {expected}"),
            TabularError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row {row} out of bounds for frame with {n_rows} rows")
            }
            TabularError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            TabularError::Io(msg) => write!(f, "io error: {msg}"),
            TabularError::Empty(op) => write!(f, "operation '{op}' on empty input"),
        }
    }
}

impl std::error::Error for TabularError {}

impl From<std::io::Error> for TabularError {
    fn from(e: std::io::Error) -> Self {
        TabularError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TabularError, &str)> = vec![
            (TabularError::DuplicateColumn("x".into()), "x"),
            (TabularError::UnknownColumn("y".into()), "y"),
            (
                TabularError::LengthMismatch {
                    column: "z".into(),
                    expected: 3,
                    actual: 5,
                },
                "length 5",
            ),
            (
                TabularError::TypeMismatch {
                    column: "w".into(),
                    expected: "f64",
                    actual: "str",
                },
                "expected f64",
            ),
            (TabularError::RowOutOfBounds { row: 9, n_rows: 2 }, "row 9"),
            (
                TabularError::Csv {
                    line: 4,
                    message: "unterminated quote".into(),
                },
                "line 4",
            ),
            (TabularError::Io("boom".into()), "boom"),
            (TabularError::Empty("mean"), "mean"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: TabularError = io.into();
        assert!(matches!(err, TabularError::Io(_)));
    }
}
