//! Random sampling primitives for the null models.
//!
//! The frequency-preserving null models need millions of weighted draws
//! (100,000 recipes × ~9 ingredients × 22 cuisines × 2 models), so the
//! hot path uses Walker's alias method ([`WeightedAliasSampler`], O(1)
//! per draw after O(n) setup). A [`LinearCdfSampler`] (O(n) per draw) is
//! kept as the ablation baseline benchmarked in `culinaria-bench`.

use rand::{Rng, RngExt};

/// Walker/Vose alias-method sampler over indices `0..n` with the given
/// non-negative weights.
///
/// ```
/// use culinaria_stats::WeightedAliasSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = WeightedAliasSampler::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let draw = sampler.sample(&mut rng);
/// assert!(draw == 0 || draw == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedAliasSampler {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

/// Errors constructing a weighted sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// The weight vector was empty.
    Empty,
    /// A weight was negative or non-finite.
    InvalidWeight(usize),
    /// All weights were zero.
    ZeroMass,
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::Empty => write!(f, "weight vector is empty"),
            SamplingError::InvalidWeight(i) => {
                write!(f, "weight at index {i} is negative or non-finite")
            }
            SamplingError::ZeroMass => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for SamplingError {}

fn validate_weights(weights: &[f64]) -> Result<f64, SamplingError> {
    if weights.is_empty() {
        return Err(SamplingError::Empty);
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(SamplingError::InvalidWeight(i));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(SamplingError::ZeroMass);
    }
    Ok(total)
}

impl WeightedAliasSampler {
    /// Build the alias table from non-negative weights (need not sum to 1).
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        let total = validate_weights(weights)?;
        let n = weights.len();
        assert!(n <= u32::MAX as usize, "alias table limited to u32 indices");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Vose's two-stack construction.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // The large cell donates (1 − prob[s]) of its mass.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual numeric drift: leftover cells take probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(WeightedAliasSampler { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the sampler has no categories (never constructible via
    /// [`WeightedAliasSampler::new`], which rejects empty weights).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index with probability proportional to its weight. O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Linear-scan CDF sampler: O(n) per draw. Kept as the ablation baseline
/// against [`WeightedAliasSampler`] (see the `null_models` bench).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCdfSampler {
    cumulative: Vec<f64>,
}

impl LinearCdfSampler {
    /// Build the cumulative weight table.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        validate_weights(weights)?;
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        Ok(LinearCdfSampler { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index with probability proportional to its weight. O(n).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u = rng.random::<f64>() * total;
        for (i, &c) in self.cumulative.iter().enumerate() {
            if u < c {
                return i;
            }
        }
        self.cumulative.len() - 1
    }
}

/// Draw `k` distinct indices uniformly from `0..n` via partial
/// Fisher–Yates. Returns all of `0..n` (shuffled) when `k ≥ n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Uniformly choose one element of a slice. `None` for an empty slice.
pub fn choose_uniform<'a, T, R: Rng + ?Sized>(items: &'a [T], rng: &mut R) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Empirical frequencies of a sampler over many draws.
    fn frequencies(mut draw: impl FnMut(&mut StdRng) -> usize, n: usize, iters: usize) -> Vec<f64> {
        let mut r = rng();
        let mut counts = vec![0usize; n];
        for _ in 0..iters {
            counts[draw(&mut r)] += 1;
        }
        counts.iter().map(|&c| c as f64 / iters as f64).collect()
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let s = WeightedAliasSampler::new(&weights).unwrap();
        let freq = frequencies(|r| s.sample(r), 4, 200_000);
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            assert!(
                (freq[i] - expected).abs() < 0.01,
                "index {i}: {} vs {}",
                freq[i],
                expected
            );
        }
    }

    #[test]
    fn linear_cdf_matches_weights() {
        let weights = [5.0, 1.0, 4.0];
        let s = LinearCdfSampler::new(&weights).unwrap();
        let freq = frequencies(|r| s.sample(r), 3, 200_000);
        for (i, &w) in weights.iter().enumerate() {
            assert!((freq[i] - w / 10.0).abs() < 0.01);
        }
    }

    #[test]
    fn alias_and_linear_agree() {
        let weights = [0.1, 0.0, 7.3, 2.2, 0.9, 12.0];
        let a = WeightedAliasSampler::new(&weights).unwrap();
        let l = LinearCdfSampler::new(&weights).unwrap();
        let fa = frequencies(|r| a.sample(r), 6, 300_000);
        let fl = frequencies(|r| l.sample(r), 6, 300_000);
        for i in 0..6 {
            assert!(
                (fa[i] - fl[i]).abs() < 0.01,
                "index {i}: {} vs {}",
                fa[i],
                fl[i]
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let s = WeightedAliasSampler::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(s.sample(&mut r), 1);
        }
    }

    #[test]
    fn degenerate_single_category() {
        let s = WeightedAliasSampler::new(&[3.5]).unwrap();
        let mut r = rng();
        assert_eq!(s.sample(&mut r), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn invalid_weights_rejected() {
        assert_eq!(
            WeightedAliasSampler::new(&[]).unwrap_err(),
            SamplingError::Empty
        );
        assert_eq!(
            WeightedAliasSampler::new(&[1.0, -0.5]).unwrap_err(),
            SamplingError::InvalidWeight(1)
        );
        assert_eq!(
            WeightedAliasSampler::new(&[1.0, f64::NAN]).unwrap_err(),
            SamplingError::InvalidWeight(1)
        );
        assert_eq!(
            WeightedAliasSampler::new(&[0.0, 0.0]).unwrap_err(),
            SamplingError::ZeroMass
        );
        assert_eq!(
            LinearCdfSampler::new(&[]).unwrap_err(),
            SamplingError::Empty
        );
        assert_eq!(
            LinearCdfSampler::new(&[0.0]).unwrap_err(),
            SamplingError::ZeroMass
        );
    }

    #[test]
    fn without_replacement_is_distinct_and_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let draw = sample_without_replacement(20, 7, &mut r);
            assert_eq!(draw.len(), 7);
            let mut sorted = draw.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicates in {draw:?}");
            assert!(draw.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn without_replacement_k_ge_n_returns_permutation() {
        let mut r = rng();
        let mut draw = sample_without_replacement(5, 99, &mut r);
        draw.sort_unstable();
        assert_eq!(draw, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn without_replacement_uniform_coverage() {
        // Each of 0..10 should appear in a size-5 draw about half the time.
        let mut r = rng();
        let mut hits = vec![0usize; 10];
        let iters = 40_000;
        for _ in 0..iters {
            for i in sample_without_replacement(10, 5, &mut r) {
                hits[i] += 1;
            }
        }
        for &h in &hits {
            let p = h as f64 / iters as f64;
            assert!((p - 0.5).abs() < 0.02, "coverage {p}");
        }
    }

    #[test]
    fn choose_uniform_basics() {
        let mut r = rng();
        let items = [10, 20, 30];
        let c = choose_uniform(&items, &mut r).unwrap();
        assert!(items.contains(c));
        let empty: [i32; 0] = [];
        assert!(choose_uniform(&empty, &mut r).is_none());
    }
}
