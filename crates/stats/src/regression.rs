//! Ordinary least squares on (x, y) pairs.

/// Result of a simple linear regression y = slope·x + intercept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl OlsFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit y = a·x + b by least squares. Returns `None` for fewer than two
/// points or when all x are identical (vertical line).
pub fn ols(points: &[(f64, f64)]) -> Option<OlsFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R² = 1 − SS_res / SS_tot; for a constant y (syy == 0) the fit is
    // exact and we define R² = 1.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = points
            .iter()
            .map(|&(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    Some(OlsFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = ols(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let pts = [(0.0, 0.1), (1.0, 0.9), (2.0, 2.2), (3.0, 2.8), (4.0, 4.1)];
        let fit = ols(&pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ols(&[]).is_none());
        assert!(ols(&[(1.0, 2.0)]).is_none());
        // Vertical line: identical x.
        assert!(ols(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn constant_y_gives_zero_slope_r2_one() {
        let fit = ols(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn negative_slope() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, -2.0 * i as f64)).collect();
        let fit = ols(&pts).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
    }
}
