//! Deterministic fault injection for exercising failure paths.
//!
//! A [`FaultPlan`] is a list of "fail task `index` of stage `stage`
//! with a panic | an error" rules. Pipeline stages call
//! [`probe`]`(stage, index)` at the top of each task; when the
//! `fault-injection` cargo feature is enabled and a plan is installed,
//! a matching rule fires deterministically — either returning an
//! [`InjectedFault`] error or panicking with a stable message. With the
//! feature disabled (the default, including all release builds),
//! [`probe`] is a `#[inline(always)]` constant `Ok(())` and the whole
//! mechanism compiles away.
//!
//! Plans can be written explicitly ([`FaultPlan::fail`]) or generated
//! from a seed ([`FaultPlan::seeded`]) so randomized sweeps are
//! replayable. The plan registry is process-global (the probes live
//! deep inside worker threads, far from any place a handle could be
//! threaded through), so tests that install plans must serialize —
//! `with_plan` (feature-gated like the registry) does the
//! install/run/clear dance under a global lock.
//!
//! The types themselves are always compiled so test code can construct
//! plans without feature gymnastics; only the registry and the live
//! probe are gated.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How an injected fault manifests at the probe site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The probe panics with `"injected panic at {stage}[{index}]"`.
    Panic,
    /// The probe returns `Err(InjectedFault { .. })`.
    Error,
}

/// One injection rule: fail task `index` of stage `stage` with `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Stage label, e.g. `"mc.block"` or `"overlap.tile"`.
    pub stage: String,
    /// Task index within the stage at which to fire.
    pub index: usize,
    /// Panic or error.
    pub kind: FaultKind,
}

/// A deterministic set of injection rules (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan: no probe ever fires.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a rule (builder style): fail task `index` of `stage` with
    /// `kind`.
    pub fn fail(mut self, stage: &str, index: usize, kind: FaultKind) -> FaultPlan {
        self.specs.push(FaultSpec {
            stage: stage.to_string(),
            index,
            kind,
        });
        self
    }

    /// Generate `n` rules from a seed: each picks a stage from
    /// `stages`, an index in `0..max_index`, and a kind. Same seed,
    /// same plan — randomized sweeps stay replayable.
    pub fn seeded(seed: u64, stages: &[&str], max_index: usize, n: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if stages.is_empty() || max_index == 0 {
            return plan;
        }
        for _ in 0..n {
            let stage = stages[rng.random_range(0..stages.len())];
            let index = rng.random_range(0..max_index);
            let kind = if rng.random_bool(0.5) {
                FaultKind::Panic
            } else {
                FaultKind::Error
            };
            plan = plan.fail(stage, index, kind);
        }
        plan
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// The rules, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Look up the rule (if any) for `(stage, index)`. First match
    /// wins.
    pub fn lookup(&self, stage: &str, index: usize) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| s.index == index && s.stage == stage)
            .map(|s| s.kind)
    }
}

/// The error a probe returns when an [`FaultKind::Error`] rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Stage label of the rule that fired.
    pub stage: String,
    /// Task index at which it fired.
    pub index: usize,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}[{}]", self.stage, self.index)
    }
}

impl std::error::Error for InjectedFault {}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::{FaultKind, FaultPlan, InjectedFault};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, Once, RwLock};

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
    /// Serializes tests that install global plans (see [`with_plan`]).
    static GUARD: Mutex<()> = Mutex::new(());

    /// Install `plan` process-wide; subsequent probes consult it.
    pub fn install(plan: FaultPlan) {
        let mut slot = PLAN.write().unwrap_or_else(|p| p.into_inner());
        ACTIVE.store(!plan.is_empty(), Ordering::Release);
        *slot = Some(plan);
    }

    /// Remove any installed plan; probes become inert again.
    pub fn clear() {
        let mut slot = PLAN.write().unwrap_or_else(|p| p.into_inner());
        ACTIVE.store(false, Ordering::Release);
        *slot = None;
    }

    /// True when a non-empty plan is installed.
    pub fn active() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }

    /// Run `f` with `plan` installed, clearing it afterwards (also on
    /// panic) and holding a global lock so concurrent tests cannot see
    /// each other's plans.
    pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
        let _guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        struct Clear;
        impl Drop for Clear {
            fn drop(&mut self) {
                super::registry::clear();
            }
        }
        let _clear = Clear;
        install(plan);
        f()
    }

    /// The live probe: fire the matching rule, if any.
    pub fn probe(stage: &str, index: usize) -> Result<(), InjectedFault> {
        if !ACTIVE.load(Ordering::Acquire) {
            return Ok(());
        }
        let slot = PLAN.read().unwrap_or_else(|p| p.into_inner());
        let Some(kind) = slot.as_ref().and_then(|p| p.lookup(stage, index)) else {
            return Ok(());
        };
        match kind {
            FaultKind::Panic => panic!("injected panic at {stage}[{index}]"),
            FaultKind::Error => Err(InjectedFault {
                stage: stage.to_string(),
                index,
            }),
        }
    }

    /// Filter the panic hook so intentional `"injected panic at …"`
    /// payloads (raised inside worker threads during fault tests) do
    /// not spray backtraces into test output. Installed once; every
    /// other panic still reaches the previous hook.
    pub fn silence_injected_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.contains("injected") {
                    prev(info);
                }
            }));
        });
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{active, clear, install, probe, silence_injected_panics, with_plan};

/// Inert probe: with the `fault-injection` feature disabled this is a
/// constant `Ok(())` the optimizer deletes.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn probe(_stage: &str, _index: usize) -> Result<(), InjectedFault> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_build_and_look_up() {
        let plan = FaultPlan::new().fail("mc.block", 3, FaultKind::Error).fail(
            "overlap.tile",
            0,
            FaultKind::Panic,
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.lookup("mc.block", 3), Some(FaultKind::Error));
        assert_eq!(plan.lookup("mc.block", 4), None);
        assert_eq!(plan.lookup("overlap.tile", 0), Some(FaultKind::Panic));
        assert_eq!(plan.lookup("world.block", 0), None);
    }

    #[test]
    fn seeded_plans_are_replayable() {
        let stages = ["mc.block", "overlap.tile", "world.block"];
        let a = FaultPlan::seeded(42, &stages, 100, 5);
        let b = FaultPlan::seeded(42, &stages, 100, 5);
        let c = FaultPlan::seeded(43, &stages, 100, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        for spec in a.specs() {
            assert!(stages.contains(&spec.stage.as_str()));
            assert!(spec.index < 100);
        }
    }

    #[test]
    fn degenerate_seeded_plans_are_empty() {
        assert!(FaultPlan::seeded(7, &[], 10, 5).is_empty());
        assert!(FaultPlan::seeded(7, &["mc.block"], 0, 5).is_empty());
    }

    #[test]
    fn injected_fault_renders() {
        let fault = InjectedFault {
            stage: "mc.block".to_string(),
            index: 12,
        };
        assert_eq!(fault.to_string(), "injected fault at mc.block[12]");
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn probe_is_inert_without_the_feature() {
        assert_eq!(probe("mc.block", 0), Ok(()));
    }

    #[cfg(feature = "fault-injection")]
    mod live {
        use super::super::*;

        #[test]
        fn probe_fires_only_under_an_installed_plan() {
            let plan = FaultPlan::new().fail("mc.block", 2, FaultKind::Error);
            with_plan(plan, || {
                assert!(active());
                assert_eq!(probe("mc.block", 1), Ok(()));
                assert_eq!(
                    probe("mc.block", 2),
                    Err(InjectedFault {
                        stage: "mc.block".to_string(),
                        index: 2,
                    })
                );
                assert_eq!(probe("other", 2), Ok(()));
            });
            assert!(!active());
            assert_eq!(probe("mc.block", 2), Ok(()));
        }

        #[test]
        fn panic_rules_panic_with_a_stable_message() {
            silence_injected_panics();
            let plan = FaultPlan::new().fail("overlap.tile", 4, FaultKind::Panic);
            let caught = with_plan(plan, || {
                std::panic::catch_unwind(|| probe("overlap.tile", 4))
            });
            let payload = caught.expect_err("probe panics");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("string payload");
            assert_eq!(msg, "injected panic at overlap.tile[4]");
        }
    }
}
