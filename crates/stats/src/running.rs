//! Welford's streaming mean/variance accumulator.
//!
//! The Monte-Carlo engine generates 100,000 randomized recipes per null
//! model per cuisine; storing every pairing score is wasteful when only
//! the ensemble mean and standard deviation feed the z-score. Welford's
//! algorithm is numerically stable for exactly this use.

/// Streaming accumulator for count, mean, and variance.
///
/// ```
/// use culinaria_stats::RunningStats;
///
/// let mut stats = RunningStats::new();
/// stats.extend([2.0, 4.0, 9.0]);
/// assert_eq!(stats.count(), 3);
/// assert_eq!(stats.mean(), Some(5.0));
///
/// // Parallel reduction: merge partial accumulators.
/// let mut other = RunningStats::new();
/// other.push(5.0);
/// stats.merge(&other);
/// assert_eq!(stats.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction),
    /// using Chan et al.'s pairwise update.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations. `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n−1). `None` for fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population variance (n). `None` if empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Smallest observation. `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation. `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut rs = RunningStats::new();
        rs.extend(iter);
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn matches_batch_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let rs: RunningStats = xs.iter().copied().collect();
        assert_eq!(rs.count(), 8);
        assert_close(rs.mean().unwrap(), descriptive::mean(&xs).unwrap());
        assert_close(rs.variance().unwrap(), descriptive::variance(&xs).unwrap());
        assert_close(
            rs.population_std_dev().unwrap(),
            descriptive::population_std_dev(&xs).unwrap(),
        );
        assert_close(rs.min().unwrap(), 2.0);
        assert_close(rs.max().unwrap(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let rs = RunningStats::new();
        assert!(rs.mean().is_none());
        assert!(rs.variance().is_none());
        assert!(rs.min().is_none());

        let mut rs = RunningStats::new();
        rs.push(3.0);
        assert_close(rs.mean().unwrap(), 3.0);
        assert!(rs.variance().is_none());
        assert_close(rs.population_variance().unwrap(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert_close(left.mean().unwrap(), all.mean().unwrap());
        assert_close(left.variance().unwrap(), all.variance().unwrap());
        assert_close(left.min().unwrap(), all.min().unwrap());
        assert_close(left.max().unwrap(), all.max().unwrap());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: large mean, tiny variance.
        let offset = 1e9;
        let xs: Vec<f64> = [4.0, 7.0, 13.0, 16.0].iter().map(|x| x + offset).collect();
        let rs: RunningStats = xs.iter().copied().collect();
        assert_close(rs.variance().unwrap(), 30.0);
    }
}
