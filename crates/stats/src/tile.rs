//! Cache-blocking helpers for triangular pair sweeps.
//!
//! The overlap-matrix build walks the strict upper triangle of an
//! `n × n` pair grid. A row-at-a-time sweep streams the whole packed
//! profile matrix once per *row*; for worlds whose matrix exceeds L2
//! that means every row pays main-memory bandwidth. Blocking the
//! triangle into square row×column tiles keeps two tile-sized strips
//! of packed rows resident while every cell of the tile is computed,
//! so each profile word is loaded from memory once per *tile strip*
//! instead of once per cell.
//!
//! Determinism contract: tile geometry is a pure function of the
//! problem shape (`n`, bytes per packed row) and the *machine* — never
//! of the requested thread count — so the task list handed to the
//! worker pool is identical for 1, 2, 4 or 8 threads and the pool's
//! task-order result contract makes the merged output (and any
//! injected-fault index) bit-identical across thread counts.

use crate::pool;
use std::ops::Range;

/// Per-core L2 budget the tile sizing aims at. Two tile strips of
/// packed rows (the row band and the column band) should fit with
/// room to spare for the output cells; 256 KiB is a conservative
/// common denominator for the x86-64 parts this targets.
const L2_BUDGET_BYTES: usize = 256 * 1024;

/// Smallest tile edge worth scheduling: below this the per-task
/// bookkeeping dominates the AND+popcount work.
const MIN_TILE_ROWS: usize = 8;

/// Choose a tile edge (in rows) for an `n × n` triangular sweep whose
/// packed rows are `bytes_per_row` wide.
///
/// The edge is the largest value such that two tile strips fit in an
/// L2 budget of 256 KiB, clamped so the triangle still fans out into
/// at least `4 ×` the machine's available parallelism
/// ([`pool::effective_threads`]`(0)`) tiles — enough tasks for the
/// pool to balance — and never below 8 rows (tiny worlds degrade to a
/// handful of tiles, or one).
///
/// Deliberately *not* a function of the requested thread count: see
/// the module docs for the determinism argument.
pub fn tile_rows(n: usize, bytes_per_row: usize) -> usize {
    if n == 0 {
        return MIN_TILE_ROWS;
    }
    let fit_l2 = (L2_BUDGET_BYTES / 2) / bytes_per_row.max(1);
    let machine = pool::effective_threads(0);
    // B bands give B(B+1)/2 tiles; B = ceil(sqrt(8·target)) bands is a
    // cheap overestimate that guarantees ≥ target tiles when n allows.
    let target_tiles = 4 * machine;
    let mut bands = 1usize;
    while bands * (bands + 1) / 2 < target_tiles {
        bands += 1;
    }
    let fan_out = n.div_ceil(bands);
    fit_l2
        .min(fan_out)
        .clamp(MIN_TILE_ROWS, n.max(MIN_TILE_ROWS))
}

/// The strict-upper-triangle tiling of an `n × n` pair grid.
///
/// Rows are cut into bands of `tile` rows; a tile is a pair of bands
/// `(bi, bj)` with `bi ≤ bj`, enumerated band-major (`(0,0), (0,1), …,
/// (0,B-1), (1,1), …`). Diagonal tiles (`bi == bj`) contain only their
/// strictly-upper cells. Together the tiles cover every pair `i < j`
/// exactly once, in an order that depends only on `n` and `tile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleTiles {
    n: usize,
    tile: usize,
    bands: usize,
}

impl TriangleTiles {
    /// Tile an `n × n` strict upper triangle with `tile`-row bands.
    ///
    /// # Panics
    /// Panics if `tile == 0`.
    pub fn new(n: usize, tile: usize) -> TriangleTiles {
        assert!(tile > 0, "tile edge must be positive");
        TriangleTiles {
            n,
            tile,
            bands: n.div_ceil(tile),
        }
    }

    /// Number of tiles (`B(B+1)/2` for `B` bands).
    pub fn len(&self) -> usize {
        self.bands * (self.bands + 1) / 2
    }

    /// True when the triangle is empty (`n < 2` still yields its
    /// degenerate tiles; this is only `true` for `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tile edge in rows.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of row bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// The row and column ranges of tile `t` (band-major order).
    ///
    /// Cells of the tile are the pairs `(i, j)` with `i ∈ rows`,
    /// `j ∈ cols`, and `i < j`.
    ///
    /// # Panics
    /// Panics if `t >= self.len()`.
    pub fn tile_bounds(&self, t: usize) -> (Range<usize>, Range<usize>) {
        assert!(t < self.len(), "tile index {t} out of {}", self.len());
        // Walk bands: band bi owns (bands - bi) tiles.
        let (mut bi, mut rem) = (0usize, t);
        while rem >= self.bands - bi {
            rem -= self.bands - bi;
            bi += 1;
        }
        let bj = bi + rem;
        let rows = bi * self.tile..((bi + 1) * self.tile).min(self.n);
        let cols = bj * self.tile..((bj + 1) * self.tile).min(self.n);
        (rows, cols)
    }

    /// Number of strict-upper cells in tile `t`.
    pub fn cell_count(&self, t: usize) -> usize {
        let (rows, cols) = self.tile_bounds(t);
        rows.map(|i| cols.len() - cols.clone().filter(|&j| j <= i).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered_pairs(n: usize, tile: usize) -> Vec<(usize, usize)> {
        let tiles = TriangleTiles::new(n, tile);
        let mut pairs = Vec::new();
        for t in 0..tiles.len() {
            let (rows, cols) = tiles.tile_bounds(t);
            for i in rows {
                for j in cols.clone().filter(|&j| j > i) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    #[test]
    fn tiles_cover_triangle_exactly_once() {
        for n in [0, 1, 2, 3, 5, 8, 13, 60, 61] {
            for tile in [1, 2, 3, 7, 16, 64] {
                let mut pairs = covered_pairs(n, tile);
                pairs.sort_unstable();
                let expected: Vec<_> = (0..n)
                    .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
                    .collect();
                assert_eq!(pairs, expected, "n={n} tile={tile}");
            }
        }
    }

    #[test]
    fn band_major_order_is_stable() {
        let tiles = TriangleTiles::new(10, 4);
        assert_eq!(tiles.bands(), 3);
        assert_eq!(tiles.len(), 6);
        let bounds: Vec<_> = (0..tiles.len())
            .map(|t| {
                let (r, c) = tiles.tile_bounds(t);
                (r.start, c.start)
            })
            .collect();
        assert_eq!(bounds, [(0, 0), (0, 4), (0, 8), (4, 4), (4, 8), (8, 8)]);
    }

    #[test]
    fn cell_counts_sum_to_triangle() {
        for (n, tile) in [(60, 8), (60, 60), (7, 3), (1, 4), (0, 4)] {
            let tiles = TriangleTiles::new(n, tile);
            let total: usize = (0..tiles.len()).map(|t| tiles.cell_count(t)).sum();
            assert_eq!(total, n * (n.max(1) - 1) / 2, "n={n} tile={tile}");
        }
    }

    #[test]
    fn tile_rows_respects_floor_and_l2() {
        // Tiny world: floor wins.
        assert_eq!(tile_rows(0, 8), MIN_TILE_ROWS);
        assert!(tile_rows(60, 8) >= MIN_TILE_ROWS);
        assert!(tile_rows(60, 8) <= 60);
        // Huge rows: two strips must still fit the L2 budget.
        let fat = tile_rows(10_000, 4096);
        assert!(fat * 4096 * 2 <= L2_BUDGET_BYTES || fat == MIN_TILE_ROWS);
        // Geometry is independent of any requested thread count by
        // construction (no parameter to vary), and deterministic.
        assert_eq!(tile_rows(500, 64), tile_rows(500, 64));
    }

    #[test]
    #[should_panic(expected = "tile edge must be positive")]
    fn zero_tile_panics() {
        let _ = TriangleTiles::new(4, 0);
    }
}
