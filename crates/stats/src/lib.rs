#![warn(missing_docs)]

//! # culinaria-stats
//!
//! The statistics substrate for the `culinaria` workspace. The paper's
//! analyses need a small but complete statistical toolkit — descriptive
//! statistics, streaming accumulators, z-scores against Monte-Carlo null
//! models, weighted sampling for the frequency-preserving models,
//! histograms for recipe-size distributions, discrete power-law fits for
//! ingredient-popularity scaling, bootstrap confidence intervals, and
//! rank correlations — none of which we take from external crates
//! (the Rust statistical ecosystem is thin; everything here is
//! implemented from scratch and unit-tested against known values).
//!
//! ## Module map
//!
//! * [`descriptive`] — mean, variance, quantiles, five-number summaries
//! * [`running`] — Welford streaming accumulator (used by the Monte-Carlo
//!   engine so 100,000 sampled recipes never need to be stored)
//! * [`histogram`] — integer histograms and cumulative distributions
//! * [`zscore`] — z-scores of an observed mean against a null ensemble
//! * [`sampling`] — Walker alias method, linear-CDF sampling (ablation
//!   baseline), uniform choice, and partial Fisher–Yates draws
//! * [`powerlaw`] — discrete power-law MLE and rank-frequency utilities
//! * [`bootstrap`] — percentile bootstrap confidence intervals
//! * [`correlation`] — Pearson and Spearman coefficients
//! * [`regression`] — ordinary least squares on (x, y) pairs
//! * [`ks`] — two-sample Kolmogorov–Smirnov test
//! * [`rng`] — deterministic seed derivation for parallel PRNG streams
//! * [`pool`] — shared worker pool with a deterministic, statically
//!   indexed task queue (results always in task order) and a fallible
//!   [`pool::try_run`] entry point with panic isolation
//! * [`fault`] — deterministic fault-injection plans (probes are live
//!   only under the `fault-injection` cargo feature)
//! * [`tile`] — cache-blocking geometry for triangular pair sweeps
//!   (thread-count-independent, so tiled merges stay deterministic)

pub mod bootstrap;
pub mod chi2;
pub mod correlation;
pub mod descriptive;
pub mod fault;
pub mod histogram;
pub mod ks;
pub mod pool;
pub mod powerlaw;
pub mod regression;
pub mod rng;
pub mod running;
pub mod sampling;
pub mod tile;
pub mod zscore;

pub use descriptive::{mean, median, quantile, std_dev, variance, Summary};
pub use histogram::{CumulativeDistribution, IntHistogram};
pub use pool::effective_threads;
pub use running::RunningStats;
pub use sampling::{LinearCdfSampler, WeightedAliasSampler};
pub use zscore::{z_score, z_score_of_mean, NullEnsemble};
